"""The ``repro check`` harness: sweep a campaign across perturbation seeds.

A :class:`CheckRunner` re-runs one campaign/protocol pair under ``N``
independent :class:`~repro.check.perturb.SchedulePerturbation` seeds.
Each run is a normal :class:`~repro.faults.campaign.CampaignRunner` run —
same campaign seed, same fault plan — except same-instant event ordering
is shuffled (and, optionally, frame delivery jittered) by the
perturbation.  The sweep classifies every seed's outcome:

``ok``
    the run behaved exactly like the unperturbed schedule is supposed to
    (completion + zero invariant violations, or — for campaigns with
    ``expect_completion=False`` — a clean typed abort);
``oracle-violation``
    a :class:`~repro.check.oracles.WaveOracle` invariant broke mid-run
    (:class:`~repro.errors.OracleViolation`);
``hang``
    the workload never reached a terminal state; the liveness watchdog's
    :func:`~repro.check.watchdog.diagnose_hang` dump rides the outcome;
``invariant-violation``
    the run completed but a campaign checker reported violations;
``aborted``
    any other typed error ended the run.

Every non-``ok`` outcome carries the perturbation seed that exposed it,
and :meth:`CheckRunner.replay` re-runs that exact seed (twice, comparing
report bytes) — "flaky under churn" becomes a one-command repro:
``python -m repro check --campaign X --protocol Y --replay SEED``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.watchdog import diagnose_hang, format_diagnosis
from repro.core.policies import FaultPolicy
from repro.errors import CampaignError, ConvergenceTimeout, OracleViolation


#: Error types classified as liveness failures (the watchdog's domain).
_HANG_TYPES = (CampaignError, ConvergenceTimeout)


@dataclass
class SeedOutcome:
    """One perturbation seed's verdict."""

    perturb_seed: int
    verdict: str                          # ok | oracle-violation | hang | ...
    status: str                           # raw campaign status
    error: Optional[Dict[str, Any]] = None
    violations: List[Dict[str, Any]] = field(default_factory=list)
    report: Optional[Any] = None          # CampaignReport (not serialized)

    @property
    def ok(self) -> bool:
        return self.verdict == "ok"

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"perturb_seed": self.perturb_seed,
                             "verdict": self.verdict, "status": self.status}
        if self.error is not None:
            d["error"] = self.error
        if self.violations:
            d["violations"] = self.violations
        return d


@dataclass
class CheckResult:
    """Outcome of one perturbation sweep."""

    campaign: str
    protocol: str
    seed: int                             # the *campaign* seed
    jitter: float
    outcomes: List[SeedOutcome] = field(default_factory=list)

    @property
    def failures(self) -> List[SeedOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {"campaign": self.campaign, "protocol": self.protocol,
                "seed": self.seed, "jitter": self.jitter,
                "seeds_run": len(self.outcomes),
                "failures": len(self.failures),
                "outcomes": [o.to_dict() for o in self.outcomes]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2,
                          default=repr) + "\n"

    def summary(self) -> str:
        lines = [f"check {self.campaign!r} protocol={self.protocol} "
                 f"seed={self.seed} jitter={self.jitter:g}: "
                 f"{len(self.outcomes)} perturbation seeds, "
                 f"{len(self.failures)} failures"]
        for o in self.failures:
            lines.append(f"  FAIL perturb_seed={o.perturb_seed} "
                         f"[{o.verdict}] status={o.status}")
            if o.error:
                lines.append(f"    {o.error['type']}: {o.error['message']}")
                diagnosis = o.error.get("diagnosis")
                if diagnosis:
                    lines.append(format_diagnosis(diagnosis))
            for c in o.violations:
                for v in c["violations"]:
                    lines.append(f"    VIOLATION [{c['checker']}] {v}")
            lines.append(f"    replay: repro check --campaign "
                         f"{self.campaign} --protocol {self.protocol} "
                         f"--seed {self.seed} --jitter {self.jitter:g} "
                         f"--replay {o.perturb_seed}")
        return "\n".join(lines)


class CheckRunner:
    """Sweep one campaign/protocol pair across perturbation seeds.

    Parameters mirror :class:`~repro.faults.campaign.CampaignRunner`
    where they overlap; ``seed`` is the *campaign* seed (shared by every
    perturbed run — the sweep varies only the schedule, never the fault
    plan), ``jitter`` the per-frame delivery jitter bound in simulated
    seconds.  ``compare_golden=False`` by default: the golden run of a
    *perturbed* schedule proves nothing the checkers don't already, and
    skipping it halves the sweep's cost.
    """

    def __init__(self, campaign, *, protocol: str = "stop-and-sync",
                 seed: int = 0, jitter: float = 0.0,
                 policy: Any = FaultPolicy.RESTART,
                 nodes: Optional[int] = None,
                 scheduler: Optional[str] = None,
                 compare_golden: bool = False,
                 workload_timeout: float = 240.0):
        from repro.ckpt.protocols import PROTOCOLS
        from repro.faults.campaigns import get_campaign
        self.campaign = (get_campaign(campaign)
                         if isinstance(campaign, str) else campaign)
        if protocol not in PROTOCOLS:
            known = ", ".join(sorted(PROTOCOLS))
            raise CampaignError(
                f"unknown C/R protocol {protocol!r} (known: {known})")
        self.protocol = protocol
        self.seed = seed
        self.jitter = jitter
        self.policy = policy
        self.nodes = nodes
        #: Engine scheduler overlay (``None`` = the campaign's choice);
        #: the sweep's verdicts are scheduler-independent by design.
        self.scheduler = scheduler
        self.compare_golden = compare_golden
        self.workload_timeout = workload_timeout

    # -- one seed ----------------------------------------------------------

    def _spec(self, perturb_seed: Optional[int]):
        from repro.cluster.spec import ClusterSpec
        base = self.campaign.cluster_spec or ClusterSpec()
        if self.scheduler is not None:
            base = base.with_(scheduler=self.scheduler)
        if perturb_seed is None:
            return base
        return base.with_(perturb_seed=perturb_seed,
                          delivery_jitter=self.jitter)

    def run_one(self, perturb_seed: int) -> SeedOutcome:
        """Run the campaign under one perturbation seed and classify it."""
        from repro.faults.campaign import CampaignRunner
        runner = CampaignRunner(
            self.campaign, seed=self.seed, protocol=self.protocol,
            policy=self.policy, nodes=self.nodes,
            cluster_spec=self._spec(perturb_seed),
            compare_golden=self.compare_golden,
            workload_timeout=self.workload_timeout,
            watchdog=diagnose_hang)
        report = runner.run(raise_on_error=False)
        error = report.data.get("error")
        violations = report.violations
        if report.status == "completed":
            verdict = "ok" if not violations else "invariant-violation"
        elif error and error["type"] == OracleViolation.__name__:
            verdict = "oracle-violation"
        elif error and error["type"] in {t.__name__ for t in _HANG_TYPES}:
            verdict = "hang"
        elif not self.campaign.expect_completion and error:
            # Failure campaigns are green when they fail *cleanly*.
            verdict = "ok"
        else:
            verdict = "aborted"
        return SeedOutcome(perturb_seed=perturb_seed, verdict=verdict,
                           status=report.status, error=error,
                           violations=violations, report=report)

    # -- the sweep ---------------------------------------------------------

    def run(self, seeds: Sequence[int] = range(1, 11),
            stop_on_failure: bool = False) -> CheckResult:
        result = CheckResult(campaign=self.campaign.name,
                             protocol=self.protocol, seed=self.seed,
                             jitter=self.jitter)
        for pseed in seeds:
            outcome = self.run_one(pseed)
            result.outcomes.append(outcome)
            if stop_on_failure and not outcome.ok:
                break
        return result

    # -- replay ------------------------------------------------------------

    def replay(self, perturb_seed: int) -> Tuple[SeedOutcome, bool]:
        """Re-run one perturbation seed twice.

        Returns ``(outcome, byte_identical)`` where ``byte_identical``
        asserts the failure's whole campaign report — event timings,
        diagnosis, violations — reproduced byte-for-byte from the seed.
        """
        first = self.run_one(perturb_seed)
        second = self.run_one(perturb_seed)
        identical = (first.report.to_json() == second.report.to_json())
        return first, identical
