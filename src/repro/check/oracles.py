"""Always-on state-machine oracles for the C/R protocols.

Every :class:`~repro.ckpt.protocols.base.CrProtocol` instance carries a
:class:`WaveOracle`.  The protocols report their state transitions to it
(wave begin/abort, counts published, local dump, commit coordination,
commit observed) and the oracle asserts the invariants that must hold in
*every* event interleaving — the properties the schedule-perturbation
harness shakes the protocols against:

* a module never writes two checkpoint records for the same version
  (``dump`` twice = a wave epoch bug: an aborted wave's dump leaked into
  its revival, or a duplicated handler run);
* a module never begins a wave for a version it already observed commit,
  and never runs two waves at once;
* a module publishes its send counters at most once per wave epoch;
* commit coordination happens at most once per version per module;
* a committed version strictly increases per module, and a module
  participating in a wave (``_active == v``) must have dumped ``v``
  before observing its commit — otherwise the "recovery line" would be
  missing this rank's checkpoint;
* (diskless) a buddy ack never arrives when no acks are outstanding —
  an extra ack would re-trigger the post-dump transition.

Violations raise :class:`~repro.errors.OracleViolation` immediately; the
protocol main loops deliberately re-raise it (instead of treating it as a
crash-induced teardown), so the engine surfaces it as a typed failure of
the run.  The oracle holds plain Python state and does no per-message
work — it only runs at wave transitions, so "always-on" costs nothing
measurable.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import OracleViolation


class WaveOracle:
    """Per-module invariant checker for one C/R protocol instance."""

    __slots__ = ("protocol", "rank", "_dumped", "_committed", "_active",
                 "_counts_published", "_commits_started", "violations")

    def __init__(self, protocol):
        self.protocol = protocol
        self.rank: Optional[int] = None      # set on start()
        self._dumped: Set[int] = set()       # versions this module dumped
        self._committed: int = -1            # highest committed version
        self._active: Optional[int] = None   # wave the oracle believes open
        self._counts_published: Set[int] = set()
        self._commits_started: Set[int] = set()
        self.violations: int = 0

    # -- plumbing ----------------------------------------------------------

    def bind(self, rank: int) -> None:
        self.rank = rank

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations += 1
        raise OracleViolation(
            f"[{self.protocol.name} rank={self.rank}] {invariant}: {detail}")

    # -- wave lifecycle ----------------------------------------------------

    def wave_begin(self, version: int) -> None:
        if self._active is not None and self._active != version:
            self._fail("single-wave",
                       f"wave {version} begun while wave {self._active} "
                       f"is still open")
        if version <= self._committed:
            self._fail("version-monotone",
                       f"wave {version} begun but version "
                       f"{self._committed} already committed")
        self._active = version
        # A wave revival (begin after abort) legitimately re-opens the
        # same version; its per-epoch flags reset with it.
        self._counts_published.discard(version)

    def wave_abort(self, version: Optional[int]) -> None:
        self._active = None

    def counts_published(self, version: int) -> None:
        if version != self._active:
            self._fail("counts-in-wave",
                       f"counts published for version {version} but wave "
                       f"{self._active} is open")
        if version in self._counts_published:
            self._fail("counts-once",
                       f"counts published twice for version {version} in "
                       f"one wave epoch")
        self._counts_published.add(version)

    def dumped(self, version: int) -> None:
        """The module wrote (or streamed) its checkpoint record for
        ``version``."""
        if version in self._dumped:
            self._fail("dump-once",
                       f"checkpoint record for version {version} written "
                       f"twice by one module instance")
        self._dumped.add(version)

    def commit_coordination(self, version: int) -> None:
        if version in self._commits_started:
            self._fail("commit-coordinate-once",
                       f"commit coordination started twice for version "
                       f"{version}")
        self._commits_started.add(version)

    def committed(self, version: int, *, participating: bool) -> None:
        """The module observed ``version`` commit.

        ``participating``: the module was inside wave ``version`` when the
        commit arrived (coordinated protocols) or took the checkpoint
        itself (uncoordinated) — then its own dump must be part of the
        line.
        """
        if version <= self._committed:
            self._fail("commit-monotone",
                       f"version {version} committed after version "
                       f"{self._committed}")
        if participating and version not in self._dumped:
            self._fail("commit-covers-dump",
                       f"version {version} committed but this module never "
                       f"dumped it — the recovery line is missing rank "
                       f"{self.rank}")
        self._committed = version
        if self._active == version:
            self._active = None

    # -- diskless ----------------------------------------------------------

    def buddy_ack(self, version: int, acks_pending: int) -> None:
        if acks_pending <= 0:
            self._fail("ack-balance",
                       f"dl-ack for version {version} arrived with "
                       f"{acks_pending} acks outstanding")
