"""Always-on state-machine oracles for the C/R protocols.

Every :class:`~repro.ckpt.protocols.base.CrProtocol` instance carries a
:class:`WaveOracle`.  The protocols report their state transitions to it
(wave begin/abort, counts published, local dump, commit coordination,
commit observed) and the oracle asserts the invariants that must hold in
*every* event interleaving — the properties the schedule-perturbation
harness shakes the protocols against:

* a module never writes two checkpoint records for the same version
  (``dump`` twice = a wave epoch bug: an aborted wave's dump leaked into
  its revival, or a duplicated handler run);
* a module never begins a wave for a version it already observed commit,
  and never runs two waves at once;
* a module publishes its send counters at most once per wave epoch;
* commit coordination happens at most once per version per module;
* a committed version strictly increases per module, and a module
  participating in a wave (``_active == v``) must have dumped ``v``
  before observing its commit — otherwise the "recovery line" would be
  missing this rank's checkpoint;
* (diskless) a buddy ack never arrives when no acks are outstanding —
  an extra ack would re-trigger the post-dump transition.

Violations raise :class:`~repro.errors.OracleViolation` immediately; the
protocol main loops deliberately re-raise it (instead of treating it as a
crash-induced teardown), so the engine surfaces it as a typed failure of
the run.  The oracle holds plain Python state and does no per-message
work — it only runs at wave transitions, so "always-on" costs nothing
measurable.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import OracleViolation


class WaveOracle:
    """Per-module invariant checker for one C/R protocol instance."""

    __slots__ = ("protocol", "rank", "_dumped", "_committed", "_active",
                 "_counts_published", "_commits_started", "violations")

    def __init__(self, protocol):
        self.protocol = protocol
        self.rank: Optional[int] = None      # set on start()
        self._dumped: Set[int] = set()       # versions this module dumped
        self._committed: int = -1            # highest committed version
        self._active: Optional[int] = None   # wave the oracle believes open
        self._counts_published: Set[int] = set()
        self._commits_started: Set[int] = set()
        self.violations: int = 0

    # -- plumbing ----------------------------------------------------------

    def bind(self, rank: int) -> None:
        self.rank = rank

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations += 1
        raise OracleViolation(
            f"[{self.protocol.name} rank={self.rank}] {invariant}: {detail}")

    # -- wave lifecycle ----------------------------------------------------

    def wave_begin(self, version: int) -> None:
        if self._active is not None and self._active != version:
            self._fail("single-wave",
                       f"wave {version} begun while wave {self._active} "
                       f"is still open")
        if version <= self._committed:
            self._fail("version-monotone",
                       f"wave {version} begun but version "
                       f"{self._committed} already committed")
        self._active = version
        # A wave revival (begin after abort) legitimately re-opens the
        # same version; its per-epoch flags reset with it.
        self._counts_published.discard(version)

    def wave_abort(self, version: Optional[int]) -> None:
        self._active = None

    def counts_published(self, version: int) -> None:
        if version != self._active:
            self._fail("counts-in-wave",
                       f"counts published for version {version} but wave "
                       f"{self._active} is open")
        if version in self._counts_published:
            self._fail("counts-once",
                       f"counts published twice for version {version} in "
                       f"one wave epoch")
        self._counts_published.add(version)

    def dumped(self, version: int) -> None:
        """The module wrote (or streamed) its checkpoint record for
        ``version``."""
        if version in self._dumped:
            self._fail("dump-once",
                       f"checkpoint record for version {version} written "
                       f"twice by one module instance")
        self._dumped.add(version)

    def commit_coordination(self, version: int) -> None:
        if version in self._commits_started:
            self._fail("commit-coordinate-once",
                       f"commit coordination started twice for version "
                       f"{version}")
        self._commits_started.add(version)

    def committed(self, version: int, *, participating: bool) -> None:
        """The module observed ``version`` commit.

        ``participating``: the module was inside wave ``version`` when the
        commit arrived (coordinated protocols) or took the checkpoint
        itself (uncoordinated) — then its own dump must be part of the
        line.
        """
        if version <= self._committed:
            self._fail("commit-monotone",
                       f"version {version} committed after version "
                       f"{self._committed}")
        if participating and version not in self._dumped:
            self._fail("commit-covers-dump",
                       f"version {version} committed but this module never "
                       f"dumped it — the recovery line is missing rank "
                       f"{self.rank}")
        self._committed = version
        if self._active == version:
            self._active = None

    # -- diskless ----------------------------------------------------------

    def buddy_ack(self, version: int, acks_pending: int) -> None:
        if acks_pending <= 0:
            self._fail("ack-balance",
                       f"dl-ack for version {version} arrived with "
                       f"{acks_pending} acks outstanding")


class ReplayOracle:
    """Per-module invariant checker for the message-logging protocols.

    The three properties log-based recovery stands on:

    * **logged-before-sent** — a data message is never *delivered* with a
      sequence number beyond what the sender's stable log covers.  (The
      receiver-side check is sound because the simulated log is global
      stable storage; pessimistic logging writes it before the wire send,
      causal logging appends the entry at send and defers only the IO.)
    * **replay-exactly-once** — during a solo restart, every channel is
      replayed gap-free from the restored receive counter on, and no
      (sender, ssn) pair is ever fed to the matching engine twice.
      Contiguity is asserted only *during replay*: in live operation frame
      loss legitimately leaves receive-count gaps, which replay then
      heals from the log.
    * **orphan-free** — a restored state never depends on a message the
      log cannot re-deliver: the checkpointed receive counter must be
      covered by the sender's log end.
    """

    __slots__ = ("protocol", "rank", "_replayed", "violations")

    def __init__(self, protocol):
        self.protocol = protocol
        self.rank: Optional[int] = None      # set on start()
        self._replayed: Set[tuple] = set()   # (sender, ssn) fed to matching
        self.violations: int = 0

    def bind(self, rank: int) -> None:
        self.rank = rank

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations += 1
        raise OracleViolation(
            f"[{self.protocol.name} rank={self.rank}] {invariant}: {detail}")

    def delivered(self, sender: int, ssn: int, log_end: int) -> None:
        """A live data message with ``ssn`` is about to be delivered."""
        if ssn > log_end:
            self._fail("logged-before-sent",
                       f"message #{ssn} from rank {sender} delivered but "
                       f"the sender's log ends at #{log_end}")

    def replayed(self, sender: int, ssn: int, expected: int) -> None:
        """Replay is about to re-feed ``(sender, ssn)``; the channel's
        next expected ssn is ``expected``."""
        if (sender, ssn) in self._replayed:
            self._fail("replay-exactly-once",
                       f"message #{ssn} from rank {sender} replayed twice")
        if ssn != expected:
            self._fail("replay-exactly-once",
                       f"replay from rank {sender} expected #{expected} "
                       f"next but the log yielded #{ssn}")
        self._replayed.add((sender, ssn))

    def restored(self, sender: int, recv_count: int, log_end: int) -> None:
        """A solo restore begins replaying ``sender``'s channel."""
        if recv_count > log_end:
            self._fail("orphan-free",
                       f"restored state already consumed {recv_count} "
                       f"messages from rank {sender} but its log covers "
                       f"only #{log_end} — orphan messages exist")


class ReplicaOracle:
    """Per-copy invariant checker for the active-replication protocol.

    The two properties instant failover stands on, asserted exactly at
    the breaking event:

    * **no-orphan-send** — a delivered data message's per-channel ssn is
      exactly the next one expected.  Every send (from every copy of the
      sender) rides the total-order multicast FIFO, so a *gap* means a
      send escaped the ordering substrate: a survivor would depend on a
      message no live copy can account for — the replication analogue of
      the logging protocols' orphan messages.  (``ssn < expected`` is a
      legitimate sibling duplicate and must be suppressed *before* the
      oracle sees it.)
    * **failover-exactly-once** — a copy is promoted to primary at most
      once, and never while it already is the primary.  A double
      promotion means two copies of one rank both believe they own the
      rank's sends and results.
    """

    __slots__ = ("protocol", "rank", "_primary", "violations")

    def __init__(self, protocol):
        self.protocol = protocol
        self.rank: Optional[int] = None      # set on start()
        self._primary = False                # set on bind for copy 0
        self.violations: int = 0

    def bind(self, rank: int, *, primary: bool) -> None:
        self.rank = rank
        self._primary = primary

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations += 1
        raise OracleViolation(
            f"[{self.protocol.name} rank={self.rank}] {invariant}: {detail}")

    def delivered(self, sender: int, ssn: int, expected: int) -> None:
        """A non-duplicate data message is about to enter matching."""
        if ssn != expected:
            self._fail("no-orphan-send",
                       f"message #{ssn} from rank {sender} delivered but "
                       f"#{expected} was expected next — a send escaped "
                       f"the total-order multicast")

    def promoted(self) -> None:
        """This copy is being promoted to primary (failover)."""
        if self._primary:
            self._fail("failover-exactly-once",
                       "promoted a copy that is already the primary — "
                       "two copies would own this rank")
        self._primary = True
