"""The schedule perturbation: seeded tie shuffling + delivery jitter.

The engine's heap orders events by ``(time, priority, seq)`` — the global
insertion counter ``seq`` makes every run fully deterministic, but it also
means one *specific* interleaving of same-instant events is the only one a
campaign ever exercises.  Interleaving-dependent protocol bugs (the
dominant failure class of recovery code) hide in the orders never taken.

A :class:`SchedulePerturbation` explores them without giving up
reproducibility:

* **tie shuffle** — when the engine dispatches a run of events tying on
  ``(time, priority)``, the run is shuffled by a Fisher–Yates pass driven
  by the perturbation's own seeded RNG.  Events scheduled *while* the
  group dispatches form later groups, so every explored order is causally
  valid; URGENT/NORMAL classes never mix.
* **delivery jitter** — optionally, each frame's wire time is stretched by
  a seeded draw from ``[0, delivery_jitter)``.  This breaks up the fabric
  and NIC same-instant batches (which a pure tie shuffle cannot reorder),
  while a per-``(src, dst)`` arrival floor preserves per-link FIFO — the
  one ordering property the protocols are *entitled* to (Chandy–Lamport
  markers require it).

Everything is keyed off the perturbation seed, which is independent of the
campaign seed: ``perturb_seed=None`` is the byte-identical baseline, and a
failure under ``perturb_seed=k`` replays byte-identically from ``k``.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _seeded_rng(seed: int, stream: str) -> np.random.Generator:
    digest = hashlib.sha256(f"perturb:{seed}:{stream}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class SchedulePerturbation:
    """Seeded same-instant reordering for one engine run.

    Parameters
    ----------
    seed:
        The perturbation seed.  Independent of the engine's master seed:
        the same campaign seed explored under N perturbation seeds yields
        N distinct-but-reproducible schedules.
    jitter:
        Upper bound (simulated seconds) of the per-frame delivery jitter;
        ``0.0`` disables jitter and leaves only the tie shuffle.
    """

    def __init__(self, seed: int, jitter: float = 0.0):
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.seed = seed
        self.delivery_jitter = jitter
        self._tie_rng = _seeded_rng(seed, "ties")
        self._jitter_rng = _seeded_rng(seed, "delivery")
        #: Diagnostics: how many tie groups were shuffled / frames jittered.
        self.ties_shuffled = 0
        self.frames_jittered = 0

    def shuffle_ties(self, group: list) -> None:
        """In-place Fisher–Yates shuffle of one same-instant tie group."""
        self.ties_shuffled += 1
        rng = self._tie_rng
        for i in range(len(group) - 1, 0, -1):
            j = int(rng.integers(0, i + 1))
            if j != i:
                group[i], group[j] = group[j], group[i]

    def draw_jitter(self) -> float:
        """One frame's extra wire delay, in ``[0, delivery_jitter)``."""
        self.frames_jittered += 1
        return float(self._jitter_rng.random()) * self.delivery_jitter

    def __repr__(self) -> str:
        return (f"<SchedulePerturbation seed={self.seed} "
                f"jitter={self.delivery_jitter} "
                f"ties={self.ties_shuffled} frames={self.frames_jittered}>")
