"""Liveness watchdog: turn a hung campaign into a typed diagnosis.

When a perturbed schedule deadlocks a C/R wave, the symptom is a bare
``CampaignError: workload did not reach a terminal state`` — useless for
debugging.  :func:`diagnose_hang` dumps the protocol state of every rank
at the moment the timeout fired: which wave is open, which ranks' counts
or done-votes are missing, how many buddy acks are outstanding, and which
channel/event each module's main loop is parked on.  The result is plain
JSON-able data that rides the campaign report (and therefore replays
byte-identically with the rest of it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.events import Timeout
from repro.sim.process import Process


def _parked_on(proto) -> Optional[str]:
    """Human-readable description of what a module's main loop waits on."""
    proc: Optional[Process] = proto._proc
    if proc is None:
        return "not-started"
    if proc.triggered:
        return "dead"
    target = proc._target
    if target is None:
        return "runnable"
    inbox = proto.inbox
    if inbox is not None and target in inbox._getters:
        return f"channel:{inbox.name}"
    if isinstance(target, Timeout):
        return f"timeout:{target.delay:g}"
    return f"event:{target.name or type(target).__name__}"


def _rank_entry(rank: int, node_id: str, handle) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "rank": rank,
        "node": node_id,
        "steps_completed": handle.steps_completed,
        "at_safe_point": handle._at_safe_point,
        "pause_requests": handle._pause_req,
        "finished": handle.done.triggered,
    }
    proto = handle.protocol
    if proto is None:
        return entry
    entry["protocol"] = proto.name
    entry["wave"] = getattr(proto, "_active", None)
    entry["committed"] = proto.last_committed
    entry["inbox_depth"] = (len(proto.inbox)
                            if proto.inbox is not None else None)
    entry["parked_on"] = _parked_on(proto)
    # Coordinated wave bookkeeping, where present.
    counts = getattr(proto, "_counts", None)
    if counts is not None:
        entry["counts_from"] = sorted(counts)
    done = getattr(proto, "_done", None)
    if done is not None:
        entry["done_from"] = sorted(done)
    recording = getattr(proto, "_recording", None)
    if recording is not None:
        entry["recording_channels"] = sorted(recording)
    acks = getattr(proto, "_acks_pending", None)
    if acks is not None:
        entry["acks_pending"] = acks
    return entry


def diagnose_hang(sf, handle, exc) -> Dict[str, Any]:
    """Dump per-rank protocol state for a hung (or dying) campaign run.

    ``sf`` is the :class:`~repro.core.StarfishCluster`, ``handle`` the app
    handle of the workload, ``exc`` the typed error that ended the run.
    Returns a JSON-serializable dict; never raises (a watchdog that
    crashes while diagnosing a hang would mask the original failure).
    """
    ranks: List[Dict[str, Any]] = []
    try:
        app_id = handle.app_id
        for node_id in sorted(sf.daemons):
            daemon = sf.daemons[node_id]
            for (aid, rank), h in sorted(daemon.handles.items()):
                if aid != app_id:
                    continue
                try:
                    ranks.append(_rank_entry(rank, node_id, h))
                except Exception as entry_exc:   # pragma: no cover
                    ranks.append({"rank": rank, "node": node_id,
                                  "error": repr(entry_exc)})
    except Exception as walk_exc:                # pragma: no cover
        return {"error": f"watchdog failed: {walk_exc!r}"}

    diagnosis: Dict[str, Any] = {"cause": type(exc).__name__, "ranks": ranks}
    waves = {r["wave"] for r in ranks if r.get("wave") is not None}
    if waves:
        wave = max(waves)
        in_wave = [r for r in ranks if r.get("wave") == wave]
        present = {r["rank"] for r in in_wave}
        missing_counts = sorted(set().union(
            *(present - set(r.get("counts_from", present))
              for r in in_wave)) if in_wave else [])
        missing_done = sorted(set().union(
            *(present - set(r.get("done_from", present))
              for r in in_wave)) if in_wave else [])
        diagnosis["stalled_wave"] = {
            "version": wave,
            "ranks_in_wave": sorted(present),
            "missing_counts_from": missing_counts,
            "missing_done_from": missing_done,
        }
    return diagnosis


def format_diagnosis(diagnosis: Dict[str, Any]) -> str:
    """Render a diagnosis dict as indented text for CLI output."""
    lines = [f"cause: {diagnosis.get('cause')}"]
    stalled = diagnosis.get("stalled_wave")
    if stalled:
        lines.append(
            f"stalled wave v{stalled['version']} over ranks "
            f"{stalled['ranks_in_wave']}: missing counts from "
            f"{stalled['missing_counts_from']}, missing done from "
            f"{stalled['missing_done_from']}")
    for r in diagnosis.get("ranks", []):
        if "error" in r:
            lines.append(f"rank {r.get('rank')}: <{r['error']}>")
            continue
        bits = [f"rank {r['rank']}@{r['node']}"]
        if "protocol" in r:
            bits.append(f"{r['protocol']} wave={r['wave']} "
                        f"committed={r['committed']} "
                        f"parked_on={r['parked_on']} "
                        f"inbox={r['inbox_depth']}")
            if "acks_pending" in r:
                bits.append(f"acks_pending={r['acks_pending']}")
        bits.append(f"steps={r['steps_completed']} "
                    f"safe_point={r['at_safe_point']} "
                    f"pauses={r['pause_requests']} "
                    f"finished={r['finished']}")
        lines.append("  ".join(bits))
    return "\n".join("  " + ln for ln in lines)
