"""repro.check — the schedule-perturbation correctness harness.

Re-runs any fault campaign under N seeded perturbations of same-instant
event ordering (:class:`SchedulePerturbation`), watches the C/R protocols
with always-on state-machine oracles (:class:`WaveOracle`), and converts
hangs into typed liveness diagnoses (:func:`diagnose_hang`) instead of
bare timeouts.  Every failure prints its perturbation seed and replays
byte-identically from it: ``python -m repro check --replay SEED ...``.

Import discipline: this package sits *below* the protocol layer for the
oracles (``ckpt.protocols.base`` instantiates a :class:`WaveOracle`) and
*above* the campaign layer for the harness, so :class:`CheckRunner` is
exported lazily — importing :mod:`repro.check` from the sim/ckpt layers
must not drag in ``repro.faults``.
"""

from __future__ import annotations

from repro.check.oracles import OracleViolation, WaveOracle
from repro.check.perturb import SchedulePerturbation

__all__ = ["SchedulePerturbation", "WaveOracle", "OracleViolation",
           "CheckRunner", "CheckResult", "diagnose_hang"]


def __getattr__(name):
    if name in ("CheckRunner", "CheckResult"):
        from repro.check import harness
        return getattr(harness, name)
    if name == "diagnose_hang":
        from repro.check.watchdog import diagnose_hang
        return diagnose_hang
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
