"""Listener-model object bus with its own dispatch scheduler.

Modules subscribe handlers per event *type* (subclasses do not inherit
subscriptions — modules subscribe to exactly the event classes they list,
as in a typed object bus).  Posting is non-blocking; a dedicated dispatcher
process drains the queue in priority order, charging
:data:`~repro.calibration.BUS_DISPATCH` per (event, listener) pair —
this is the cost the fast data path avoids.

Handlers may be plain callables or generator functions (for handlers that
perform simulated work, e.g. the C/R module writing a checkpoint).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.calibration import BUS_DISPATCH
from repro.errors import Interrupt, SimulationError
from repro.bus.events import BusEvent
from repro.sim.channel import PriorityChannel


class ObjectBus:
    """One application process's internal event bus."""

    def __init__(self, engine, name: str = "bus"):
        self.engine = engine
        self.name = name
        self._listeners: Dict[Type[BusEvent], List[Callable]] = {}
        self._queue = PriorityChannel(engine, name=f"busq:{name}")
        self._dispatcher = None
        self.stats = {"posted": 0, "dispatched": 0, "dropped": 0}

    def subscribe(self, event_type: Type[BusEvent], handler: Callable) -> None:
        """Register ``handler`` for events of exactly ``event_type``."""
        if not (isinstance(event_type, type)
                and issubclass(event_type, BusEvent)):
            raise SimulationError(f"{event_type!r} is not a BusEvent type")
        self._listeners.setdefault(event_type, []).append(handler)

    def unsubscribe(self, event_type: Type[BusEvent],
                    handler: Callable) -> None:
        handlers = self._listeners.get(event_type, [])
        if handler in handlers:
            handlers.remove(handler)

    def listeners(self, event_type: Type[BusEvent]) -> int:
        return len(self._listeners.get(event_type, []))

    def post(self, event: BusEvent) -> None:
        """Queue ``event`` for dispatch (non-blocking)."""
        if self._queue.closed:
            return
        self.stats["posted"] += 1
        self._queue.put(event, priority=event.priority)

    def start(self, node) -> None:
        """Start the dispatcher as a process hosted on ``node``."""
        if self._dispatcher is not None and self._dispatcher.is_alive:
            raise SimulationError(f"bus {self.name!r} already started")
        self._dispatcher = node.spawn(self._dispatch(),
                                      name=f"bus:{self.name}")

    def stop(self) -> None:
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("bus-stop")

    def _dispatch(self):
        try:
            while True:
                event = yield self._queue.get()
                handlers = self._listeners.get(type(event), [])
                if not handlers:
                    self.stats["dropped"] += 1
                    continue
                for handler in list(handlers):
                    yield self.engine.timeout(BUS_DISPATCH)
                    self.stats["dispatched"] += 1
                    result = handler(event)
                    if result is not None and hasattr(result, "__next__"):
                        yield from result
        except Interrupt:
            return

    def __repr__(self) -> str:
        return f"<ObjectBus {self.name!r} {self.stats}>"
