"""The object bus and module scheduler of an application process (S8).

Paper §2.2: "All modules communicate by posting events on an object bus
that invokes the corresponding event handlers at each of the listening
modules.  Using an object bus allows us to completely decouple the modules,
and also to potentially post the same events to more than one module."

Data messages deliberately do *not* travel on the bus — they use the fast
path between the application module and the MPI module (see
:mod:`repro.mpi`); the ablation benchmark ``bench_ablation_fastpath``
quantifies why.
"""

from repro.bus.objectbus import ObjectBus
from repro.bus.events import (BusEvent, CheckpointEvent, ConfigEvent,
                              CoordinationEvent, MembershipEvent,
                              ShutdownEvent)

__all__ = [
    "BusEvent",
    "CheckpointEvent",
    "ConfigEvent",
    "CoordinationEvent",
    "MembershipEvent",
    "ObjectBus",
    "ShutdownEvent",
]
