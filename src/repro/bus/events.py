"""Event types posted on an application process's object bus.

These mirror the non-data message classes of Table 1: coordination,
checkpoint/restart, lightweight membership, and configuration — plus
process-internal control events (shutdown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class BusEvent:
    """Base class; ``priority`` orders dispatch (lower first)."""

    priority: int = field(default=5, kw_only=True)


@dataclass(frozen=True)
class CoordinationEvent(BusEvent):
    """A coordination message between application processes (Table 1)."""

    source: Any = None
    payload: Any = None


@dataclass(frozen=True)
class CheckpointEvent(BusEvent):
    """A checkpoint/restart protocol message or local C/R command."""

    op: str = ""             # e.g. "request", "marker", "commit", "restore"
    source: Any = None
    payload: Any = None
    priority: int = field(default=1, kw_only=True)


@dataclass(frozen=True)
class MembershipEvent(BusEvent):
    """A lightweight-group view change, delivered to registered listeners.

    Applications that cannot exploit view changes simply do not subscribe
    (paper §3.2.2) — their programming model stays plain MPI.
    """

    members: Tuple = ()
    joined: Tuple = ()
    left: Tuple = ()
    priority: int = field(default=2, kw_only=True)


@dataclass(frozen=True)
class ConfigEvent(BusEvent):
    """Configuration handed down by the local daemon (Table 1)."""

    key: str = ""
    value: Any = None


@dataclass(frozen=True)
class ShutdownEvent(BusEvent):
    """The daemon asked this process to terminate."""

    reason: str = ""
    priority: int = field(default=0, kw_only=True)
