"""The Virtual Network Interface (system S9).

Paper §2.2/§2.2.1: the VNI is the thin, portable layer between the MPI
module and whatever network the cluster has — porting Starfish to a new
network "only requires writing a thin layer of code" inside the VNI.  Two
drivers exist, matching the testbed: BIP/Myrinet and TCP/IP Ethernet.

The VNI also owns the *polling thread*: a low-priority thread that
continuously polls the network and moves arriving messages into a received-
messages queue, so (a) a receive operation rarely has to enter the kernel
itself and (b) kernel interaction is interleaved with computation.  The
``polling=False`` mode preserves the naive blocking-receive behaviour for
the ``bench_ablation_polling`` benchmark.
"""

from repro.vni.interface import Vni, VniMessage

__all__ = ["Vni", "VniMessage"]
