"""VNI implementation: thin driver layer + the polling thread."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.calibration import BLOCKING_RECV_SYSCALL, POLL_PERIOD
from repro.errors import Interrupt, NetworkError, NodeDown
from repro.net.message import Frame
from repro.obs.registry import get_registry
from repro.sim.channel import Channel
from repro.sim.events import Timeout

_msg_ids = itertools.count(1)


@dataclass(frozen=True)
class VniMessage:
    """What the VNI hands to the MPI module (a received data message)."""

    src_node: str
    src_port: str
    payload: Any
    size: int
    msg_id: int
    recv_time: float


class Vni:
    """One application process's interface to one fabric.

    Parameters
    ----------
    node:
        Hosting node; supplies the NIC.
    port:
        This process's network address on the fabric (unique per process).
    transport:
        ``"bip-myrinet"`` (the fast path) or ``"tcp-ethernet"``.
    polling:
        When true (default, the paper's design) a polling-thread process
        moves frames from the NIC into the received-messages queue as they
        arrive; receives then cost only the VNI dequeue.  When false, each
        receive enters the "kernel" itself
        (:data:`~repro.calibration.BLOCKING_RECV_SYSCALL`).
    """

    def __init__(self, engine, node, port: str,
                 transport: str = "bip-myrinet", polling: bool = True):
        self.engine = engine
        self.node = node
        self.port = port
        self.transport = transport
        self.polling = polling
        self.nic = node.nic(transport)
        self._rx = self.nic.open_port(port)
        self.recv_q = Channel(engine, name=f"vni-rq:{port}")
        self._poller = None
        #: Wire-level observation point: an object with ``on_send(frame)``
        #: / ``on_recv(msg)``, called synchronously on every frame this
        #: VNI sends or wraps.  Protocols and harnesses hook here when
        #: they need to see traffic below the MPI layer.
        self.tap: Optional[Any] = None
        # Per-port VNI telemetry.  The path label separates the fast data
        # path (BIP/Myrinet) from the control path (TCP/Ethernet).  A
        # restarted process reuses its port, so the series reset to zero
        # here to keep per-instance semantics.
        path = "fast" if transport == "bip-myrinet" else "control"
        reg = get_registry(engine)
        self._m_sent = reg.counter("vni.sent", port=port, path=path,
                                   help="messages handed to the driver")
        self._m_received = reg.counter("vni.received", port=port, path=path,
                                       help="messages delivered upward")
        self._m_bytes_sent = reg.counter("vni.bytes_sent", port=port,
                                         path=path)
        self._m_bytes_received = reg.counter("vni.bytes_received", port=port,
                                             path=path)
        for m in (self._m_sent, self._m_received,
                  self._m_bytes_sent, self._m_bytes_received):
            m.reset()
        if polling:
            self._poller = node.spawn(self._poll_loop(),
                                      name=f"poll:{port}")

    @property
    def layers(self):
        return self.nic.fabric.spec.layers

    @property
    def stats(self):
        """Legacy counter view (read side of the registry instruments)."""
        return {"sent": int(self._m_sent.value),
                "received": int(self._m_received.value),
                "bytes_sent": int(self._m_bytes_sent.value),
                "bytes_received": int(self._m_bytes_received.value)}

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------

    def send(self, dst_node: str, dst_port: str, payload: Any, size: int,
             kind: str = "data", pre_delay: float = 0.0):
        """Process generator: charge the VNI layer and hand to the driver.

        ``pre_delay`` folds the caller's already-owed software cost (MPI +
        application send layers) into this layer's timeout: the stack above
        charges one merged event instead of one per layer, which removes
        two engine wakeups per message without changing any total latency.
        """
        yield Timeout(self.engine, pre_delay + self.layers.vni_send)
        frame = Frame(src=self.node.node_id, dst=dst_node, port=dst_port,
                      payload=payload, size=size, kind=kind)
        if self.tap is not None:
            self.tap.on_send(frame)
        self._m_sent.inc()
        self._m_bytes_sent.inc(size)
        yield from self.nic.send(frame)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def _poll_loop(self):
        """The polling thread: drain the NIC into the receive queue."""
        try:
            while True:
                try:
                    frame = yield self._rx.get()
                except (NetworkError, NodeDown, Exception):
                    if not self.recv_q.closed:
                        self.recv_q.close(NodeDown(
                            f"VNI {self.port} lost its NIC"))
                    return
                # The polling thread's dequeue-and-enqueue cost; kernel
                # interaction already charged by the NIC driver model.
                yield Timeout(self.engine, self.layers.vni_recv)
                if not self.recv_q.closed:
                    self.recv_q.put(self._wrap(frame))
        except Interrupt:
            return

    def _wrap(self, frame: Frame) -> VniMessage:
        self._m_received.inc()
        self._m_bytes_received.inc(frame.size)
        msg = VniMessage(src_node=frame.src, src_port=frame.port,
                         payload=frame.payload, size=frame.size,
                         msg_id=next(_msg_ids), recv_time=self.engine.now)
        if self.tap is not None:
            self.tap.on_recv(msg)
        return msg

    def recv(self):
        """Process generator: next received message.

        With the polling thread, this just dequeues (the kernel work
        already happened, interleaved).  Without it, the caller pays the
        blocking-receive syscall path on every message.
        """
        if self.polling:
            msg = yield self.recv_q.get()
            return msg
        frame = yield self._rx.get()
        yield self.engine.timeout(BLOCKING_RECV_SYSCALL
                                  + self.layers.vni_recv)
        return self._wrap(frame)

    def recv_nowait(self):
        """Non-blocking probe of the received-messages queue.

        Raises the queue's close exception (:class:`~repro.errors.NodeDown`
        when the NIC went down) once the queue is closed and drained, so
        polling loops against a dead interface fail fast instead of
        spinning on ``(False, None)`` forever.
        """
        if self.polling:
            return self.recv_q.get_nowait()
        ok, frame = self._rx.get_nowait()
        if not ok:
            return False, None
        return True, self._wrap(frame)

    def pending(self) -> int:
        return len(self.recv_q) if self.polling else len(self._rx)

    def close(self) -> None:
        if self._poller is not None and self._poller.is_alive:
            self._poller.interrupt("vni-close")
        self.nic.close_port(self.port)
        if not self.recv_q.closed:
            self.recv_q.close(NodeDown(f"VNI {self.port} closed"))

    def __repr__(self) -> str:
        mode = "polling" if self.polling else "blocking"
        return f"<Vni {self.port}@{self.transport} {mode} {self.stats}>"
