"""Group communication substrate (system S4) — the Ensemble substitute.

Starfish runs all its daemons as one *process group* managed by the Ensemble
toolkit; Ensemble gives it reliable totally-ordered multicast, automatic
failure detection, and virtually-synchronous membership views.  This package
implements those guarantees over the simulated cluster:

* :class:`~repro.gcs.member.GroupMember` — one endpoint of a process group:
  heartbeat failure detection, coordinator-based view agreement with a
  flush protocol (virtual synchrony), sequencer-based total-order multicast,
  point-to-point sends, state transfer to joiners, and gossip-based view
  merge after partitions heal.

Guarantees (property-tested in ``tests/test_gcs_properties.py``):

1. **Total order** — all members deliver casts in a common order (every
   member's delivery sequence is a prefix of the longest one).
2. **Virtual synchrony** — members that transition together between two
   views deliver exactly the same set of messages in the first view.
3. **FIFO** — casts from one sender are delivered in send order.
4. **Self-delivery** — a sender delivers its own casts, totally ordered.
5. **No loss, no duplication** — across view changes, a surviving sender's
   message is delivered exactly once at every surviving member (re-cast
   after the view change if the old view could not order it).

The protocol tolerates crash failures and network partitions (partitionable
membership with merge-on-heal); like real Ensemble it assumes the transport
below it does not silently drop frames between live, connected nodes.
"""

from repro.gcs.endpoint import EndpointId, View
from repro.gcs.config import GcsConfig
from repro.gcs.events import CastEvent, GcsEvent, P2pEvent, ViewEvent
from repro.gcs.member import GroupMember

__all__ = [
    "CastEvent",
    "EndpointId",
    "GcsConfig",
    "GcsEvent",
    "GroupMember",
    "P2pEvent",
    "View",
    "ViewEvent",
]
