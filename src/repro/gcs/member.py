"""One endpoint of a virtually-synchronous process group.

The protocol (coordinator-based, sequencer total order, flush on every
membership change) is described in the package docstring.  A short map of
the moving parts inside each member:

* ``_rx`` process — drains the NIC port into the local inbox;
* ``_tx`` process — serializes outgoing protocol frames onto the NIC;
* ``_main`` process — the protocol state machine: one handler per message
  type, run strictly one message at a time (a real daemon's event loop);
* ``_ticker`` process — heartbeats, failure suspicion, flush retry,
  blocked-too-long recovery, join retry, and coordinator gossip.

A member can be in three macro-states: *joining* (no view yet), *stable*
(view installed, casts flow through the sequencer), and *blocked* (a flush
is in progress: no new casts are ordered, no deliveries happen, incoming
``Ordered`` messages are buffered and reported to the flush initiator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import Interrupt, NetworkError, NodeDown, NotMember
from repro.gcs.config import GcsConfig
from repro.gcs.endpoint import EndpointId, View, fresh_incarnation
from repro.gcs.events import CastEvent, P2pEvent, ViewEvent
from repro.gcs.messages import (Announce, CastReq, Flush, FlushOk, Hb, Join,
                                Leave, Msg, Ordered, P2p, Rel, RelAck, Sync,
                                ViewMsg)
from repro.net.message import Frame
from repro.obs.registry import get_registry
from repro.sim.channel import Channel


@dataclass
class _FlushState:
    """Coordinator-side bookkeeping of an in-progress flush."""

    epoch: int
    survivors: Tuple[EndpointId, ...]
    started: float
    replies: Dict[EndpointId, FlushOk] = field(default_factory=dict)


@dataclass
class _RelOut:
    """Per-destination sender state of the reliable-delivery sublayer."""

    next_seq: int = 0
    #: seq -> (Rel envelope, frame kind), awaiting cumulative ack.
    unacked: Dict[int, Tuple[Rel, str]] = field(default_factory=dict)
    last_tx: float = 0.0
    tries: int = 0


#: Message types that bypass the Rel sublayer: periodic ones (loss only
#: delays the next round) and the sublayer's own envelopes.
_UNRELIABLE = (Hb, Announce, Rel, RelAck)


class GroupMember:
    """A member endpoint of one process group.

    Parameters
    ----------
    node:
        The :class:`~repro.cluster.node.Node` this member runs on; its
        Ethernet NIC carries the protocol and a node crash kills the member.
    name:
        Endpoint name (daemons use ``"daemon"``).
    group:
        Group name; all members of a group must use the same one.
    state_provider:
        Zero-argument callable returning the application state blob handed
        to joiners (Ensemble-style state transfer).
    """

    def __init__(self, engine, node, name: str = "daemon",
                 group: str = "starfish",
                 config: Optional[GcsConfig] = None,
                 state_provider: Optional[Callable[[], Any]] = None):
        self.engine = engine
        self.node = node
        self.group = group
        self.cfg = config or GcsConfig()
        self.state_provider = state_provider or (lambda: None)
        self.endpoint = EndpointId(node.node_id, name, fresh_incarnation())
        self.nic = node.nic("tcp-ethernet")
        # The port is incarnation-scoped: a reincarnated member on the
        # same node must NOT receive frames addressed to its dead
        # predecessor.  Accepting them poisons the per-sender Rel streams
        # (the old stream's sequence numbers shadow the new one's, so
        # fresh sends get acked away as "duplicates" without delivery) —
        # the transport drops stale-incarnation frames at the NIC instead.
        self._port = f"gcs:{group}:{name}#{self.endpoint.inc}"
        self._rx_ch = self.nic.open_port(self._port)
        self._inbox = Channel(engine, name=f"gcs-in:{self.endpoint}")
        self._tx_q = Channel(engine, name=f"gcs-tx:{self.endpoint}")
        #: Upcalls for the layer above (daemon / tests).
        self.events = Channel(engine, name=f"gcs-ev:{self.endpoint}")

        # --- membership state ---
        self.view: Optional[View] = None
        self.max_epoch = 0
        self.blocked = False
        self._block_since = 0.0
        self._flush_accepted: Optional[Tuple[int, EndpointId]] = None
        self._active_flush: Optional[_FlushState] = None
        self._joiners: Set[EndpointId] = set()
        self._contact: Optional[EndpointId] = None
        self._left = False
        #: Fault-campaign freeze (DaemonPause): while True the member
        #: neither receives nor sends protocol traffic.
        self.paused = False

        # --- reliable-delivery sublayer (per-destination ARQ) ---
        self._rel_out: Dict[EndpointId, _RelOut] = {}
        self._rel_in_next: Dict[EndpointId, int] = {}
        self._rel_in_ooo: Dict[EndpointId, Dict[int, Msg]] = {}
        self._resync_at = -1.0

        # --- multicast state (reset per view) ---
        self._global_next = 0                       # next gseq to deliver
        self._ooo: Dict[int, Ordered] = {}          # gseq -> msg
        self._delivered_view: List[Ordered] = []    # this view, in order
        self._next_gseq = 0                         # sequencer counter
        self._ordered_keys: Set[Tuple[EndpointId, int]] = set()  # sequencer

        # --- sender state (survives view changes) ---
        self._next_lseq = 0
        self._pending: Dict[int, Tuple[Any, int]] = {}  # lseq -> (payload, size)

        # --- liveness ---
        self.last_heard: Dict[EndpointId, float] = {}
        self.known_endpoints: Set[EndpointId] = set()

        # --- metrics ---
        # Per-member series (labelled by node); a member is recreated when
        # its node restarts, so the series reset here to keep the seed's
        # fresh-instance semantics.
        self._registry = get_registry(engine)
        _mk = lambda what, h: self._registry.counter(
            "gcs." + what, node=node.node_id, help=h)
        self._m = {
            "casts": _mk("casts", "multicasts initiated"),
            "delivered": _mk("delivered", "ordered messages delivered"),
            "duplicates": _mk("duplicates",
                              "re-deliveries suppressed by key"),
            "views": _mk("views", "views installed"),
            "flushes": _mk("flushes", "flush rounds started"),
            "p2p": _mk("p2p", "point-to-point messages delivered"),
            "heartbeats": _mk("heartbeats", "heartbeats sent"),
        }
        for m in self._m.values():
            m.reset()
        self._m_retx = self._registry.counter(
            "gcs.rel_retransmits", node=node.node_id,
            help="reliable-sublayer retransmission rounds")
        self._m_retx.reset()
        self._delivered_keys: Set[Tuple[EndpointId, int]] = set()
        self._procs: List = []
        self._started = False

        self._handlers = {
            Hb: self._on_hb,
            Join: self._on_join,
            Leave: self._on_leave,
            CastReq: self._on_cast_req,
            Ordered: self._on_ordered,
            Flush: self._on_flush,
            FlushOk: self._on_flush_ok,
            Sync: self._on_sync,
            ViewMsg: self._on_view,
            Announce: self._on_announce,
            P2p: self._on_p2p,
            Rel: self._on_rel,
            RelAck: self._on_rel_ack,
        }

    @property
    def stats(self) -> Dict[str, int]:
        """Legacy counter view (read side of the registry instruments)."""
        return {k: int(m.value) for k, m in self._m.items()
                if k != "heartbeats"}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, contact: Optional[EndpointId] = None) -> None:
        """Boot the member.

        With ``contact=None`` the member founds the group as a singleton;
        otherwise it keeps sending ``Join`` to ``contact`` until a view that
        includes it is installed.
        """
        if self._started:
            raise NotMember(f"{self.endpoint} already started")
        self._started = True
        self._contact = contact
        self._procs = [
            self.node.spawn(self._rx(), name=f"gcs-rx:{self.endpoint}"),
            self.node.spawn(self._tx(), name=f"gcs-tx:{self.endpoint}"),
            self.node.spawn(self._main(), name=f"gcs-main:{self.endpoint}"),
            self.node.spawn(self._ticker(), name=f"gcs-tick:{self.endpoint}"),
        ]
        if contact is None:
            epoch = self.max_epoch + 1
            self._post(ViewMsg(group=self.group, sender=self.endpoint,
                               epoch=epoch, coordinator=self.endpoint,
                               members=(self.endpoint,)))
        else:
            self._post_join(contact)

    def stop(self) -> None:
        """Silently stop (used for graceful leave and tests)."""
        for p in self._procs:
            if p.is_alive:
                p.interrupt("gcs-stop")
        self._procs = []
        self.nic.close_port(self._port)

    def leave(self) -> None:
        """Graceful departure: notify the coordinator, then stop."""
        self._left = True
        if self.view is not None and self.view.coordinator != self.endpoint:
            self._sendto(self.view.coordinator,
                         Leave(group=self.group, sender=self.endpoint))
        elif self.view is not None and len(self.view) > 1:
            # I am the coordinator: hand off by telling the next-ranked
            # member to form the new view (it will suspect me anyway, but
            # an explicit Leave is faster).
            others = [m for m in self.view.members if m != self.endpoint]
            self._sendto(min(others),
                         Leave(group=self.group, sender=self.endpoint))
        self.stop()

    @property
    def is_coordinator(self) -> bool:
        return self.view is not None and self.view.coordinator == self.endpoint

    # ------------------------------------------------------------------
    # public sends
    # ------------------------------------------------------------------

    def cast(self, payload: Any, size: Optional[int] = None) -> int:
        """Totally-ordered multicast to the current group.

        Returns the sender-local sequence number.  Non-blocking: if a view
        change is in progress the cast is queued and ordered in the next
        view.  The message is delivered back to the sender too.
        """
        size = size if size is not None else self.cfg.control_size
        lseq = self._next_lseq
        self._next_lseq += 1
        self._pending[lseq] = (payload, size)
        self._m["casts"].inc()
        if self.view is not None and not self.blocked:
            self._sendto(self.view.coordinator,
                         CastReq(group=self.group, sender=self.endpoint,
                                 epoch=self.view.epoch, lseq=lseq,
                                 payload=payload, size=size))
        return lseq

    def send(self, dest: EndpointId, payload: Any,
             size: Optional[int] = None, kind: str = "control") -> None:
        """Reliable FIFO point-to-point message to another member.

        ``kind`` tags the frame for the Table 1 message-taxonomy audit
        (lightweight groups relay application coordination and C/R traffic
        through these sends)."""
        self._sendto(dest, P2p(group=self.group, sender=self.endpoint,
                               payload=payload,
                               size=size if size is not None
                               else self.cfg.control_size), kind=kind)

    # ------------------------------------------------------------------
    # transport plumbing
    # ------------------------------------------------------------------

    def _post(self, msg: Msg) -> None:
        """Loop a message back into our own inbox (self-delivery)."""
        if not self._inbox.closed:
            self._inbox.put(msg)

    def _sendto(self, ep: EndpointId, msg: Msg,
                kind: str = "control") -> None:
        if self.paused:
            return
        if ep == self.endpoint:
            self._post(msg)
        elif isinstance(msg, _UNRELIABLE):
            self._tx_q.put((ep, msg, kind))
        else:
            # Everything else rides the reliable sublayer: sequence it,
            # remember it until the cumulative ack, ship the envelope.
            out = self._rel_out.setdefault(ep, _RelOut())
            rel = Rel(group=self.group, sender=self.endpoint,
                      seq=out.next_seq, inner=msg)
            out.unacked[out.next_seq] = (rel, kind)
            out.next_seq += 1
            out.last_tx = self.engine.now
            self._tx_q.put((ep, rel, kind))

    def _frame_size(self, msg: Msg) -> int:
        if isinstance(msg, Rel):
            return self._frame_size(msg.inner)
        if isinstance(msg, (CastReq, Ordered, P2p)):
            return max(msg.size, self.cfg.control_size)
        if isinstance(msg, (FlushOk, Sync)):
            payload = getattr(msg, "delivered", ()) or getattr(msg, "msgs", ())
            return self.cfg.control_size * (1 + len(payload))
        return self.cfg.control_size

    def _rx(self):
        try:
            while True:
                frame = yield self._rx_ch.get()
                if self.paused:
                    continue
                if isinstance(frame.payload, Msg) and \
                        frame.payload.group == self.group:
                    self._post(frame.payload)
        except (Interrupt, Exception):
            return

    def _tx(self):
        ports: dict = {}     # EndpointId -> cached destination port string
        try:
            while True:
                ep, msg, kind = yield self._tx_q.get()
                port = ports.get(ep)
                if port is None:
                    port = ports[ep] = f"gcs:{self.group}:{ep.name}#{ep.inc}"
                frame = Frame(src=self.node.node_id, dst=ep.node,
                              port=port,
                              payload=msg, size=self._frame_size(msg),
                              kind=kind)
                try:
                    yield from self.nic.send(frame)
                except (NodeDown, NetworkError):
                    return  # our NIC died; the member is dead
        except Interrupt:
            return

    def _main(self):
        try:
            while True:
                msg = yield self._inbox.get()
                yield from self._dispatch(msg)
        except Interrupt:
            return

    def _dispatch(self, msg: Msg):
        if msg.sender != self.endpoint:
            self.last_heard[msg.sender] = self.engine.now
            self.known_endpoints.add(msg.sender)
        # Learn the highest epoch in the system from any message, so
        # a rebooted member's proposals are never stuck in the past.
        epoch = getattr(msg, "epoch", 0)
        if epoch > self.max_epoch:
            self.max_epoch = epoch
        handler = self._handlers.get(type(msg))
        if handler is None:
            return
        result = handler(msg)
        if result is not None and hasattr(result, "__next__"):
            yield from result

    # -- reliable-delivery sublayer ------------------------------------

    def _on_rel(self, msg: Rel):
        """Receive side: per-sender reorder + dedup, cumulative ack."""
        src = msg.sender
        nxt = self._rel_in_next.get(src, 0)
        if msg.seq >= nxt:
            ooo = self._rel_in_ooo.setdefault(src, {})
            ooo[msg.seq] = msg.inner
            while nxt in ooo:
                inner = ooo.pop(nxt)
                nxt += 1
                self._rel_in_next[src] = nxt
                yield from self._dispatch(inner)
        # Ack duplicates too: the original ack may have been the lost frame.
        self._sendto(src, RelAck(group=self.group, sender=self.endpoint,
                                 cum=self._rel_in_next.get(src, 0) - 1))

    def _on_rel_ack(self, msg: RelAck) -> None:
        out = self._rel_out.get(msg.sender)
        if out is None:
            return
        acked = [s for s in out.unacked if s <= msg.cum]
        for s in acked:
            del out.unacked[s]
        if acked:
            out.tries = 0

    def _rel_tick(self, now: float) -> None:
        """Retransmit unacked envelopes with exponential backoff; give a
        silent destination up after ``rel_max_tries`` (failure suspicion
        and the next flush take it from there)."""
        cfg = self.cfg
        for ep in sorted(self._rel_out):
            out = self._rel_out[ep]
            if not out.unacked:
                continue
            rto = min(cfg.rel_retry * (2 ** out.tries), cfg.rel_backoff_max)
            if now - out.last_tx < rto:
                continue
            out.tries += 1
            if out.tries > cfg.rel_max_tries:
                out.unacked.clear()
                continue
            self._m_retx.inc()
            out.last_tx = now
            for seq in sorted(out.unacked):
                rel, kind = out.unacked[seq]
                self._tx_q.put((ep, rel, kind))

    # ------------------------------------------------------------------
    # the ticker: heartbeats, suspicion, retries, gossip
    # ------------------------------------------------------------------

    def _ticker(self):
        cfg = self.cfg
        try:
            while True:
                yield self.engine.timeout(
                    cfg.heartbeat_period if self.view is not None
                    else cfg.join_retry)
                now = self.engine.now
                if self._left:
                    return
                if self.paused:
                    continue

                self._rel_tick(now)

                if self.view is None:
                    # Still joining: nag the contact (and anyone we heard of).
                    if self._contact is not None:
                        self._post_join(self._contact)
                    continue

                # Heartbeats to everybody in the view.
                for m in self.view.members:
                    if m != self.endpoint:
                        self._m["heartbeats"].inc()
                        self._sendto(m, Hb(group=self.group,
                                           sender=self.endpoint,
                                           epoch=self.view.epoch))

                alive = self._alive_members(now)
                alive_set = set(alive)
                stale = [m for m in self.view.members
                         if m not in alive_set]

                if self._active_flush is not None:
                    fl = self._active_flush
                    if now - fl.started > cfg.flush_timeout:
                        # Drop non-responders and retry.
                        responders = set(fl.replies) | {self.endpoint}
                        self._start_flush(responders)
                    continue

                if self.blocked:
                    if now - self._block_since > 3 * cfg.flush_timeout:
                        # The flush initiator died mid-flush.  Unblock and
                        # let the normal suspicion path elect a new one.
                        self.blocked = False
                        self._flush_accepted = None
                        self._recast_pending()
                    continue

                if stale or (self.is_coordinator and self._joiners):
                    candidate = min(alive) if alive else self.endpoint
                    if candidate == self.endpoint:
                        survivors = set(alive) | self._joiners
                        self._start_flush(survivors)
                    continue

                # Stable coordinator: gossip for partition merge.
                if self.is_coordinator and cfg.gossip:
                    strangers = (self.known_endpoints
                                 - set(self.view.members))
                    for ep in sorted(strangers):
                        self._sendto(ep, Announce(
                            group=self.group, sender=self.endpoint,
                            epoch=self.view.epoch,
                            members=self.view.members))
        except Interrupt:
            return

    def _alive_members(self, now: float) -> List[EndpointId]:
        out = []
        for m in self.view.members:
            if m == self.endpoint:
                out.append(m)
                continue
            heard = self.last_heard.get(m)
            if heard is not None and now - heard <= self.cfg.suspect_timeout:
                out.append(m)
        return out

    def _post_join(self, contact: EndpointId) -> None:
        # The Rel sublayer is already retrying an in-flight Join to this
        # contact with backoff; don't pile a duplicate on top.
        out = self._rel_out.get(contact)
        if out is not None and any(isinstance(rel.inner, Join)
                                   for rel, _k in out.unacked.values()):
            return
        self._sendto(contact, Join(group=self.group, sender=self.endpoint))

    def _recast_pending(self) -> None:
        if self.view is None:
            return
        for lseq in sorted(self._pending):
            payload, size = self._pending[lseq]
            self._sendto(self.view.coordinator,
                         CastReq(group=self.group, sender=self.endpoint,
                                 epoch=self.view.epoch, lseq=lseq,
                                 payload=payload, size=size))

    # ------------------------------------------------------------------
    # flush / view agreement
    # ------------------------------------------------------------------

    def _start_flush(self, survivors) -> None:
        survivors = tuple(sorted(set(survivors) | {self.endpoint}))
        epoch = self.max_epoch + 1
        self.max_epoch = epoch
        self._active_flush = _FlushState(epoch=epoch, survivors=survivors,
                                         started=self.engine.now)
        self._m["flushes"].inc()
        for m in survivors:
            self._sendto(m, Flush(group=self.group, sender=self.endpoint,
                                  epoch=epoch, survivors=survivors))

    def _on_flush(self, msg: Flush) -> None:
        if self.view is not None and msg.epoch <= self.view.epoch:
            return
        if self.endpoint not in msg.survivors:
            return
        cur = self._flush_accepted
        better = (cur is None or msg.epoch > cur[0]
                  or (msg.epoch == cur[0] and msg.sender < cur[1]))
        if not better:
            return
        self.max_epoch = max(self.max_epoch, msg.epoch)
        # A competing flush of our own that lost: abandon it.
        if (self._active_flush is not None
                and (self._active_flush.epoch < msg.epoch
                     or (self._active_flush.epoch == msg.epoch
                         and msg.sender < self.endpoint))
                and msg.sender != self.endpoint):
            self._active_flush = None
        self._flush_accepted = (msg.epoch, msg.sender)
        self.blocked = True
        self._block_since = self.engine.now
        old_epoch = self.view.epoch if self.view is not None else -1
        reply = FlushOk(group=self.group, sender=self.endpoint,
                        epoch=msg.epoch, old_epoch=old_epoch,
                        delivered=tuple(self._delivered_view),
                        ooo=tuple(self._ooo[k] for k in sorted(self._ooo)),
                        pending=tuple((lseq, p, s) for lseq, (p, s)
                                      in sorted(self._pending.items())))
        self._sendto(msg.sender, reply)

    def _on_flush_ok(self, msg: FlushOk) -> None:
        fl = self._active_flush
        if fl is None or msg.epoch != fl.epoch:
            return
        if msg.sender not in fl.survivors:
            return
        fl.replies[msg.sender] = msg
        if len(fl.replies) == len(fl.survivors):
            self._finalize_flush(fl)

    def _finalize_flush(self, fl: _FlushState) -> None:
        self._active_flush = None
        new_members = tuple(sorted(fl.survivors))
        coordinator = new_members[0]

        # Reconcile message histories per old view (virtual synchrony).
        by_old: Dict[int, List[Tuple[EndpointId, FlushOk]]] = {}
        for ep, reply in fl.replies.items():
            by_old.setdefault(reply.old_epoch, []).append((ep, reply))
        for old_epoch, reports in by_old.items():
            if old_epoch < 0:
                continue  # fresh joiners have no old view to close
            longest = max(reports, key=lambda r: len(r[1].delivered))
            final: List[Ordered] = list(longest[1].delivered)
            known = {o.key for o in final}
            extras = []
            for _ep, reply in reports:
                for o in reply.ooo:
                    if o.key not in known:
                        known.add(o.key)
                        extras.append(o)
            extras.sort(key=lambda o: (o.epoch, o.gseq))
            final.extend(extras)
            for ep, reply in reports:
                suffix = tuple(final[len(reply.delivered):])
                if suffix:
                    self._sendto(ep, Sync(group=self.group,
                                          sender=self.endpoint,
                                          epoch=fl.epoch, msgs=suffix))

        state = None
        needs_state = [ep for ep, r in fl.replies.items() if r.old_epoch < 0]
        if needs_state:
            state = self.state_provider()
        for ep in new_members:
            joiner = ep in needs_state
            self._sendto(ep, ViewMsg(group=self.group, sender=self.endpoint,
                                     epoch=fl.epoch, coordinator=coordinator,
                                     members=new_members,
                                     state=state if joiner else None))

    def _on_sync(self, msg: Sync) -> None:
        # Close the old view: deliver what the initiator says we are missing.
        for o in msg.msgs:
            self._deliver(o)

    def _on_view(self, msg: ViewMsg) -> None:
        if self.endpoint not in msg.members:
            return
        if self.view is not None and msg.epoch <= self.view.epoch:
            return
        prev = set(self.view.members) if self.view is not None else set()
        self.view = View(group=self.group, epoch=msg.epoch,
                         coordinator=msg.coordinator, members=msg.members)
        self.max_epoch = max(self.max_epoch, msg.epoch)
        self.known_endpoints.update(msg.members)
        now = self.engine.now
        for m in msg.members:
            self.last_heard[m] = now
        # Reset per-view multicast machinery.
        self._global_next = 0
        self._ooo.clear()
        self._delivered_view = []
        self._next_gseq = 0
        self._ordered_keys = set()
        self.blocked = False
        self._flush_accepted = None
        self._active_flush = None
        self._joiners -= set(msg.members)
        self._m["views"].inc()
        self._registry.events.emit(
            self.engine.now, "gcs.view", node=self.node.node_id,
            epoch=msg.epoch, members=len(msg.members))
        joined = tuple(sorted(set(msg.members) - prev))
        left = tuple(sorted(prev - set(msg.members)))
        self.events.put(ViewEvent(view=self.view, joined=joined, left=left,
                                  state=msg.state))
        self._recast_pending()

    # ------------------------------------------------------------------
    # multicast path
    # ------------------------------------------------------------------

    def _on_cast_req(self, msg: CastReq):
        if (self.view is None or msg.epoch != self.view.epoch
                or not self.is_coordinator or self.blocked):
            return None
        if (msg.sender, msg.lseq) in self._ordered_keys:
            return None  # duplicate re-cast
        if msg.sender not in self.view:
            return None
        self._ordered_keys.add((msg.sender, msg.lseq))
        # Sequencer processing cost (Ensemble round).
        yield self.engine.timeout(self.cfg.sequencer_base
                                  + len(self.view) *
                                  self.cfg.sequencer_per_member)
        if (self.view is None or msg.epoch != self.view.epoch
                or self.blocked):
            return  # a view change hit while we were processing
        gseq = self._next_gseq
        self._next_gseq += 1
        ordered = Ordered(group=self.group, sender=self.endpoint,
                          epoch=msg.epoch, gseq=gseq, origin=msg.sender,
                          lseq=msg.lseq, payload=msg.payload, size=msg.size)
        for m in self.view.members:
            self._sendto(m, ordered)

    def _on_ordered(self, msg: Ordered) -> None:
        if self.view is None or msg.epoch != self.view.epoch:
            return
        if self.blocked:
            self._ooo[msg.gseq] = msg
            return
        if msg.gseq == self._global_next:
            self._deliver(msg)
            self._global_next += 1
            while self._global_next in self._ooo:
                self._deliver(self._ooo.pop(self._global_next))
                self._global_next += 1
        elif msg.gseq > self._global_next:
            self._ooo[msg.gseq] = msg

    def _deliver(self, o: Ordered) -> None:
        self._delivered_view.append(o)
        if o.origin == self.endpoint:
            self._pending.pop(o.lseq, None)
        if o.key in self._delivered_keys:
            self._m["duplicates"].inc()
        else:
            self._delivered_keys.add(o.key)
        self._m["delivered"].inc()
        self.events.put(CastEvent(source=o.origin, payload=o.payload,
                                  epoch=o.epoch, gseq=o.gseq))

    # ------------------------------------------------------------------
    # membership requests & gossip
    # ------------------------------------------------------------------

    def _on_join(self, msg: Join) -> None:
        if self.view is None:
            return
        if not self.is_coordinator:
            self._sendto(self.view.coordinator, msg)  # forward
            return
        if msg.sender in self.view.members:
            # It probably missed the ViewMsg; resend with state.
            self._sendto(msg.sender, ViewMsg(
                group=self.group, sender=self.endpoint,
                epoch=self.view.epoch, coordinator=self.view.coordinator,
                members=self.view.members, state=self.state_provider()))
            return
        self._joiners.add(msg.sender)
        if self._active_flush is None and not self.blocked:
            alive = self._alive_members(self.engine.now)
            self._start_flush(set(alive) | self._joiners)

    def _on_leave(self, msg: Leave) -> None:
        if self.view is None or msg.sender not in self.view.members:
            return
        # Coordinator (or the designated successor of a leaving
        # coordinator) removes the leaver immediately.
        if self.is_coordinator or msg.sender == self.view.coordinator:
            survivors = [m for m in self._alive_members(self.engine.now)
                         if m != msg.sender]
            if self.endpoint in survivors:
                self._start_flush(set(survivors) | self._joiners)

    def _on_announce(self, msg: Announce) -> None:
        if self.view is None or not self.cfg.gossip:
            return
        if msg.sender in self.view.members:
            return
        if not self.is_coordinator:
            return
        if self.endpoint < msg.sender:
            if self._active_flush is None and not self.blocked:
                alive = self._alive_members(self.engine.now)
                self._start_flush(set(alive) | set(msg.members)
                                  | self._joiners)
        else:
            # Prompt the other coordinator (smaller id) to merge us.
            self._sendto(msg.sender, Announce(
                group=self.group, sender=self.endpoint,
                epoch=self.view.epoch, members=self.view.members))

    def _on_hb(self, msg: Hb) -> None:
        self.max_epoch = max(self.max_epoch, msg.epoch)
        # Epoch resync backstop: a heartbeat from a newer view means we
        # somehow missed its ViewMsg.  Re-join through the sender (the
        # coordinator resends the current view to existing members);
        # rate-limited to one nag per suspect window.
        if (self.view is not None and msg.epoch > self.view.epoch
                and self.engine.now - self._resync_at
                >= self.cfg.suspect_timeout):
            self._resync_at = self.engine.now
            self._post_join(msg.sender)

    def _on_p2p(self, msg: P2p) -> None:
        self._m["p2p"].inc()
        self.events.put(P2pEvent(source=msg.sender, payload=msg.payload))

    def __repr__(self) -> str:
        v = f"view#{self.view.epoch}x{len(self.view)}" if self.view else "joining"
        flags = "".join(f for f, on in
                        (("B", self.blocked), ("C", self.is_coordinator))
                        if on)
        return f"<GroupMember {self.endpoint} {v} {flags}>"
