"""Endpoint identities and membership views."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

_incarnations = itertools.count(1)


def fresh_incarnation() -> int:
    """A process-unique incarnation number for a new endpoint."""
    return next(_incarnations)


@dataclass(frozen=True, order=True)
class EndpointId:
    """Identity of one group member.

    The ``inc`` field distinguishes a recovered daemon from its crashed
    previous life on the same node — the old endpoint is removed from the
    view by failure detection while the new one joins as a new member.

    The ordering (node, name, inc) is the coordinator *rank*: the smallest
    live endpoint of a view is its coordinator.

    Equality and hashing are hand-written: endpoint ids are compared and
    hashed millions of times in view maintenance (heartbeat fan-out,
    aliveness scans), and in-simulation messages carry them by reference,
    so the identity fast path almost always hits; the hash is computed
    once.
    """

    node: str
    name: str
    inc: int
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        object.__setattr__(self, "_hash",
                           hash((self.node, self.name, self.inc)))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not EndpointId:
            return NotImplemented
        return (self.inc == other.inc and self.node == other.node
                and self.name == other.name)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.node}/{self.name}#{self.inc}"


@dataclass(frozen=True)
class View:
    """One installed membership view of a group.

    ``epoch`` increases across every view change in the system (including
    across concurrent partitions — coordinators always propose
    ``max(seen)+1``), so epochs totally order the views any single member
    installs.
    """

    group: str
    epoch: int
    coordinator: EndpointId
    members: Tuple[EndpointId, ...]

    def __contains__(self, ep: EndpointId) -> bool:
        return ep in self.members

    def __len__(self) -> int:
        return len(self.members)

    def rank(self, ep: EndpointId) -> int:
        return self.members.index(ep)

    def member_on(self, node: str) -> Optional[EndpointId]:
        """The member running on ``node``, if any."""
        for m in self.members:
            if m.node == node:
                return m
        return None

    def __repr__(self) -> str:
        who = ", ".join(str(m) for m in self.members)
        return f"<View {self.group}#{self.epoch} coord={self.coordinator} [{who}]>"
