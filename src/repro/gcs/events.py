"""Events a :class:`~repro.gcs.member.GroupMember` delivers upward.

The daemon (or a test) consumes these from ``member.events`` — a FIFO
channel — exactly like Ensemble upcalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from repro.gcs.endpoint import EndpointId, View


class GcsEvent:
    """Base class of all group upcalls."""


@dataclass(frozen=True)
class ViewEvent(GcsEvent):
    """A new view was installed.

    ``joined``/``left`` are relative to the previous view *at this member*;
    ``state`` carries the coordinator-provided state transfer blob when this
    member entered the group with this view (``None`` otherwise).
    """

    view: View
    joined: Tuple[EndpointId, ...]
    left: Tuple[EndpointId, ...]
    state: Any = None


@dataclass(frozen=True)
class CastEvent(GcsEvent):
    """A totally-ordered group multicast."""

    source: EndpointId
    payload: Any
    epoch: int = 0
    gseq: int = 0


@dataclass(frozen=True)
class P2pEvent(GcsEvent):
    """A point-to-point message from another member."""

    source: EndpointId
    payload: Any
