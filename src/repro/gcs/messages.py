"""Wire messages of the group-communication protocol.

All of these travel as ``kind="control"`` frames on the Ethernet fabric
(group communication is deliberately *not* on the Myrinet fast path — the
paper's architecture keeps it off the critical data path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gcs.endpoint import EndpointId


@dataclass(frozen=True)
class Msg:
    """Base: every protocol message names its group and its sender."""

    group: str
    sender: EndpointId


@dataclass(frozen=True)
class Hb(Msg):
    """Heartbeat (also refreshes liveness of its sender)."""

    epoch: int


@dataclass(frozen=True)
class Join(Msg):
    """Request to be added to the group (sent to a contact/coordinator)."""


@dataclass(frozen=True)
class Leave(Msg):
    """Graceful departure notice (sent to the coordinator)."""


@dataclass(frozen=True)
class CastReq(Msg):
    """A member asks the sequencer to order its multicast."""

    epoch: int
    lseq: int            # sender-local sequence number (never reused)
    payload: Any
    size: int


@dataclass(frozen=True)
class Ordered(Msg):
    """Sequencer-assigned multicast, relayed to every member."""

    epoch: int
    gseq: int            # position in the view's total order
    origin: EndpointId   # original caster
    lseq: int
    payload: Any
    size: int

    @property
    def key(self) -> Tuple[EndpointId, int]:
        return (self.origin, self.lseq)


@dataclass(frozen=True)
class Flush(Msg):
    """Start of a view change: freeze and report your old-view messages."""

    epoch: int
    survivors: Tuple[EndpointId, ...]


@dataclass(frozen=True)
class FlushOk(Msg):
    """A member's flush report."""

    epoch: int
    old_epoch: int                      # epoch of the view being flushed
    delivered: Tuple[Ordered, ...]      # in delivery order (a prefix)
    ooo: Tuple[Ordered, ...]            # received but not yet delivered
    pending: Tuple[Tuple[int, Any, int], ...]  # own (lseq, payload, size)


@dataclass(frozen=True)
class Sync(Msg):
    """Messages a member must still deliver to close its old view."""

    epoch: int
    msgs: Tuple[Ordered, ...]


@dataclass(frozen=True)
class ViewMsg(Msg):
    """Install a new view.  ``state`` is the transfer blob for joiners."""

    epoch: int
    coordinator: EndpointId
    members: Tuple[EndpointId, ...]
    state: Any = None


@dataclass(frozen=True)
class Announce(Msg):
    """Coordinator gossip for partition merge."""

    epoch: int
    members: Tuple[EndpointId, ...]


@dataclass(frozen=True)
class P2p(Msg):
    """Point-to-point payload between members."""

    payload: Any
    size: int


@dataclass(frozen=True)
class Rel(Msg):
    """Reliable-delivery envelope: per-destination FIFO sequence number
    around an ``inner`` control message.

    The fabric can silently drop frames; heartbeats and gossip are
    periodic so loss only delays them, but a lost ``Ordered`` / ``Flush``
    / ``ViewMsg`` would wedge the protocol.  Every unicast control send
    except ``Hb``/``Announce`` therefore travels inside a ``Rel``; the
    receiver reorders, de-duplicates and cumulatively acknowledges."""

    seq: int
    inner: Msg


@dataclass(frozen=True)
class RelAck(Msg):
    """Cumulative acknowledgement: all of the sender's ``Rel`` envelopes
    with ``seq <= cum`` were delivered."""

    cum: int
