"""Tunables of the group-communication protocols."""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import (ENSEMBLE_PER_MEMBER, ENSEMBLE_ROUND_BASE,
                               HEARTBEAT_PERIOD, SUSPECT_TIMEOUT)


@dataclass(frozen=True)
class GcsConfig:
    """Protocol timing knobs.

    The defaults follow ``repro.calibration``; long-running benchmarks (the
    once-an-hour checkpoint claim) raise the heartbeat period so failure
    detection traffic does not dominate the event count.
    """

    #: Period of all-to-all heartbeats.
    heartbeat_period: float = HEARTBEAT_PERIOD
    #: Silence after which a member is suspected.
    suspect_timeout: float = SUSPECT_TIMEOUT
    #: How long a flush coordinator waits for FLUSH_OK before dropping
    #: non-responders and retrying.
    flush_timeout: float = 0.25
    #: Gossip period for coordinator ANNOUNCE messages (partition merge).
    announce_period: float = 0.5
    #: Join-retry cadence for members that have no view yet (independent
    #: of the heartbeat period, which may be slow on long-running setups).
    join_retry: float = 0.1
    #: Enable gossip-based merge of concurrent views.
    gossip: bool = True
    #: Sequencer processing cost per multicast: base + per-member term.
    sequencer_base: float = ENSEMBLE_ROUND_BASE
    sequencer_per_member: float = ENSEMBLE_PER_MEMBER
    #: Modelled wire size of protocol control frames.
    control_size: int = 192
    #: Base retransmit timeout of the reliable-delivery (``Rel``) sublayer;
    #: doubles per retry up to :attr:`rel_backoff_max`.
    rel_retry: float = 0.1
    #: Cap of the exponential retransmit backoff.
    rel_backoff_max: float = 0.8
    #: Retries before giving a destination up for dead (failure suspicion
    #: and the next flush handle it from there).
    rel_max_tries: int = 20
