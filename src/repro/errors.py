"""Exception hierarchy for the Starfish reproduction.

Every layer of the system raises exceptions derived from :class:`ReproError`
so callers can distinguish library failures from programming errors.  The
hierarchy mirrors the system inventory in ``DESIGN.md``: simulation kernel,
network, group communication, daemon/client protocol, MPI, and
checkpoint/restart each get their own subtree.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """A violation of the discrete-event kernel's rules."""


class StopSimulation(Exception):
    """Internal control-flow signal used to halt :meth:`Engine.run`.

    Deliberately *not* a :class:`ReproError`: user code must never catch it.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a simulated process by :meth:`Process.interrupt`.

    Also not a :class:`ReproError`; it is part of the normal control flow of
    simulated processes (e.g. a daemon interrupting an application process
    when its node is being shut down).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        return self.args[0]


# ---------------------------------------------------------------------------
# Cluster / network substrate
# ---------------------------------------------------------------------------

class ClusterError(ReproError):
    """Errors from the cluster model (unknown nodes, double crash...)."""


class NodeDown(ClusterError):
    """An operation was attempted on a crashed or disabled node."""


class NetworkError(ReproError):
    """Errors from the network substrate."""


class ConnectionClosed(NetworkError):
    """The peer of a reliable connection crashed or closed the connection."""


class Unreachable(NetworkError):
    """No route to the destination (partition or missing NIC)."""


# ---------------------------------------------------------------------------
# Group communication / lightweight groups
# ---------------------------------------------------------------------------

class GcsError(ReproError):
    """Errors from the group-communication substrate."""


class NotMember(GcsError):
    """Operation requires group membership the endpoint does not have."""


class ViewChangeInProgress(GcsError):
    """Multicast attempted while the group is blocked for a flush."""


# ---------------------------------------------------------------------------
# Daemon / client protocol
# ---------------------------------------------------------------------------

class DaemonError(ReproError):
    """Errors from the Starfish daemon."""


class ProtocolError(DaemonError):
    """Malformed or out-of-sequence client protocol command."""


class AuthenticationError(ProtocolError):
    """Login failed or a command required privileges the session lacks."""


class UnknownApplication(DaemonError):
    """A client referred to an application id the cluster does not know."""


class PlacementError(DaemonError):
    """The scheduler could not place all processes of an application."""


class RequestTimeout(NetworkError):
    """A bounded wait for a reply expired (client command, connect...)."""


# ---------------------------------------------------------------------------
# System-level degradation (the Starfish facade)
# ---------------------------------------------------------------------------

class StarfishError(DaemonError):
    """System-level failures of the Starfish facade.

    Raised (instead of hanging or surfacing a confusing low-level error)
    when a fault schedule pushes the cluster past what the protocols can
    absorb.  Subclass of :class:`DaemonError` so existing ``except
    DaemonError`` call sites keep working.
    """


class ConvergenceTimeout(StarfishError):
    """The Starfish group failed to agree on a view within the deadline."""


class MajorityLost(StarfishError):
    """Too few daemons survive for the requested operation to ever finish."""


# ---------------------------------------------------------------------------
# Fault campaigns
# ---------------------------------------------------------------------------

class CampaignError(StarfishError):
    """A fault campaign could not be set up or driven to its end."""


class InvariantViolation(CampaignError):
    """An invariant checker found a violated system property."""


# ---------------------------------------------------------------------------
# Fleet control plane
# ---------------------------------------------------------------------------

class FleetError(StarfishError):
    """Errors from the fleet control plane (:mod:`repro.fleet`)."""


class FleetOracleViolation(FleetError):
    """The :class:`repro.fleet.FleetOracle` found a violated fleet
    invariant (quota breach, placement on a forbidden node, or a job
    left in a non-terminal state without a typed reason)."""


# ---------------------------------------------------------------------------
# MPI
# ---------------------------------------------------------------------------

class MpiError(ReproError):
    """Errors raised by the MPI module."""


class InvalidRank(MpiError):
    """Rank outside the communicator, or wildcard used where forbidden."""


class InvalidTag(MpiError):
    """Negative tag (other than the ANY_TAG wildcard) used for sending."""


class CommunicatorError(MpiError):
    """Operation on a freed/invalid communicator."""


class TruncationError(MpiError):
    """A receive buffer was smaller than the matched message."""


class AbortError(MpiError):
    """MPI_Abort was called, or the job was killed by a fault policy."""


# ---------------------------------------------------------------------------
# Checkpoint / restart & heterogeneity
# ---------------------------------------------------------------------------

class CheckpointError(ReproError):
    """Errors from the checkpoint/restart framework."""


class NoCheckpoint(CheckpointError):
    """Restart requested but no (consistent) checkpoint exists."""


class RecoveryLineError(CheckpointError):
    """No consistent recovery line could be computed (domino collapse)."""


class OracleViolation(CheckpointError):
    """A C/R protocol broke a per-wave state-machine invariant.

    Raised by the always-on :class:`repro.check.WaveOracle` the instant
    the invariant breaks (not at end-of-run), so the failing schedule is
    still on the stack.  Under the ``repro check`` harness the violation
    is recorded with the perturbation seed that exposed it.
    """


class RepresentationError(ReproError):
    """Errors converting data between machine representations."""


class WordSizeOverflow(RepresentationError):
    """An unboxed integer does not fit the target architecture's VM word."""
