"""Multi-level checkpoint storage: L1 memory / L2 disk / L3 fabric.

:class:`TieredStore` composes the storage models the repo already has
into a ReStore-style hierarchy (ISSUE 7):

* **L1 — in-memory partner copies**: each dump streams to ``k`` partner
  nodes' RAM over the fast fabric (written at network speed, read back
  at memory speed, lost with their holders).  The writer's own RAM never
  counts — it dies with the writer.
* **L2 — local disk**: the paper's measured IDE path, exactly today's
  default store.
* **L3 — replicated fabric**: the :class:`~repro.store.replicated.
  ReplicatedStore` ``k``-way fan-out onto remote disks.

Configure the levels per cluster with ``ClusterSpec(store_tiers=...)``;
any non-empty subset works, e.g. ``("memory",)`` is pure diskless and
``("memory", "disk", "fabric")`` is the full hierarchy.

**Promotion**: ``write-through`` (default) makes the protocol's dump
wait for every configured tier — the commit certifies the full
hierarchy.  ``write-back`` returns after the FIRST (fastest) tier and a
background flusher pushes the remaining tiers later; faster waves, but a
crash in the window leaves only the fast-tier copies.

**Delta checkpoints** (``delta_depth > 0``): ``bytes`` images are diffed
against the rank's previous image (:mod:`repro.store.delta`); the stored
record carries only the changed blocks (``record.nbytes`` = delta
payload, ``record.full_nbytes`` = logical size, ``record.delta_of`` =
the link's base version).  Every ``delta_depth`` deltas the chain is cut
with a fresh full base.  Restores replay base + deltas; GC never
collects a base a retained delta still needs.

**Shrink-to-fit recovery**: reads walk :meth:`available_by_tier` —
memory first, then local disk, then the nearest durable holder — per
chain link, so losing a tier degrades restore speed instead of losing
the line.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.ckpt.storage import (CheckpointRecord, TIER_DISK, TIER_FABRIC,
                                TIER_MEMORY, TIER_ORDER)
from repro.errors import CheckpointError, NoCheckpoint
from repro.obs.registry import get_registry
from repro.sim.channel import Channel
from repro.store.delta import delta_encode, squash
from repro.store.replicated import ReplicatedStore

#: Promotion policies.
WRITE_THROUGH = "write-through"
WRITE_BACK = "write-back"
PROMOTIONS = (WRITE_THROUGH, WRITE_BACK)

#: Metadata floor charged for a delta that carries (almost) no payload.
MIN_DELTA_NBYTES = 512


def normalize_tiers(tiers) -> Tuple[str, ...]:
    """Validate and order a tier selection fastest-first."""
    if not tiers:
        raise CheckpointError("store_tiers must name at least one tier")
    seen = set()
    for t in tiers:
        if t not in TIER_ORDER:
            raise CheckpointError(
                f"unknown store tier {t!r} (known: {', '.join(TIER_ORDER)})")
        if t in seen:
            raise CheckpointError(f"duplicate store tier {t!r}")
        seen.add(t)
    return tuple(t for t in TIER_ORDER if t in seen)


class TieredStore(ReplicatedStore):
    """Multi-level checkpoint store (L1 memory / L2 disk / L3 fabric)."""

    def __init__(self, engine, cluster, tiers=TIER_ORDER, k: int = 2,
                 policy="ring", delta_depth: int = 0,
                 promotion: str = WRITE_THROUGH):
        super().__init__(engine, cluster, k=k, policy=policy)
        self.tiers = normalize_tiers(tiers)
        if promotion not in PROMOTIONS:
            raise CheckpointError(
                f"unknown promotion policy {promotion!r} "
                f"(known: {', '.join(PROMOTIONS)})")
        if int(delta_depth) < 0:
            raise CheckpointError(
                f"delta_depth must be >= 0, got {delta_depth}")
        self.promotion = promotion
        self.delta_depth = int(delta_depth)
        #: Home tier: what the record's legacy ``in_memory`` flag means.
        self.home_tier = (TIER_MEMORY if self.tiers == (TIER_MEMORY,)
                          else TIER_DISK if TIER_DISK in self.tiers
                          else TIER_FABRIC)
        #: (app_id, rank) -> (version, full image bytes) — the diff base
        #: for the NEXT dump (always the previous full content).
        self._base_cache: Dict[Tuple[str, int], Tuple[int, bytes]] = {}
        #: (app_id, rank) -> deltas since the last full base.
        self._chain_len: Dict[Tuple[str, int], int] = {}
        #: Write-back: (writer node id, key, record, pending tiers).
        self._backlog: deque = deque()
        reg = get_registry(engine)
        self._m_tier_writes = {
            t: reg.counter("store.tier.writes", tier=t,
                           help="tier copies written") for t in TIER_ORDER}
        self._m_tier_reads = {
            t: reg.counter("store.tier.reads", tier=t,
                           help="chain-link reads served per tier")
            for t in TIER_ORDER}
        self._m_deltas = reg.counter(
            "store.delta.records", help="incremental (delta) dumps stored")
        self._m_delta_saved = reg.counter(
            "store.delta.bytes_saved",
            help="bytes NOT written thanks to delta capture")
        self._m_squashes = reg.counter(
            "store.delta.squashes",
            help="delta chains cut with a fresh full base")
        self._m_flushes = reg.counter(
            "store.tier.flushes", help="write-back flushes completed")
        self._m_flush_dropped = reg.counter(
            "store.tier.flush_dropped",
            help="write-back flushes abandoned (writer died / record GCed)")
        reg.gauge_fn("store.tier.flush_backlog",
                     lambda: float(len(self._backlog)))
        self._flush_wake = None
        if self.promotion == WRITE_BACK:
            self._flush_wake = Channel(engine, name="store-tier-flush")
            engine.process(self._flush_loop(), name="store-tier-flush")

    # ------------------------------------------------------------------
    # writing: delta capture + per-tier fan-out
    # ------------------------------------------------------------------

    def write(self, node, record: CheckpointRecord,
              bandwidth: Optional[float] = None):
        """Process generator: dump ``record`` through the tier stack.

        Write-through waits for every configured tier; write-back
        returns after the fastest and leaves the rest to the flusher.
        """
        self._deltify(record)
        record.tier = self.home_tier
        key = (record.app_id, record.rank, record.version)
        self._register(key, record)
        self._m_writes.inc()
        self._m_bytes.inc(record.nbytes)
        if self.promotion == WRITE_BACK and len(self.tiers) > 1:
            inline, deferred = self.tiers[:1], self.tiers[1:]
        else:
            inline, deferred = self.tiers, ()
        for tier in inline:
            yield from self._write_into(node, record, tier, bandwidth)
        if deferred:
            self._backlog.append((node.node_id, key, record, deferred))
            self._flush_wake.put(True)

    def _write_into(self, node, record: CheckpointRecord, tier: str,
                    bandwidth: Optional[float] = None):
        """Process generator: land one tier's copies of ``record``."""
        if tier == TIER_DISK:
            yield from node.disk.write(record.nbytes, bandwidth=bandwidth)
            if self.node_up(node.node_id):
                record.add_holder(TIER_DISK, node.node_id)
                self._m_tier_writes[TIER_DISK].inc()
        elif tier == TIER_MEMORY:
            # The writer's RAM dies with the writer, so L1 wants k FULL
            # partner copies (the fabric tier's k counts the primary's
            # own disk; replicas() hands back k-1 picks).
            targets = self.policy.replicas(
                (record.app_id, record.rank, record.version),
                node.node_id, self.candidates(node.node_id), self.k + 1)
            yield from self._replicate(node, record, tier=TIER_MEMORY,
                                       targets=targets)
            self._m_tier_writes[TIER_MEMORY].inc()
        else:
            yield from self._replicate(node, record, tier=TIER_FABRIC)
            self._m_tier_writes[TIER_FABRIC].inc()

    def _flush_loop(self):
        """Write-back daemon: push deferred tiers in arrival order."""
        while True:
            yield self._flush_wake.get()
            while self._backlog:
                node_id, key, record, tiers = self._backlog.popleft()
                if self._records.get(key) is not record:
                    self._m_flush_dropped.inc()      # GCed before flush
                    continue
                node = self.cluster.nodes.get(node_id)
                ok = True
                for tier in tiers:
                    if node is None or not self.node_up(node_id):
                        ok = False                   # writer died first
                        break
                    yield from self._write_into(node, record, tier)
                if ok:
                    self._m_flushes.inc()
                else:
                    self._m_flush_dropped.inc()

    # ------------------------------------------------------------------
    # delta capture
    # ------------------------------------------------------------------

    def _deltify(self, record: CheckpointRecord) -> None:
        """Turn ``record`` into an incremental image when it can be one.

        Only ``bytes`` images (the VM checkpointers) are delta-able;
        native live-object dumps always go full.  The diff base is the
        rank's previous full content, cached writer-side — rebuilding it
        from the store would charge a read we never perform.
        """
        if not isinstance(record.image, (bytes, bytearray)):
            return
        rkey = (record.app_id, record.rank)
        full = bytes(record.image)
        prev = self._base_cache.get(rkey)
        chain = self._chain_len.get(rkey, 0)
        self._base_cache[rkey] = (record.version, full)
        if self.delta_depth <= 0 or prev is None \
                or not self.has(record.app_id, record.rank, prev[0]):
            self._chain_len[rkey] = 0
            return
        if chain >= self.delta_depth:
            # Chain squash: cut a fresh full base.
            self._chain_len[rkey] = 0
            self._m_squashes.inc()
            return
        prev_version, prev_full = prev
        delta = delta_encode(prev_full, full)
        record.delta_of = prev_version
        record.full_nbytes = record.nbytes
        record.image = delta
        record.nbytes = max(delta.nbytes, MIN_DELTA_NBYTES)
        self._chain_len[rkey] = chain + 1
        self._m_deltas.inc()
        self._m_delta_saved.inc(max(0, record.full_nbytes - record.nbytes))

    def _chain(self, app_id: str, rank: int, version: int):
        """The record chain newest-first down to its full base.

        Raises :class:`NoCheckpoint` when a link is gone entirely.
        """
        out = []
        v = version
        while True:
            rec = self.peek(app_id, rank, v)
            out.append(((app_id, rank, v), rec))
            if rec.delta_of is None:
                return out
            v = rec.delta_of

    def _chain_needed(self, app_id: str, floor: int) -> set:
        """Keys below ``floor`` still needed as delta bases by records at
        or above it (or read-pinned)."""
        needed: set = set()
        for key, rec in self._records.items():
            if key[0] != app_id:
                continue
            if key[2] < floor and not self._pins.get(key):
                continue
            base = rec.delta_of
            r = rec
            while base is not None:
                bkey = (app_id, key[1], base)
                if bkey in needed:
                    break
                needed.add(bkey)
                r = self._records.get(bkey)
                base = r.delta_of if r is not None else None
        return needed

    # ------------------------------------------------------------------
    # reading: shrink-to-fit tier walk + chain replay
    # ------------------------------------------------------------------

    def record_available(self, app_id: str, rank: int, version: int,
                         from_node: Optional[str] = None) -> bool:
        """A tiered record is usable iff EVERY chain link down to its
        full base still has a reachable copy in some tier."""
        rec = self._records.get((app_id, rank, version))
        while rec is not None:
            if not self.available_holders(rec, from_node=from_node):
                return False
            if rec.delta_of is None:
                return True
            rec = self._records.get((app_id, rank, rec.delta_of))
        return False

    def read(self, node, app_id: str, rank: int, version: int,
             bandwidth: Optional[float] = None):
        """Process generator: load a record, fastest tier per link.

        Delta chains read every link (base first) and replay the deltas;
        the returned record is a full-image VIEW of the stored head
        (callers see ``image``/``nbytes`` as if the dump had been full).
        All links are read-pinned for the duration.
        """
        chain = self._chain(app_id, rank, version)
        for key, _rec in chain:
            self._pin(key)
        try:
            for _key, rec in reversed(chain):
                yield from self._fetch(node, rec, bandwidth)
            self._m_reads.inc()
            head = chain[0][1]
            if head.delta_of is None:
                return head
            base = chain[-1][1].image
            deltas = [rec.image for _k, rec in reversed(chain[:-1])]
            return replace(
                head, image=squash(base, deltas),
                nbytes=head.full_nbytes or head.nbytes,
                delta_of=None, full_nbytes=None,
                holders={t: list(h) for t, h in head.holders.items()})
        finally:
            for key, _rec in chain:
                self._unpin(key)

    def _fetch(self, node, rec: CheckpointRecord,
               bandwidth: Optional[float] = None):
        """Process generator: pull ONE chain link from its fastest tier."""
        by_tier = self.available_by_tier(rec, from_node=node.node_id)
        if TIER_MEMORY in by_tier:
            from repro.calibration import BIP_BANDWIDTH, US
            yield self.engine.timeout(200 * US
                                      + rec.nbytes / BIP_BANDWIDTH)
            self._m_tier_reads[TIER_MEMORY].inc()
            return
        for tier in (TIER_DISK, TIER_FABRIC):
            held = by_tier.get(tier)
            if not held:
                continue
            if node.node_id in held:
                yield from node.disk.read(rec.nbytes, bandwidth=bandwidth)
            else:
                snode = self.cluster.nodes[held[0]]
                yield from snode.disk.read(rec.nbytes)
                yield self.engine.timeout(
                    self.cluster.myrinet.spec.one_way(rec.nbytes))
                self._m_remote_reads.inc()
            self._m_tier_reads[tier].inc()
            return
        raise NoCheckpoint(
            f"no tier holds a reachable copy of (app={rec.app_id}, "
            f"rank={rec.rank}, version={rec.version}); "
            f"holders={rec.holders}")

    # ------------------------------------------------------------------
    # GC: never collect a base a retained delta still needs
    # ------------------------------------------------------------------

    def gc_committed(self, app_id: str, keep: int = 1) -> int:
        committed = self._committed.get(app_id)
        if not committed or keep < 1 or len(committed) <= keep:
            return 0
        floor = sorted(committed)[-keep]
        self._gc_floor[app_id] = max(floor, self._gc_floor.get(app_id, 0))
        needed = self._chain_needed(app_id, floor)
        victims = [k for k in self._records
                   if k[0] == app_id and k[2] < floor
                   and not self._pins.get(k) and k not in needed]
        for key in victims:
            del self._records[key]
        self._committed[app_id] = [v for v in committed if v >= floor]
        return len(victims)

    def _unpin(self, key) -> None:
        count = self._pins.get(key, 0) - 1
        if count > 0:
            self._pins[key] = count
            return
        self._pins.pop(key, None)
        floor = self._gc_floor.get(key[0])
        if floor is not None and key[2] < floor \
                and key not in self._chain_needed(key[0], floor):
            self._records.pop(key, None)

    # ------------------------------------------------------------------
    # repair plumbing
    # ------------------------------------------------------------------

    def repair_tier(self, record: CheckpointRecord) -> str:
        """Re-replication tops up the most durable configured tier."""
        return self.tiers[-1]

    def repair_sources(self, record: CheckpointRecord,
                       tier: str) -> List[str]:
        """Every durable copy counts toward the fabric target (the
        primary's local-disk copy is as good a source as a replica)."""
        if tier == TIER_MEMORY:
            return super().repair_sources(record, tier)
        out: List[str] = []
        for t in (TIER_DISK, TIER_FABRIC):
            for h in record.holders.get(t, ()):
                if h not in out and self.node_up(h):
                    out.append(h)
        return out

    def tier_map(self, app_id: Optional[str] = None):
        """Rows of (key, record, per-tier live holders) for the CLI."""
        return [(key, rec, self.available_by_tier(rec))
                for key, rec in self.iter_records(app_id)]

    def __repr__(self) -> str:
        return (f"<TieredStore tiers={'+'.join(self.tiers)} k={self.k} "
                f"promotion={self.promotion} delta_depth={self.delta_depth} "
                f"{len(self._records)} records>")
