"""The public checkpoint-store contract.

:class:`StoreBackend` is the ``typing.Protocol`` every store implements —
the idealized :class:`~repro.ckpt.storage.CheckpointStore`, the k-way
:class:`~repro.store.replicated.ReplicatedStore` and the multi-level
:class:`~repro.store.tiers.TieredStore`.  Protocol code (the C/R roles in
``repro.ckpt.protocols``, the restart planners, the check harness, the
CLI) programs against THIS surface only; reaching into ``_records`` /
``_committed`` privates is a bug, and ``tests/test_store_tiers.py``
asserts conformance for all three stores.

Tier names (:data:`TIER_MEMORY` / :data:`TIER_DISK` / :data:`TIER_FABRIC`)
are defined next to :class:`~repro.ckpt.storage.CheckpointRecord` and
re-exported here so store users need only this package.
"""

from __future__ import annotations

from typing import (Dict, Iterable, Iterator, List, Optional, Protocol,
                    Tuple, runtime_checkable)

from repro.ckpt.storage import (CheckpointRecord, TIER_DISK, TIER_FABRIC,
                                TIER_MEMORY, TIER_ORDER)

__all__ = [
    "CheckpointRecord",
    "StoreBackend",
    "TIER_DISK",
    "TIER_FABRIC",
    "TIER_MEMORY",
    "TIER_ORDER",
]


@runtime_checkable
class StoreBackend(Protocol):
    """What a checkpoint store owes the rest of the system.

    Writes and reads are *process generators* (they yield sim events and
    charge disk/network time); everything else is synchronous metadata.
    ``isinstance(store, StoreBackend)`` checks the surface structurally —
    the conformance test instantiates all stores against it.
    """

    # -- writing -------------------------------------------------------

    def write(self, node, record: CheckpointRecord,
              bandwidth: Optional[float] = None):
        """Process generator: make ``record`` durable via ``node``."""
        ...

    def write_tier(self, record: CheckpointRecord, tier: str,
                   holder_node: str) -> None:
        """Register a copy of ``record`` in ``tier`` on ``holder_node``
        (no IO charged; mirrors of the same snapshot add holders)."""
        ...

    def commit(self, app_id: str, version: int) -> None:
        """Mark a coordinated version as a recovery line."""
        ...

    # -- reading -------------------------------------------------------

    def read(self, node, app_id: str, rank: int, version: int,
             bandwidth: Optional[float] = None):
        """Process generator: load a record at ``node``, preferring the
        fastest tier holding a usable copy."""
        ...

    def peek(self, app_id: str, rank: int,
             version: int) -> CheckpointRecord:
        """Metadata access without IO cost (raises ``NoCheckpoint``)."""
        ...

    def has(self, app_id: str, rank: int, version: int) -> bool:
        ...

    # -- availability --------------------------------------------------

    def available_holders(self, record: CheckpointRecord,
                          from_node: Optional[str] = None) -> List[str]:
        """Usable holders, fastest tier first."""
        ...

    def available_by_tier(self, record: CheckpointRecord,
                          from_node: Optional[str] = None
                          ) -> Dict[str, List[str]]:
        """Per-tier usable holders (the shrink-to-fit fallback order)."""
        ...

    def record_available(self, app_id: str, rank: int, version: int,
                         from_node: Optional[str] = None) -> bool:
        ...

    def latest_restorable(self, app_id: str, ranks: Iterable[int],
                          from_node: Optional[str] = None
                          ) -> Optional[int]:
        ...

    def latest_committed(self, app_id: str) -> Optional[int]:
        ...

    def committed_versions(self, app_id: str) -> List[int]:
        ...

    def versions_of(self, app_id: str, rank: int) -> List[int]:
        ...

    def max_version(self, app_id: str) -> int:
        ...

    def mirror_fanout(self) -> int:
        """In-memory copies per diskless/L1 record."""
        ...

    # -- membership & GC -----------------------------------------------

    def on_membership(self, node_id: str, event: str) -> None:
        """Cluster watcher upcall (``crash``/``recover``/``add``/
        ``remove``), synchronous with the membership change."""
        ...

    def drop_volatile(self, node_id: str) -> int:
        ...

    def gc_committed(self, app_id: str, keep: int = 1) -> int:
        ...

    def drop_app(self, app_id: str) -> None:
        ...

    def iter_records(self, app_id: Optional[str] = None
                     ) -> Iterator[Tuple[Tuple[str, int, int],
                                         CheckpointRecord]]:
        """Public repository walk in deterministic key order."""
        ...

    def repair_tier(self, record: CheckpointRecord) -> str:
        """Which tier re-replication tops up for this record."""
        ...
