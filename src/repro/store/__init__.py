"""Checkpoint storage backends (replicated fabric, multi-level tiers).

The public store surface (ISSUE 7's api_redesign):

* :class:`~repro.store.base.StoreBackend` — the ``typing.Protocol``
  every store implements; protocol code programs against it only;
* :class:`~repro.ckpt.storage.CheckpointStore` — the paper's idealized
  single-copy stable storage (the default);
* :class:`~repro.store.replicated.ReplicatedStore` — k-replica fan-out,
  pluggable placement, reachability-aware availability, read-pinned GC;
* :class:`~repro.store.tiers.TieredStore` — the L1 memory / L2 disk /
  L3 fabric hierarchy with write-through/write-back promotion and delta
  checkpoints (:mod:`~repro.store.delta`);
* :class:`~repro.store.repair.RepairService` — failure-driven, budgeted
  re-replication;
* :mod:`~repro.store.placement` — placement policies (ring successor,
  seeded-random, partition-aware) and the diskless protocol's
  :func:`rotating_mirrors` rule.

Enable per cluster with ``ClusterSpec(replication_factor=2)`` or
``ClusterSpec(store_tiers=("memory", "disk", "fabric"))``; the default
keeps the idealized store, byte-identical to previous releases.
"""

from repro.ckpt.storage import (CheckpointRecord, CheckpointStore,
                                TIER_DISK, TIER_FABRIC, TIER_MEMORY,
                                TIER_ORDER)
from repro.store.base import StoreBackend
from repro.store.delta import (BLOCK, Delta, delta_apply, delta_encode,
                               squash)
from repro.store.placement import (PartitionAwarePlacement, PlacementPolicy,
                                   POLICIES, RandomPlacement, RingPlacement,
                                   make_placement, rotating_mirrors)
from repro.store.repair import DEFAULT_REPAIR_BANDWIDTH, RepairService
from repro.store.replicated import ReplicatedStore
from repro.store.tiers import (MIN_DELTA_NBYTES, PROMOTIONS, TieredStore,
                               WRITE_BACK, WRITE_THROUGH, normalize_tiers)

__all__ = [
    "BLOCK",
    "CheckpointRecord",
    "CheckpointStore",
    "DEFAULT_REPAIR_BANDWIDTH",
    "Delta",
    "MIN_DELTA_NBYTES",
    "PartitionAwarePlacement",
    "PlacementPolicy",
    "POLICIES",
    "PROMOTIONS",
    "RandomPlacement",
    "RepairService",
    "ReplicatedStore",
    "RingPlacement",
    "StoreBackend",
    "TieredStore",
    "TIER_DISK",
    "TIER_FABRIC",
    "TIER_MEMORY",
    "TIER_ORDER",
    "WRITE_BACK",
    "WRITE_THROUGH",
    "delta_apply",
    "delta_encode",
    "make_placement",
    "normalize_tiers",
    "rotating_mirrors",
    "squash",
]
