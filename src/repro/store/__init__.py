"""Replicated checkpoint storage fabric (ReStore-style, ISSUE 4).

Layered between the C/R protocols and the disk/memory models:

* :class:`ReplicatedStore` — the :class:`~repro.ckpt.storage.
  CheckpointStore` surface with k-replica fan-out, pluggable placement,
  reachability-aware availability and read-pinned GC;
* :class:`RepairService` — failure-driven, budgeted re-replication;
* :mod:`~repro.store.placement` — the placement policies (ring
  successor, seeded-random, partition-aware) and the diskless protocol's
  :func:`rotating_mirrors` rule.

Enable it per cluster with ``ClusterSpec(replication_factor=2)``; the
default (``None``) keeps the paper's idealized single-copy stable
storage, byte-identical to previous releases.
"""

from repro.store.placement import (PartitionAwarePlacement, PlacementPolicy,
                                   POLICIES, RandomPlacement, RingPlacement,
                                   make_placement, rotating_mirrors)
from repro.store.repair import DEFAULT_REPAIR_BANDWIDTH, RepairService
from repro.store.replicated import ReplicatedStore

__all__ = [
    "DEFAULT_REPAIR_BANDWIDTH",
    "PartitionAwarePlacement",
    "PlacementPolicy",
    "POLICIES",
    "RandomPlacement",
    "RepairService",
    "ReplicatedStore",
    "RingPlacement",
    "make_placement",
    "rotating_mirrors",
]
