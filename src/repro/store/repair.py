"""Failure-driven re-replication of under-replicated checkpoints.

The :class:`RepairService` is the store's background daemon process: it
sleeps until a cluster membership change (crash / recover / add /
remove, delivered synchronously by the store's watcher via
:meth:`kick`), then scans the replica map and copies under-replicated
records from a surviving holder to a new one chosen by the same
placement policy as ordinary writes, until every record is back at
``min(k, up nodes)`` copies.

Repair traffic is **budgeted**: each copy is throttled to
``bandwidth`` bytes/second (and can never beat the fabric), and the
destination's disk write goes through the ordinary per-node disk model —
so repair contends with application checkpoints for the same heads and
its cost shows up in sim time.  With budget *B*, fabric bandwidth *W*
and a backlog of *D* missing copies of *S*-byte records, the repair
window is ``D * (S / min(B, W) + S / disk_bw)`` plus per-copy latency —
the number DESIGN.md §13 derives and
``benchmarks/bench_store_replication.py`` measures.
"""

from __future__ import annotations

from repro.errors import Interrupt
from repro.obs.registry import get_registry
from repro.sim.channel import Channel

#: Default re-replication budget: ~4 MB/s, below Myrinet line rate so
#: repair never starves application traffic in the model.
DEFAULT_REPAIR_BANDWIDTH = 4.0e6


class RepairService:
    """Re-replicates under-replicated records after membership changes."""

    def __init__(self, engine, cluster, store,
                 bandwidth: float = DEFAULT_REPAIR_BANDWIDTH):
        self.engine = engine
        self.cluster = cluster
        self.store = store
        self.bandwidth = float(bandwidth)
        self._wake = Channel(engine, name="store-repair-wake")
        self._pending = False
        reg = get_registry(engine)
        self._m_kicks = reg.counter(
            "store.repair.kicks", help="membership changes observed")
        self._m_jobs_ok = reg.counter(
            "store.repair.jobs", outcome="ok",
            help="repair copies by outcome")
        self._m_jobs_failed = reg.counter(
            "store.repair.jobs", outcome="failed",
            help="repair copies by outcome")
        self._m_bytes = reg.counter(
            "store.repair.bytes", help="bytes re-replicated")
        self._h_job = reg.histogram(
            "store.repair.seconds",
            help="duration of one repair copy",
            buckets=(0.001, 0.01, 0.05, 0.2, 1.0, 5.0))
        self._proc = engine.process(self._run(), name="store-repair")

    # ------------------------------------------------------------------

    def kick(self, reason: str = "") -> None:
        """Wake the repair loop (idempotent while a scan is queued)."""
        self._m_kicks.inc()
        if not self._pending:
            self._pending = True
            self._wake.put(reason)

    def status(self) -> dict:
        """Snapshot for the ``repro store`` CLI."""
        return {
            "budget_bytes_per_sec": self.bandwidth,
            "deficit_copies": self.store.replica_deficit(),
            "kicks": int(self._m_kicks.value),
            "repaired": int(self._m_jobs_ok.value),
            "failed": int(self._m_jobs_failed.value),
            "bytes": int(self._m_bytes.value),
        }

    # ------------------------------------------------------------------
    # the daemon loop
    # ------------------------------------------------------------------

    def _run(self):
        while True:
            yield self._wake.get()
            self._pending = False
            skip = set()          # keys that failed this drain cycle
            while True:
                job = self._next_job(skip)
                if job is None:
                    break
                ok = yield from self._repair_one(*job)
                if not ok:
                    skip.add(job[0])

    def _next_job(self, skip):
        """The first under-replicated record with a viable source+target.

        Deterministic scan order (the store's sorted-key walk) keeps
        same-seed campaign reports byte-identical.  Everything here goes
        through the public :class:`StoreBackend` surface — iter_records /
        node_up / reachable / candidates / repair_tier."""
        store = self.store
        from repro.cluster.node import NodeState
        n_up = sum(1 for n in self.cluster.nodes.values()
                   if n.state is NodeState.UP)
        target_copies = min(store.k, max(1, n_up))
        for key, rec in store.iter_records():
            if key in skip:
                continue
            tier = store.repair_tier(rec)
            live = store.repair_sources(rec, tier)
            if not live or len(live) >= target_copies:
                continue
            source = live[0]
            # Never re-target a node already holding a copy in ANY tier:
            # a crashed-but-recoverable holder would double-count.
            candidates = [c for c in store.candidates(source)
                          if c not in rec.all_holders()
                          and store.reachable(source, c)]
            picks = store.policy.replicas(key, source, candidates, 2)
            if not picks:
                continue
            return (key, rec, source, picks[0], tier)
        return None

    def _repair_one(self, key, rec, source, target, tier):
        from repro.ckpt.storage import TIER_MEMORY
        engine = self.engine
        t0 = engine.now
        fabric = self.cluster.myrinet
        rate = min(self.bandwidth, fabric.spec.bandwidth)
        yield engine.timeout(fabric.spec.layers.one_way_fixed
                             + rec.nbytes / rate)
        store = self.store
        if not store.has(*key) or store.peek(*key) is not rec:
            self._m_jobs_failed.inc()       # GCed mid-copy
            return False
        tnode = self.cluster.nodes.get(target)
        if tnode is None or not tnode.is_up \
                or not store.node_up(source):
            self._m_jobs_failed.inc()
            return False
        if tier != TIER_MEMORY:
            try:
                yield from tnode.disk.write(rec.nbytes)
            except Interrupt:
                self._m_jobs_failed.inc()
                return False
        if not store.has(*key) or store.peek(*key) is not rec \
                or not store.node_up(target):
            self._m_jobs_failed.inc()
            return False
        rec.add_holder(tier, target)
        self._m_jobs_ok.inc()
        self._m_bytes.inc(rec.nbytes)
        self._h_job.observe(engine.now - t0)
        return True

    def __repr__(self) -> str:
        return (f"<RepairService budget={self.bandwidth:.3g}B/s "
                f"deficit={self.store.replica_deficit()}>")
