"""Replica placement policies for the replicated checkpoint store.

A :class:`PlacementPolicy` answers one question: given a record key, its
primary holder and the currently placeable nodes, which other nodes
should hold the ``k-1`` extra copies?  Policies are deterministic (the
seeded-random one draws from a named engine RNG stream), so replica maps
are a pure function of the cluster seed — campaign reports stay
byte-identical across same-seed runs.

Three policies ship (ReStore's menu, §4 of Hübner et al. 2022):

* ``ring`` — successors of the primary on the sorted node-id ring; the
  classic consistent-placement rule (cheap, no state, and a single crash
  only un-replicates the records whose primary or successor it was);
* ``random`` — a seeded shuffle per record; spreads repair load across
  the whole cluster at the cost of more distinct holder pairs;
* ``partition-aware`` — ring placement restricted to nodes *currently
  reachable* from the primary on the data fabric, so a partitioned
  writer never counts an unreachable copy toward its replication factor.

:func:`rotating_mirrors` is the version-rotating mirror rule the diskless
protocol has always used (buddy of rank *i* at version *v* among *n*
live peers starts at stride ``1 + (v-1) mod (n-1)``), extracted here so
the protocol is a thin client of ``repro.store`` — generalized to any
copy count while reproducing the historical two-mirror choice exactly.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import CheckpointError

#: A checkpoint record key: (app_id, rank, version).
Key = Tuple[str, int, int]


def rotating_mirrors(peers: Sequence[int], rank: int, version: int,
                     copies: int = 2) -> List[int]:
    """Version-rotating mirror ranks for diskless checkpointing.

    Walks the sorted peer ring from ``rank`` with a version-dependent
    starting stride, skipping self and duplicates, until ``copies``
    distinct targets are found (or the ring is exhausted).  Consecutive
    versions never share their full holder set, so a single node crash
    wipes at most one rank's copy of each version and always leaves the
    previous line intact on different holders.
    """
    peers = sorted(peers)
    n = len(peers)
    if n < 2 or copies < 1:
        return []
    idx = peers.index(rank)
    stride = 1 + (version - 1) % (n - 1)
    out: List[int] = []
    for j in range(stride, stride + n):
        cand = peers[(idx + j) % n]
        if cand == rank or cand in out:
            continue
        out.append(cand)
        if len(out) >= copies:
            break
    return out


class PlacementPolicy:
    """Chooses the replica holders for one record.

    Subclasses set :attr:`name` and implement :meth:`replicas`.
    """

    name = "abstract"

    def replicas(self, key: Key, primary: str,
                 candidates: Sequence[str], k: int) -> List[str]:
        """Up to ``k - 1`` replica holders for ``key``.

        ``primary`` already holds the first copy; ``candidates`` is the
        sorted list of currently placeable node ids (the caller excludes
        ``primary``).  Returns fewer than ``k - 1`` nodes when the
        cluster is too small — the store records the deficit and the
        repair service closes it when capacity returns.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _ring_successors(primary: str, candidates: Sequence[str],
                     want: int) -> List[str]:
    """First ``want`` candidates after ``primary`` in sorted ring order."""
    ring = sorted(candidates)
    if not ring or want <= 0:
        return []
    start = bisect_right(ring, primary)
    return [ring[(start + i) % len(ring)]
            for i in range(min(want, len(ring)))]


class RingPlacement(PlacementPolicy):
    """Successors of the primary on the sorted node-id ring."""

    name = "ring"

    def replicas(self, key: Key, primary: str,
                 candidates: Sequence[str], k: int) -> List[str]:
        return _ring_successors(primary,
                                [c for c in candidates if c != primary],
                                k - 1)


class RandomPlacement(PlacementPolicy):
    """A seeded shuffle per record (stream ``store.place``).

    Deterministic per master seed: each placement decision draws one
    permutation from the named stream, so two same-seed runs pick the
    same holders in the same order.
    """

    name = "random"

    def __init__(self, rng=None):
        #: ``numpy.random.Generator`` (an engine stream) or None, in
        #: which case the policy degrades to ring successors.
        self.rng = rng

    def replicas(self, key: Key, primary: str,
                 candidates: Sequence[str], k: int) -> List[str]:
        pool = sorted(c for c in candidates if c != primary)
        want = k - 1
        if want <= 0 or not pool:
            return []
        if self.rng is None:
            return _ring_successors(primary, pool, want)
        order = self.rng.permutation(len(pool))
        return [pool[i] for i in order[:want]]


class PartitionAwarePlacement(PlacementPolicy):
    """Ring placement over the nodes reachable from the primary.

    ``reachable(src, dst)`` is a probe into the data fabric (honoring
    any open network partition); unreachable candidates are never chosen,
    so a partitioned writer's replication deficit is visible immediately
    instead of being discovered by a failed transfer.
    """

    name = "partition-aware"

    def __init__(self, reachable: Optional[Callable[[str, str], bool]] = None):
        self.reachable = reachable

    def replicas(self, key: Key, primary: str,
                 candidates: Sequence[str], k: int) -> List[str]:
        pool = [c for c in candidates if c != primary
                and (self.reachable is None or self.reachable(primary, c))]
        return _ring_successors(primary, pool, k - 1)


#: Registered policy names (must stay in sync with
#: :data:`repro.cluster.spec.PLACEMENT_POLICIES`).
POLICIES = ("ring", "random", "partition-aware")


def make_placement(name: str, *, rng=None,
                   reachable: Optional[Callable[[str, str], bool]] = None
                   ) -> PlacementPolicy:
    """Build a policy by registry name."""
    if name == "ring":
        return RingPlacement()
    if name == "random":
        return RandomPlacement(rng=rng)
    if name == "partition-aware":
        return PartitionAwarePlacement(reachable=reachable)
    raise CheckpointError(
        f"unknown placement policy {name!r} (known: {', '.join(POLICIES)})")
