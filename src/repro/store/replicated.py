"""The replicated checkpoint store: k copies, honest durability.

:class:`ReplicatedStore` implements the :class:`~repro.ckpt.storage.
CheckpointStore` surface (write / read / commit / GC / queries) but drops
the paper's idealized "global stable storage" assumption: every record
lives on *specific nodes* (``holder_nodes``, for disk records too), each
write fans out to ``k`` replicas chosen by a pluggable
:class:`~repro.store.placement.PlacementPolicy`, and availability is a
function of which holders are up **and reachable from the reader** —
``latest_restorable`` only counts versions whose replicas survive in the
reader's partition.

Costs are simulated, not asserted: the primary write charges the local
disk as before; each replica then streams over the fast (Myrinet) fabric
— serialization back-to-back on the sender, wire latency and the remote
disk write pipelined per target — so raising ``k`` visibly stretches the
checkpoint wave (``benchmarks/bench_store_replication.py`` measures the
curve).  A crash between copies simply yields fewer holders; the
:class:`~repro.store.repair.RepairService` re-replicates later.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ckpt.storage import (CheckpointRecord, CheckpointStore,
                                TIER_ORDER)
from repro.errors import CheckpointError, Interrupt, NoCheckpoint
from repro.obs.registry import get_registry
from repro.store.placement import PlacementPolicy, make_placement


class ReplicatedStore(CheckpointStore):
    """k-replicated checkpoint storage over the cluster's real nodes."""

    def __init__(self, engine, cluster, k: int = 2,
                 policy="ring"):
        super().__init__(engine)
        if int(k) < 1:
            raise CheckpointError(f"replication factor must be >= 1, got {k}")
        self.cluster = cluster
        self.k = int(k)
        if isinstance(policy, PlacementPolicy):
            self.policy = policy
        else:
            rng = engine.rng.stream("store.place") if engine is not None \
                else None
            self.policy = make_placement(policy, rng=rng,
                                         reachable=self.reachable)
        # Availability == node liveness, atomically with the crash itself
        # (no watcher-callback window where a dead holder still counts).
        self.node_liveness = self.node_up
        #: Attached :class:`~repro.store.repair.RepairService` (None for
        #: k=1, where there is nothing to re-replicate toward).
        self.repair = None
        #: Survivability breach log: committed lines that became
        #: non-restorable at a membership change (see _record_breaches).
        self.breaches: list = []
        reg = get_registry(engine)
        self._m_repl_ok = reg.counter(
            "store.replica.writes", help="replica copies registered")
        self._m_repl_bytes = reg.counter(
            "store.replica.bytes", help="bytes shipped to replica holders")
        self._m_repl_failed = reg.counter(
            "store.replica.failed",
            help="replica transfers lost to crashes/partitions")
        self._m_repl_lost = reg.counter(
            "store.replica.lost",
            help="records whose last holder disappeared")
        self._m_remote_reads = reg.counter(
            "store.replica.remote_reads",
            help="restores served from a non-local holder")
        self._h_fanout = reg.histogram(
            "store.replica.fanout_seconds",
            help="time to replicate one record to its holders",
            buckets=(0.001, 0.005, 0.02, 0.1, 0.5, 2.0))
        reg.gauge_fn("store.replica.deficit", self.replica_deficit)

    # ------------------------------------------------------------------
    # cluster probes
    # ------------------------------------------------------------------

    def node_up(self, node_id: str) -> bool:
        """Is the node alive (UP or transiently degraded, not DOWN)?"""
        from repro.cluster.node import NodeState
        node = self.cluster.nodes.get(node_id)
        return node is not None and node.state is not NodeState.DOWN

    def reachable(self, src: str, dst: str) -> bool:
        """Data-fabric reachability (honors open partitions)."""
        if src == dst:
            return True
        return self.cluster.myrinet._reachable(src, dst)

    def candidates(self, primary: str) -> List[str]:
        """UP nodes other than ``primary``, in deterministic order — the
        placement policies' input universe."""
        from repro.cluster.node import NodeState
        return sorted(n.node_id for n in self.cluster.nodes.values()
                      if n.state is NodeState.UP and n.node_id != primary)

    # Pre-PR7 private spellings, kept for older call sites.
    _node_up = node_up
    _reachable = reachable
    _candidates = candidates

    def _holder_ok(self, node_id: str,
                   from_node: Optional[str] = None) -> bool:
        return self.node_up(node_id) and (
            from_node is None or self.reachable(from_node, node_id))

    def replica_targets(self, primary: str,
                        record: CheckpointRecord) -> List[str]:
        """Where the policy wants this record's extra copies right now."""
        key = (record.app_id, record.rank, record.version)
        return self.policy.replicas(key, primary, self.candidates(primary),
                                    self.k)

    def mirror_fanout(self) -> int:
        """Diskless in-memory copies per record (the configured k)."""
        return max(1, self.k)

    # ------------------------------------------------------------------
    # writing: primary disk + pipelined replica fan-out
    # ------------------------------------------------------------------

    def write(self, node, record: CheckpointRecord,
              bandwidth: Optional[float] = None):
        """Process generator: local dump, then stream copies to replicas.

        Completes only once every surviving replica is durable, so a
        protocol's commit point certifies the full replication factor
        (minus any holder that crashed or partitioned away mid-transfer,
        which is logged as a failed replica and repaired later).
        """
        yield from node.disk.write(record.nbytes, bandwidth=bandwidth)
        record.holder_nodes = [node.node_id]
        self._register((record.app_id, record.rank, record.version), record)
        self._m_writes.inc()
        self._m_bytes.inc(record.nbytes)
        yield from self._replicate(node, record)

    def _replicate(self, node, record: CheckpointRecord, tier=None,
                   targets=None):
        """Stream copies of ``record`` into ``tier`` (default: its home
        tier) on ``targets`` (default: the placement policy's picks)."""
        if targets is None:
            targets = self.replica_targets(node.node_id, record)
        if not targets:
            return
        if tier is None:
            tier = record.tier
        engine = self.engine
        fabric = self.cluster.myrinet
        t0 = engine.now
        in_flight = []
        for target in targets:
            # The sender serializes each copy back to back on its NIC;
            # wire latency + the remote disk write pipeline per target.
            yield engine.timeout(record.nbytes / fabric.spec.bandwidth)
            tnode = self.cluster.nodes.get(target)
            if tnode is None or not tnode.is_up \
                    or not self.reachable(node.node_id, target):
                self._m_repl_failed.inc()
                continue
            proc = tnode.spawn(
                self._ingest(record, target, fabric, tier),
                name=f"replica:{record.app_id}:{record.rank}"
                     f":{record.version}:{target}"
                     if engine.tracer is not None else None)
            in_flight.append(proc)
        for proc in in_flight:
            yield proc
        self._h_fanout.observe(engine.now - t0)

    def _ingest(self, record: CheckpointRecord, target: str, fabric,
                tier=None):
        """Replica-holder side: wire latency, disk write (durable tiers
        only — a memory-tier copy lands in the holder's RAM), register."""
        from repro.ckpt.storage import TIER_MEMORY
        if tier is None:
            tier = record.tier
        try:
            yield self.engine.timeout(fabric.spec.layers.one_way_fixed)
            tnode = self.cluster.nodes.get(target)
            if tnode is None or not tnode.is_up:
                self._m_repl_failed.inc()
                return
            if tier != TIER_MEMORY:
                yield from tnode.disk.write(record.nbytes)
        except Interrupt:
            # The holder crashed mid-transfer: the copy is gone.
            self._m_repl_failed.inc()
            return
        key = (record.app_id, record.rank, record.version)
        if self._records.get(key) is not record or not self.node_up(target):
            self._m_repl_failed.inc()
            return
        record.add_holder(tier, target)
        self._m_repl_ok.inc()
        self._m_repl_bytes.inc(record.nbytes)

    # ------------------------------------------------------------------
    # reading: nearest reachable holder
    # ------------------------------------------------------------------

    def record_available(self, app_id: str, rank: int, version: int,
                         from_node: Optional[str] = None) -> bool:
        record = self._records.get((app_id, rank, version))
        if record is None:
            return False
        return bool(self.available_holders(record, from_node=from_node))

    def read(self, node, app_id: str, rank: int, version: int,
             bandwidth: Optional[float] = None):
        """Process generator: load from the nearest reachable holder.

        A local copy reads at disk speed; otherwise the holder's disk is
        read remotely and the image crosses the fast network.  The record
        is read-pinned for the duration (GC cannot collect it mid-read).
        """
        record = self.peek(app_id, rank, version)
        key = (app_id, rank, version)
        self._pin(key)
        try:
            holders = self.available_holders(record,
                                             from_node=node.node_id)
            if not holders:
                raise NoCheckpoint(
                    f"no reachable replica of (app={app_id}, rank={rank}, "
                    f"version={version}); holders={record.holder_nodes}")
            if record.in_memory:
                from repro.calibration import BIP_BANDWIDTH, US
                yield self.engine.timeout(
                    200 * US + record.nbytes / BIP_BANDWIDTH)
            elif node.node_id in holders:
                yield from node.disk.read(record.nbytes,
                                          bandwidth=bandwidth)
            else:
                source = holders[0]
                snode = self.cluster.nodes[source]
                yield from snode.disk.read(record.nbytes)
                yield self.engine.timeout(
                    self.cluster.myrinet.spec.one_way(record.nbytes))
                self._m_remote_reads.inc()
            self._m_reads.inc()
            return record
        finally:
            self._unpin(key)

    # ------------------------------------------------------------------
    # membership reactions (wired as a cluster watcher)
    # ------------------------------------------------------------------

    def on_membership(self, node_id: str, event: str) -> None:
        """Cluster watcher: keep availability honest, wake the repairer.

        Runs synchronously inside the crash/recover call — in the same
        sim instant the node goes down, its in-memory copies are gone
        and its disk copies stop counting (via :meth:`_node_up`)."""
        if event in ("crash", "remove"):
            self.drop_volatile(node_id)
        if event == "remove":
            self.drop_disk_holders(node_id)
        if event in ("crash", "remove"):
            self._record_breaches()
        if self.repair is not None and event in ("crash", "remove",
                                                 "recover", "add"):
            self.repair.kick(reason=f"{event}:{node_id}")

    def _record_breaches(self) -> None:
        """Log every committed line that just became non-restorable.

        Invariant checkers can only observe the store after the cluster
        re-settles — by which point a restarted app has recommitted a
        fresh, fully-replicated line and the loss is invisible.  The
        breach log captures it at the instant of the membership change;
        each entry carries the down-set so a checker can apply its own
        ``k-1`` contract window."""
        from repro.cluster.node import NodeState
        down = tuple(nid for nid, node in sorted(self.cluster.nodes.items())
                     if node.state is not NodeState.UP)
        for app_id in sorted(self._committed):
            committed = self.latest_committed(app_id)
            if committed is None:
                continue
            ranks = sorted({key[1] for key in self._records
                            if key[0] == app_id and key[2] == committed})
            restorable = self.latest_restorable(app_id, ranks)
            if restorable != committed:
                self.breaches.append({
                    "time": self.engine.now, "app_id": app_id,
                    "committed": committed, "restorable": restorable,
                    "down": down})

    def drop_disk_holders(self, node_id: str) -> int:
        """A node (and its disk) left the cluster for good.

        Strips the node from every record's durable (disk/fabric) holder
        lists; a record with no copy left in ANY tier is gone.  Returns
        the number of records lost outright."""
        from repro.ckpt.storage import TIER_MEMORY
        lost = 0
        for key, rec in list(self._records.items()):
            hit = False
            for tier, held in rec.holders.items():
                if tier != TIER_MEMORY and node_id in held:
                    held.remove(node_id)
                    hit = True
            if hit and not any(rec.holders.get(t) for t in TIER_ORDER):
                del self._records[key]
                self._m_repl_lost.inc()
                lost += 1
        return lost

    # ------------------------------------------------------------------
    # repair bookkeeping
    # ------------------------------------------------------------------

    def repair_sources(self, record: CheckpointRecord,
                       tier: str) -> List[str]:
        """Live holders credited against the replication target for
        ``tier`` — and usable as copy sources.  The tiered store credits
        every durable tier toward the fabric target."""
        return [h for h in record.tier_holders(tier) if self.node_up(h)]

    def replica_deficit(self) -> int:
        """Total missing copies across all records (the repair backlog).

        The target per record is ``min(k, up nodes)`` — a 2-node cluster
        with k=3 is honestly under-provisioned, not infinitely broken."""
        from repro.cluster.node import NodeState
        n_up = sum(1 for n in self.cluster.nodes.values()
                   if n.state is NodeState.UP)
        target = min(self.k, max(1, n_up))
        deficit = 0
        for rec in self._records.values():
            live = self.repair_sources(rec, self.repair_tier(rec))
            deficit += max(0, target - len(live))
        return deficit

    def replica_map(self, app_id: Optional[str] = None):
        """Rows of (key, record, live_holders) for inspection/CLI."""
        out = []
        for key in sorted(self._records):
            if app_id is not None and key[0] != app_id:
                continue
            rec = self._records[key]
            out.append((key, rec, self.available_holders(rec)))
        return out

    def __repr__(self) -> str:
        return (f"<ReplicatedStore k={self.k} policy={self.policy.name} "
                f"{len(self._records)} records deficit="
                f"{self.replica_deficit()}>")
