"""Delta (incremental) checkpoint images.

The thread-based MPI C/R line of work motivates incremental capture: the
common-case checkpoint writes only the pages that changed since the last
one.  We model that at byte granularity over the VM checkpointers'
``bytes`` images: :func:`delta_encode` diffs two images block-by-block
(fixed :data:`BLOCK` size, adjacent dirty blocks merged into one patch)
and :func:`delta_apply` replays a patch list over a base.  A chain of
deltas behind a full base is restored by :func:`squash`, and the store
cuts a fresh full base once the chain reaches its configured depth.

Deltas are pure data (frozen, hashable patches) so records stay
deepcopy/replay-safe; only ``bytes`` images are delta-able — native
(live-object) checkpoints always dump full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

#: Diff granularity: one "page" of a checkpoint image.
BLOCK = 4096


@dataclass(frozen=True)
class Delta:
    """One incremental image: patches to overlay on the previous image.

    ``length`` is the new image's total size (the base is truncated or
    zero-padded to it before patching — images may grow or shrink);
    ``patches`` is an ascending tuple of ``(offset, payload)`` runs.
    """

    length: int
    patches: Tuple[Tuple[int, bytes], ...]

    @property
    def nbytes(self) -> int:
        """Payload bytes actually carried (what a delta write costs)."""
        return sum(len(p) for _off, p in self.patches)


def delta_encode(base: bytes, new: bytes, block: int = BLOCK) -> Delta:
    """Diff ``new`` against ``base`` into a :class:`Delta`.

    Whole-block comparison with adjacent dirty blocks merged: a run of
    changed pages becomes one ``(offset, payload)`` patch.  Any tail the
    base does not cover is dirty by definition.
    """
    patches = []
    run_start = None
    n = len(new)
    for off in range(0, n, block):
        chunk = new[off:off + block]
        if chunk == base[off:off + block]:
            if run_start is not None:
                patches.append((run_start, bytes(new[run_start:off])))
                run_start = None
        elif run_start is None:
            run_start = off
    if run_start is not None:
        patches.append((run_start, bytes(new[run_start:n])))
    return Delta(length=n, patches=tuple(patches))


def delta_apply(base: bytes, delta: Delta) -> bytes:
    """Replay one delta over ``base`` (truncate/pad to length first)."""
    buf = bytearray(base[:delta.length])
    if len(buf) < delta.length:
        buf.extend(b"\x00" * (delta.length - len(buf)))
    for off, payload in delta.patches:
        buf[off:off + len(payload)] = payload
    return bytes(buf)


def squash(base: bytes, deltas: Sequence[Delta]) -> bytes:
    """Replay a delta chain (oldest first) over a full base image."""
    image = base
    for delta in deltas:
        image = delta_apply(image, delta)
    return image
