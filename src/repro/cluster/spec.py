"""The one cluster-construction surface: :class:`ClusterSpec`.

Historically the three builders — ``Engine(...)``, ``Cluster.build(...)``
and ``StarfishCluster.build(...)`` — each grew their own positional/kwarg
signature, and they drifted.  A :class:`ClusterSpec` is the single
keyword-only description of a simulated cluster that all three consume:

    spec = ClusterSpec(nodes=8, seed=42)
    sf = StarfishCluster.build(spec=spec)          # system
    cluster = Cluster.build(spec=spec)             # bare hardware
    engine = Engine.from_spec(spec)                # just the kernel

The legacy kwarg forms keep working but funnel through a spec internally,
so there is exactly one place where defaults and validation live.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # avoid a cluster -> gcs import at runtime (layering)
    from repro.cluster.arch import Architecture


@dataclass(frozen=True, kw_only=True)
class ClusterSpec:
    """Everything needed to build a simulated cluster, in one place.

    The fields cover all three construction layers: the simulation kernel
    (``seed``, ``trace``, ``telemetry``), the hardware substrate
    (``nodes``, ``archs``, ``loss_prob``) and the Starfish system on top
    (``gcs_config``, ``settle``, ``users`` — ignored by the lower layers).
    """

    #: Number of workstations (named ``n0`` .. ``n{nodes-1}``).
    nodes: int = 4
    #: Master seed of the engine's named RNG streams.
    seed: int = 0
    #: Architecture cycle for heterogeneous clusters (``None`` = all
    #: :data:`~repro.cluster.arch.DEFAULT_ARCH`).
    archs: Optional[Tuple["Architecture", ...]] = None
    #: Ambient frame-loss probability on both fabrics (seeded stream
    #: ``net.loss``).  For a *windowed* loss fault, prefer
    #: :class:`repro.faults.FrameLossWindow`.
    loss_prob: float = 0.0
    #: Future-event-list scheduler for the engine: ``"heap"`` (default,
    #: the reference binary heap) or ``"calendar"`` (the amortized-O(1)
    #: :class:`repro.sim.sched.CalendarQueue`).  Dispatch order is
    #: byte-identical between the two — this is a pure wall-clock knob.
    scheduler: str = "heap"
    #: Record a per-event trace (``repro.obs`` Chrome export).
    trace: bool = False
    #: Enable the metrics registry (``False`` swaps in no-op instruments).
    telemetry: bool = True
    #: Group-communication tunables (``None`` = ``GcsConfig()`` defaults).
    gcs_config: Optional[Any] = None
    #: Run the simulation until the daemon group converges after boot.
    settle: bool = True
    #: Client accounts as ``{user: (password, is_mgmt)}`` (``None`` =
    #: :data:`repro.daemon.daemon.DEFAULT_USERS`).
    users: Optional[Dict[str, Tuple[str, bool]]] = None
    #: Checkpoint replication factor.  ``None`` (default) keeps the
    #: paper's idealized single-copy stable storage
    #: (:class:`repro.ckpt.CheckpointStore`, byte-identical behaviour);
    #: an int ``>= 1`` builds a :class:`repro.store.ReplicatedStore`
    #: with honest node-local durability — k copies per record, placed
    #: by ``placement_policy``, repaired after failures when ``k >= 2``.
    replication_factor: Optional[int] = None
    #: Replica placement policy (see :data:`PLACEMENT_POLICIES`).
    placement_policy: str = "ring"
    #: Repair-service re-replication budget, bytes/second.
    repair_bandwidth: float = 4.0e6
    #: Multi-level checkpoint tiers (:class:`repro.store.TieredStore`).
    #: ``None`` (default) keeps the legacy single-level stores; a tuple
    #: drawn from :data:`STORE_TIERS` (e.g. ``("memory", "disk",
    #: "fabric")``) builds the L1/L2/L3 hierarchy.  The replica width of
    #: the memory/fabric levels is ``replication_factor`` (default 2
    #: when unset).
    store_tiers: Optional[Tuple[str, ...]] = None
    #: Delta-checkpoint chain depth (tiered store only): ``0`` dumps
    #: full images; ``n > 0`` stores up to ``n`` incremental images
    #: between full bases.
    delta_depth: int = 0
    #: Tier promotion policy (tiered store only): ``write-through``
    #: waits for every tier inside the dump; ``write-back`` returns
    #: after the fastest tier and flushes the rest in the background.
    tier_policy: str = "write-through"
    #: Schedule-perturbation seed (``repro.check``).  ``None`` (default)
    #: keeps the untouched deterministic schedule; an int installs a
    #: :class:`repro.check.SchedulePerturbation` on the engine that
    #: shuffles same-instant event ordering.  Independent of ``seed``.
    perturb_seed: Optional[int] = None
    #: Per-frame delivery jitter bound in simulated seconds (requires
    #: ``perturb_seed``); ``0.0`` leaves wire times untouched.
    delivery_jitter: float = 0.0

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError(f"ClusterSpec.nodes must be >= 1, got {self.nodes}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError(
                f"ClusterSpec.loss_prob must be in [0, 1), got {self.loss_prob}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"ClusterSpec.scheduler must be one of {SCHEDULERS}, "
                f"got {self.scheduler!r}")
        if self.archs is not None and not isinstance(self.archs, tuple):
            object.__setattr__(self, "archs", tuple(self.archs))
        if self.replication_factor is not None \
                and self.replication_factor < 1:
            raise ValueError(
                "ClusterSpec.replication_factor must be None or >= 1, "
                f"got {self.replication_factor}")
        if self.placement_policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"ClusterSpec.placement_policy must be one of "
                f"{PLACEMENT_POLICIES}, got {self.placement_policy!r}")
        if self.repair_bandwidth <= 0:
            raise ValueError(
                "ClusterSpec.repair_bandwidth must be > 0, "
                f"got {self.repair_bandwidth}")
        if self.delivery_jitter < 0:
            raise ValueError(
                "ClusterSpec.delivery_jitter must be >= 0, "
                f"got {self.delivery_jitter}")
        if self.delivery_jitter > 0 and self.perturb_seed is None:
            raise ValueError(
                "ClusterSpec.delivery_jitter needs a perturb_seed (the "
                "jitter draws come from the perturbation's seeded stream)")
        if self.store_tiers is not None:
            if not isinstance(self.store_tiers, tuple):
                object.__setattr__(self, "store_tiers",
                                   tuple(self.store_tiers))
            if not self.store_tiers:
                raise ValueError(
                    "ClusterSpec.store_tiers must name at least one tier "
                    "(or be None for the legacy stores)")
            for t in self.store_tiers:
                if t not in STORE_TIERS:
                    raise ValueError(
                        f"ClusterSpec.store_tiers entries must be drawn "
                        f"from {STORE_TIERS}, got {t!r}")
            if len(set(self.store_tiers)) != len(self.store_tiers):
                raise ValueError(
                    f"ClusterSpec.store_tiers has duplicates: "
                    f"{self.store_tiers}")
        if self.delta_depth < 0:
            raise ValueError(
                f"ClusterSpec.delta_depth must be >= 0, got "
                f"{self.delta_depth}")
        if self.delta_depth > 0 and self.store_tiers is None:
            raise ValueError(
                "ClusterSpec.delta_depth needs store_tiers (delta "
                "checkpoints are a tiered-store feature)")
        if self.tier_policy not in TIER_POLICIES:
            raise ValueError(
                f"ClusterSpec.tier_policy must be one of {TIER_POLICIES}, "
                f"got {self.tier_policy!r}")
        if self.tier_policy != "write-through" and self.store_tiers is None:
            raise ValueError(
                "ClusterSpec.tier_policy needs store_tiers (promotion "
                "policies are a tiered-store feature)")

    def with_(self, **overrides) -> "ClusterSpec":
        """A copy with some fields replaced (specs are frozen)."""
        return replace(self, **overrides)

    @classmethod
    def coalesce(cls, spec: Optional["ClusterSpec"] = None,
                 **legacy) -> "ClusterSpec":
        """Funnel a legacy kwarg call into a spec.

        ``spec`` wins if given (any explicitly passed legacy kwargs are an
        error then — mixing the two forms is ambiguous); otherwise the
        legacy kwargs override the defaults.
        """
        legacy = {k: v for k, v in legacy.items() if v is not _UNSET}
        if spec is not None:
            if legacy:
                raise TypeError(
                    "pass either spec= or legacy kwargs, not both "
                    f"(got spec and {sorted(legacy)})")
            return spec
        return cls(**legacy)


#: Valid ``scheduler`` names (kept in sync with
#: :data:`repro.sim.sched.SCHEDULERS` by a unit test — duplicated here
#: so spec validation stays import-light).
SCHEDULERS = ("heap", "calendar")

#: Valid ``placement_policy`` names (kept in sync with
#: :data:`repro.store.placement.POLICIES` by a unit test — this module
#: must not import the store package at runtime, layering).
PLACEMENT_POLICIES = ("ring", "random", "partition-aware")

#: Valid ``store_tiers`` entries (kept in sync with
#: :data:`repro.ckpt.storage.TIER_ORDER` by the same unit test).
STORE_TIERS = ("memory", "disk", "fabric")

#: Valid ``tier_policy`` names (sync:
#: :data:`repro.store.tiers.PROMOTIONS`).
TIER_POLICIES = ("write-through", "write-back")

#: Sentinel distinguishing "kwarg not passed" from an explicit default.
_UNSET = object()
