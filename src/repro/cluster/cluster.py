"""The cluster: nodes + the two fabrics + fault-injection campaigns."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.cluster.arch import Architecture, DEFAULT_ARCH
from repro.cluster.node import Node, NodeState
from repro.errors import ClusterError
from repro.net.fabric import BIP_MYRINET, Fabric, TCP_ETHERNET, TransportSpec
from repro.sim.engine import Engine


class Cluster:
    """A cluster of workstations connected by Ethernet and Myrinet.

    This is the hardware substrate only; the Starfish *system* on top of it
    lives in :mod:`repro.core.starfish`.
    """

    def __init__(self, engine: Optional[Engine] = None, seed: int = 0,
                 loss_prob: float = 0.0, trace: bool = False,
                 telemetry: bool = True):
        self.engine = engine or Engine(seed=seed, trace=trace,
                                       telemetry=telemetry)
        self.ethernet = Fabric(self.engine, TCP_ETHERNET, loss_prob=loss_prob)
        self.myrinet = Fabric(self.engine, BIP_MYRINET, loss_prob=loss_prob)
        self.nodes: Dict[str, Node] = {}
        #: Callbacks invoked with (node_id, event) on crash/recover/add/remove;
        #: the Starfish daemons' failure detector confirms these through
        #: heartbeats — the callbacks exist for tests and metrics.
        self.watchers: List[Callable[[str, str], None]] = []

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, nodes: int = 4, seed: int = 0,
              archs: Optional[Sequence[Architecture]] = None,
              loss_prob: float = 0.0, trace: bool = False,
              telemetry: bool = True) -> "Cluster":
        """Convenience: a cluster of ``nodes`` homogeneous (or given) nodes."""
        cluster = cls(seed=seed, loss_prob=loss_prob, trace=trace,
                      telemetry=telemetry)
        for i in range(nodes):
            arch = archs[i % len(archs)] if archs else DEFAULT_ARCH
            cluster.add_node(f"n{i}", arch=arch)
        return cluster

    def add_node(self, node_id: str,
                 arch: Architecture = DEFAULT_ARCH) -> Node:
        """Add a workstation and wire it to both fabrics."""
        if node_id in self.nodes:
            raise ClusterError(f"duplicate node id {node_id!r}")
        node = Node(self.engine, node_id, arch=arch)
        node.attach(self.ethernet)
        node.attach(self.myrinet)
        self.nodes[node_id] = node
        self._notify(node_id, "add")
        return node

    def remove_node(self, node_id: str) -> None:
        """Administratively remove a node (it is crashed first if up)."""
        node = self.node(node_id)
        if node.is_up or node.state is NodeState.DISABLED:
            node.crash(cause="removed from cluster")
        del self.nodes[node_id]
        self._notify(node_id, "remove")

    # -- access ---------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown node {node_id!r}") from None

    def up_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_up]

    def schedulable_nodes(self) -> List[Node]:
        """Nodes eligible for new application processes."""
        return [n for n in self.nodes.values() if n.state is NodeState.UP]

    # -- fault injection ----------------------------------------------------------

    def crash_node(self, node_id: str, cause: str = "fault-injection") -> None:
        self.node(node_id).crash(cause=cause)
        self._notify(node_id, "crash")

    def recover_node(self, node_id: str) -> Node:
        node = self.node(node_id)
        node.recover()
        node.attach(self.ethernet)
        node.attach(self.myrinet)
        self._notify(node_id, "recover")
        return node

    def crash_at(self, time: float, node_id: str,
                 cause: str = "fault-injection") -> None:
        """Schedule a crash at an absolute simulated time."""
        ev = self.engine.timeout(time - self.engine.now)
        ev.callbacks.append(lambda _e: self.crash_node(node_id, cause=cause))

    def recover_at(self, time: float, node_id: str) -> None:
        ev = self.engine.timeout(time - self.engine.now)
        ev.callbacks.append(lambda _e: self.recover_node(node_id))

    def partition_at(self, time: float, *groups: Iterable[str]) -> None:
        """Schedule a partition of BOTH fabrics (a switch failure)."""
        groups = tuple(tuple(g) for g in groups)
        ev = self.engine.timeout(time - self.engine.now)

        def _do(_e):
            self.ethernet.partition(*groups)
            self.myrinet.partition(*groups)
        ev.callbacks.append(_do)

    def heal_at(self, time: float) -> None:
        ev = self.engine.timeout(time - self.engine.now)

        def _do(_e):
            self.ethernet.heal()
            self.myrinet.heal()
        ev.callbacks.append(_do)

    def _notify(self, node_id: str, event: str) -> None:
        for cb in self.watchers:
            cb(node_id, event)

    def __repr__(self) -> str:
        up = sum(1 for n in self.nodes.values() if n.is_up)
        return f"<Cluster {up}/{len(self.nodes)} nodes up t={self.engine.now:.6g}>"
