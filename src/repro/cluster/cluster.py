"""The cluster: nodes + the two fabrics, built from a ClusterSpec."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.arch import DEFAULT_ARCH, Architecture
from repro.cluster.node import Node, NodeState
from repro.cluster.spec import _UNSET, ClusterSpec
from repro.errors import ClusterError
from repro.net.fabric import BIP_MYRINET, Fabric, TCP_ETHERNET, TransportSpec
from repro.sim.engine import Engine


class Cluster:
    """A cluster of workstations connected by Ethernet and Myrinet.

    This is the hardware substrate only; the Starfish *system* on top of it
    lives in :mod:`repro.core.starfish`.  All construction paths funnel
    through one :class:`~repro.cluster.spec.ClusterSpec`; all fault
    injection funnels through one :class:`~repro.faults.plan.FaultInjector`
    (the :attr:`faults` property).
    """

    def __init__(self, engine: Optional[Engine] = None, seed=_UNSET,
                 trace=_UNSET, telemetry=_UNSET, *,
                 spec: Optional[ClusterSpec] = None):
        spec = ClusterSpec.coalesce(spec=spec, seed=seed,
                                    trace=trace, telemetry=telemetry)
        self.spec = spec
        self.engine = engine or Engine.from_spec(spec)
        self.ethernet = Fabric(self.engine, TCP_ETHERNET)
        self.myrinet = Fabric(self.engine, BIP_MYRINET)
        self.nodes: Dict[str, Node] = {}
        #: Callbacks invoked with (node_id, event) on crash/recover/add/remove;
        #: the Starfish daemons' failure detector confirms these through
        #: heartbeats — the callbacks exist for tests and metrics.
        self.watchers: List[Callable[[str, str], None]] = []
        self._faults = None
        if spec.loss_prob:
            # The builder's ambient loss is just an open-ended loss window,
            # logged like any other fault action.
            from repro.faults.actions import FrameLossWindow
            self.faults.fire(FrameLossWindow(prob=spec.loss_prob,
                                             duration=None, fabric="both"))

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, nodes=_UNSET, seed=_UNSET, archs=_UNSET,
              trace=_UNSET, telemetry=_UNSET, *,
              spec: Optional[ClusterSpec] = None) -> "Cluster":
        """A cluster of ``spec.nodes`` homogeneous (or ``spec.archs``-cycled)
        nodes.  Keyword arguments are folded into a spec."""
        spec = ClusterSpec.coalesce(spec=spec, nodes=nodes, seed=seed,
                                    archs=archs,
                                    trace=trace, telemetry=telemetry)
        cluster = cls(spec=spec)
        for i in range(spec.nodes):
            arch = spec.archs[i % len(spec.archs)] if spec.archs \
                else DEFAULT_ARCH
            cluster.add_node(f"n{i}", arch=arch)
        return cluster

    # -- fault injection ------------------------------------------------------

    @property
    def faults(self):
        """The cluster's single :class:`~repro.faults.plan.FaultInjector`."""
        if self._faults is None:
            from repro.faults.plan import FaultInjector
            self._faults = FaultInjector(self)
        return self._faults

    def add_node(self, node_id: str,
                 arch: Architecture = DEFAULT_ARCH) -> Node:
        """Add a workstation and wire it to both fabrics."""
        if node_id in self.nodes:
            raise ClusterError(f"duplicate node id {node_id!r}")
        node = Node(self.engine, node_id, arch=arch)
        node.attach(self.ethernet)
        node.attach(self.myrinet)
        self.nodes[node_id] = node
        self._notify(node_id, "add")
        return node

    def remove_node(self, node_id: str) -> None:
        """Administratively remove a node (it is crashed first if up).

        The crash is notified as a "crash" event *before* the "remove",
        in the same sim instant — watchers that invalidate volatile
        state on crashes (e.g. the checkpoint store dropping in-memory
        copies) must never observe a removed-but-never-crashed node.
        """
        node = self.node(node_id)
        if node.is_up or node.state is NodeState.DISABLED:
            node.crash(cause="removed from cluster")
            self._notify(node_id, "crash")
        del self.nodes[node_id]
        self._notify(node_id, "remove")

    # -- access ---------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown node {node_id!r}") from None

    def up_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_up]

    def schedulable_nodes(self) -> List[Node]:
        """Nodes eligible for new application processes."""
        return [n for n in self.nodes.values() if n.state is NodeState.UP]

    # -- fault mechanisms (used by repro.faults actions) ----------------------

    def crash_node(self, node_id: str, cause: str = "fault-injection") -> None:
        self.node(node_id).crash(cause=cause)
        self._notify(node_id, "crash")

    def recover_node(self, node_id: str) -> Node:
        node = self.node(node_id)
        node.recover()
        node.attach(self.ethernet)
        node.attach(self.myrinet)
        self._notify(node_id, "recover")
        return node

    def _notify(self, node_id: str, event: str) -> None:
        for cb in self.watchers:
            cb(node_id, event)

    def __repr__(self) -> str:
        up = sum(1 for n in self.nodes.values() if n.is_up)
        return f"<Cluster {up}/{len(self.nodes)} nodes up t={self.engine.now:.6g}>"
