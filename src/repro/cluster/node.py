"""A workstation node.

A node bundles an architecture descriptor, a disk, one NIC per attached
fabric, and a registry of the simulated processes currently running on it.
Crashing a node interrupts every registered process, shuts down its NICs
(pending frames are lost), and invalidates its volatile state — exactly the
fail-stop model the paper's recovery protocols assume.  Checkpoints written
through :mod:`repro.ckpt.storage` live on *stable storage* and survive.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.cluster.arch import Architecture, DEFAULT_ARCH
from repro.cluster.disk import Disk
from repro.errors import ClusterError, NodeDown
from repro.net.fabric import Fabric
from repro.net.nic import Nic
from repro.sim.process import Process


class NodeState(enum.Enum):
    UP = "up"
    DOWN = "down"            # crashed or administratively stopped
    DISABLED = "disabled"    # up, but may not accept new work (paper §3.1.1)


class Node:
    """One workstation in the cluster."""

    def __init__(self, engine, node_id: str,
                 arch: Architecture = DEFAULT_ARCH,
                 disk: Optional[Disk] = None):
        self.engine = engine
        self.node_id = node_id
        self.arch = arch
        self.disk = disk or Disk(engine, node_id)
        self.state = NodeState.UP
        self.nics: Dict[str, Nic] = {}     # fabric name -> Nic
        self._procs: List[Process] = []
        #: Incremented on every crash; lets late messages from a previous
        #: incarnation be recognized and discarded.
        self.incarnation = 0

    # -- fabric attachment ----------------------------------------------------

    def attach(self, fabric: Fabric) -> Nic:
        """Attach this node to ``fabric`` (idempotent); returns the NIC."""
        nic = self.nics.get(fabric.spec.name)
        if nic is None or not nic.is_up:
            nic = Nic(self.engine, self.node_id, fabric)
            self.nics[fabric.spec.name] = nic
        return nic

    def nic(self, fabric_name: str) -> Nic:
        try:
            return self.nics[fabric_name]
        except KeyError:
            raise ClusterError(
                f"{self.node_id} not attached to {fabric_name!r}") from None

    # -- process hosting ---------------------------------------------------------

    def host(self, process: Process) -> Process:
        """Register a simulated process as running on this node.

        Registered processes are interrupted with :class:`NodeDown` when the
        node crashes.
        """
        if self.state is NodeState.DOWN:
            raise NodeDown(f"cannot start process on {self.node_id} "
                           f"({self.state.value})")
        self._procs.append(process)
        return process

    def spawn(self, generator, name: Optional[str] = None) -> Process:
        """Create a process from ``generator`` and host it here."""
        if self.state is NodeState.DOWN:
            raise NodeDown(f"cannot start process on {self.node_id} (down)")
        return self.host(self.engine.process(generator, name=name))

    @property
    def live_processes(self) -> List[Process]:
        self._procs = [p for p in self._procs if p.is_alive]
        return list(self._procs)

    # -- lifecycle -----------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.state is NodeState.UP

    def crash(self, cause: str = "crash") -> None:
        """Fail-stop the node: kill processes, drop network, lose RAM."""
        if self.state is NodeState.DOWN:
            raise ClusterError(f"{self.node_id} is already down")
        self.state = NodeState.DOWN
        for nic in self.nics.values():
            nic.shutdown(NodeDown(f"{self.node_id}: {cause}"))
        self.nics.clear()
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt(NodeDown(f"{self.node_id}: {cause}"))
        self._procs.clear()

    def recover(self) -> None:
        """Bring a crashed node back up (empty, new incarnation).

        The caller re-attaches fabrics; the disk's contents survive.
        """
        if self.state is not NodeState.DOWN:
            raise ClusterError(f"recover() on {self.node_id} which is "
                               f"{self.state.value}")
        self.state = NodeState.UP
        self.incarnation += 1

    def disable(self) -> None:
        """Administratively exclude from new placements (stays up)."""
        if self.state is not NodeState.UP:
            raise ClusterError(f"disable() on {self.state.value} node")
        self.state = NodeState.DISABLED

    def enable(self) -> None:
        if self.state is not NodeState.DISABLED:
            raise ClusterError(f"enable() on {self.state.value} node")
        self.state = NodeState.UP

    def __repr__(self) -> str:
        return (f"<Node {self.node_id} {self.state.value} arch="
                f"{self.arch.endianness}/{self.arch.word_bits} "
                f"procs={len(self._procs)}>")
