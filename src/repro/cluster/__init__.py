"""Cluster of workstations model (system S2).

A :class:`~repro.cluster.cluster.Cluster` is a set of
:class:`~repro.cluster.node.Node` objects wired to two fabrics (Ethernet and
Myrinet, as in the paper's testbed).  Each node has an architecture
descriptor (Table 2 of the paper), an IDE-class disk used by the checkpoint
storage model, and can crash, recover, be disabled, or be removed at
runtime — the dynamics Starfish is built to absorb.
"""

from repro.cluster.arch import (Architecture, BIG_ENDIAN, LITTLE_ENDIAN,
                                TABLE2_MACHINES, DEFAULT_ARCH, arch_by_name)
from repro.cluster.disk import Disk
from repro.cluster.node import Node, NodeState
from repro.cluster.spec import ClusterSpec
from repro.cluster.cluster import Cluster

__all__ = [
    "Architecture",
    "BIG_ENDIAN",
    "Cluster",
    "ClusterSpec",
    "DEFAULT_ARCH",
    "Disk",
    "LITTLE_ENDIAN",
    "Node",
    "NodeState",
    "TABLE2_MACHINES",
    "arch_by_name",
]
