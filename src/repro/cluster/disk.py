"""Per-node disk model.

The paper attributes its checkpoint times to "regular IDE bus and
controller" hardware; this model charges ``latency + nbytes / bandwidth``
per operation and serializes concurrent operations (one head).  Checkpoint
storage (:mod:`repro.ckpt.storage`) writes through this model, which is what
produces the Figure 3/4 curves.
"""

from __future__ import annotations

from typing import Optional

from repro.calibration import DISK_READ_BANDWIDTH, NATIVE_DISK_BANDWIDTH
from repro.sim.resources import Resource


class Disk:
    """One node's local disk.

    Parameters
    ----------
    write_bandwidth / read_bandwidth:
        Sustained throughput in bytes/second.
    op_latency:
        Fixed per-operation cost (seek + metadata), seconds.
    """

    def __init__(self, engine, node_id: str,
                 write_bandwidth: float = NATIVE_DISK_BANDWIDTH,
                 read_bandwidth: float = DISK_READ_BANDWIDTH,
                 op_latency: float = 0.0):
        self.engine = engine
        self.node_id = node_id
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.op_latency = op_latency
        self._head = Resource(engine, capacity=1, name=f"disk:{node_id}")
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, nbytes: int, bandwidth: Optional[float] = None):
        """Process generator: synchronous write of ``nbytes``.

        ``bandwidth`` overrides the device default — the VM-level checkpoint
        path uses its faster serialize-and-buffered-write rate (Fig. 4).
        """
        bw = bandwidth or self.write_bandwidth
        req = self._head.request()
        yield req
        try:
            yield self.engine.timeout(self.op_latency + nbytes / bw)
            self.bytes_written += nbytes
        finally:
            self._head.release(req)

    def read(self, nbytes: int, bandwidth: Optional[float] = None):
        """Process generator: synchronous read of ``nbytes``."""
        bw = bandwidth or self.read_bandwidth
        req = self._head.request()
        yield req
        try:
            yield self.engine.timeout(self.op_latency + nbytes / bw)
            self.bytes_read += nbytes
        finally:
            self._head.release(req)

    def __repr__(self) -> str:
        return (f"<Disk {self.node_id} written={self.bytes_written} "
                f"read={self.bytes_read}>")
