"""Machine architecture descriptors — Table 2 of the paper.

Heterogeneous checkpointing must know, per machine, the byte order and the
VM word length (the paper's OCaml VM uses one bit of every word as a tag, so
unboxed integers are 31-bit on 32-bit machines and 63-bit on 64-bit ones).
The six machines the paper tested are reproduced verbatim below and are the
architectures the Table 2 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

LITTLE_ENDIAN = "little"
BIG_ENDIAN = "big"


@dataclass(frozen=True)
class Architecture:
    """One machine type (a row of Table 2)."""

    name: str           # e.g. "Intel P-II 350 MHz, i686"
    os: str             # e.g. "RedHat 6.1 Linux"
    endianness: str     # "little" | "big"
    word_bits: int      # 32 | 64
    #: Relative CPU speed (1.0 = the paper's 300 MHz P-II baseline); scales
    #: per-message processing costs in sensitivity experiments.
    cpu_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.endianness not in (LITTLE_ENDIAN, BIG_ENDIAN):
            raise ValueError(f"bad endianness {self.endianness!r}")
        if self.word_bits not in (32, 64):
            raise ValueError(f"bad word length {self.word_bits!r}")

    @property
    def vm_int_bits(self) -> int:
        """Width of an unboxed VM integer (one tag bit, like OCaml)."""
        return self.word_bits - 1

    @property
    def word_bytes(self) -> int:
        return self.word_bits // 8

    def same_representation(self, other: "Architecture") -> bool:
        """True if checkpoints need no conversion between the two machines."""
        return (self.endianness == other.endianness
                and self.word_bits == other.word_bits)

    def __str__(self) -> str:
        return (f"{self.name} / {self.os} "
                f"({self.endianness}-endian, {self.word_bits}-bit)")


#: The six machines of Table 2, in the paper's order.
TABLE2_MACHINES: Tuple[Architecture, ...] = (
    Architecture("Intel P-II 350 MHz, i686", "RedHat 6.1 Linux",
                 LITTLE_ENDIAN, 32, cpu_factor=1.15),
    Architecture("Sun Ultra Enterprise 3000", "SunOS 5.7",
                 BIG_ENDIAN, 32, cpu_factor=1.0),
    Architecture("RS/6000", "AIX 3.2",
                 BIG_ENDIAN, 32, cpu_factor=0.8),
    Architecture("Intel P-I, 160 MHz", "FreeBSD 3.2",
                 LITTLE_ENDIAN, 32, cpu_factor=0.5),
    Architecture("Intel P-II, 350 MHz", "Win NT",
                 LITTLE_ENDIAN, 32, cpu_factor=1.15),
    Architecture("Dual Alpha DS20 500 MHz", "RedHat 6.2 Linux",
                 LITTLE_ENDIAN, 64, cpu_factor=1.6),
)

#: The performance-measurement machine of §5 (300 MHz Pentium II).
DEFAULT_ARCH = Architecture("Intel P-II 300 MHz", "RedHat Linux",
                            LITTLE_ENDIAN, 32, cpu_factor=1.0)

_BY_NAME: Dict[str, Architecture] = {m.name: m for m in TABLE2_MACHINES}
_BY_NAME[DEFAULT_ARCH.name] = DEFAULT_ARCH


def arch_by_name(name: str) -> Architecture:
    """Look up a Table 2 machine (or the default) by its exact name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown architecture {name!r}; known: "
                       f"{sorted(_BY_NAME)}") from None
