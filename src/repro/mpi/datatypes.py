"""Wire-size accounting for transmitted Python objects.

The simulator moves Python objects by reference; what the timing model
needs is the number of bytes the real system would marshal.  ``nbytes_of``
estimates that, preferring exact answers (NumPy buffers, bytes) and falling
back to a compact-encoding estimate for plain Python data.
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Per-object marshalling overhead for non-buffer types.
_BOX = 8


def nbytes_of(data: Any) -> int:
    """Estimated marshalled size of ``data`` in bytes."""
    if data is None or isinstance(data, bool):
        return 1
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (np.integer, np.floating, float, int)):
        return 8
    if isinstance(data, complex):
        return 16
    if isinstance(data, str):
        return len(data.encode("utf-8"))
    if isinstance(data, (list, tuple, set, frozenset)):
        return _BOX + sum(nbytes_of(item) for item in data)
    if isinstance(data, dict):
        return _BOX + sum(nbytes_of(k) + nbytes_of(v)
                          for k, v in data.items())
    # Opaque object: charge a boxed reference; callers that care pass
    # an explicit size.
    return _BOX
