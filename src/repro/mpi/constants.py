"""MPI constants."""

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1
#: Null rank: sends/receives to it complete immediately with no data.
PROC_NULL = -2
#: Returned by split() for ranks passing color=UNDEFINED.
UNDEFINED = -3

#: Largest tag available to applications; larger values (and all negative
#: tags) are reserved for the runtime (collectives, C/R protocols).
MAX_USER_TAG = 2**20

#: Base for internal collective tags (negative space, below ANY_TAG).
COLL_TAG_BASE = -16
#: Base for checkpoint-protocol tags.
CKPT_TAG_BASE = -(2**24)

#: Fixed header bytes added to each data message on the wire (the wire
#: timing model in repro.calibration accounts for its serialization).
from repro.calibration import DATA_HEADER as MSG_HEADER  # noqa: E402
