"""Receive status objects."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Status:
    """What a completed receive reports (MPI_Status).

    Not frozen: one is built per completed receive, and the frozen
    machinery (``object.__setattr__`` per field) triples construction
    cost on the hot path.
    """

    source: int
    tag: int
    nbytes: int

    def get_source(self) -> int:
        return self.source

    def get_tag(self) -> int:
        return self.tag

    def get_count(self) -> int:
        return self.nbytes
