"""MPI message matching: posted receives vs the unexpected-message queue.

Standard MPI semantics:

* a receive posted with ``(source, tag)`` — either possibly ``ANY_SOURCE``
  / ``ANY_TAG`` — matches the *earliest arrived* unexpected message that
  fits; an arriving message matches the *earliest posted* fitting receive;
* non-overtaking: two messages from the same source with the same tag (and
  communicator) match receives in their send order — guaranteed here
  because arrival order per (source, comm) is FIFO and both queues are
  scanned oldest-first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.request import Request
from repro.mpi.status import Status

_arrivals = itertools.count(1)


@dataclass
class InboundMsg:
    """A data message after the MPI layer unwrapped it."""

    comm_id: str
    source: int          # rank within the communicator
    tag: int
    data: Any
    nbytes: int
    arrival: int = field(default_factory=lambda: next(_arrivals))

    def status(self) -> Status:
        return Status(source=self.source, tag=self.tag, nbytes=self.nbytes)


@dataclass
class PostedRecv:
    """A receive waiting for a message."""

    comm_id: str
    source: int
    tag: int
    request: Request

    def matches(self, msg: InboundMsg) -> bool:
        if self.comm_id != msg.comm_id:
            return False
        if self.source not in (ANY_SOURCE, msg.source):
            return False
        # ANY_TAG never matches internal (negative) tags, as in MPI.
        if self.tag == ANY_TAG:
            return msg.tag >= 0
        return self.tag == msg.tag


class MatchingEngine:
    """The two queues and their matching discipline."""

    def __init__(self):
        self.unexpected: List[InboundMsg] = []
        self.posted: List[PostedRecv] = []

    # -- arrival side --------------------------------------------------------

    def arrived(self, msg: InboundMsg) -> Optional[PostedRecv]:
        """Offer an arriving message; completes and returns the matched
        posted receive, or queues the message as unexpected.

        The match test is inlined (see :meth:`PostedRecv.matches` for the
        reference semantics): both queues are scanned once per message on
        the data fast path.
        """
        comm_id, source, tag = msg.comm_id, msg.source, msg.tag
        for i, recv in enumerate(self.posted):
            if (recv.comm_id == comm_id
                    and recv.source in (ANY_SOURCE, source)
                    and (tag >= 0 if recv.tag == ANY_TAG
                         else recv.tag == tag)):
                del self.posted[i]
                recv.request.complete(msg.data, msg.status())
                return recv
        self.unexpected.append(msg)
        return None

    # -- receive side -----------------------------------------------------------

    def post(self, recv: PostedRecv) -> Optional[InboundMsg]:
        """Post a receive; if an unexpected message fits, consume it and
        complete immediately (returns it), else queue the receive."""
        comm_id, source, tag = recv.comm_id, recv.source, recv.tag
        any_src = source == ANY_SOURCE
        for i, msg in enumerate(self.unexpected):
            if (msg.comm_id == comm_id
                    and (any_src or source == msg.source)
                    and (msg.tag >= 0 if tag == ANY_TAG
                         else tag == msg.tag)):
                del self.unexpected[i]
                recv.request.complete(msg.data, msg.status())
                return msg
        self.posted.append(recv)
        return None

    def cancel(self, request: Request) -> bool:
        for i, recv in enumerate(self.posted):
            if recv.request is request:
                del self.posted[i]
                request.cancelled = True
                return True
        return False

    def probe(self, comm_id: str, source: int, tag: int) -> Optional[Status]:
        """First unexpected message matching, without consuming it."""
        probe_recv = PostedRecv(comm_id=comm_id, source=source, tag=tag,
                                request=None)  # type: ignore[arg-type]
        for msg in self.unexpected:
            if probe_recv.matches(msg):
                return msg.status()
        return None

    # -- checkpoint support ----------------------------------------------------

    def snapshot_unexpected(self) -> List[Tuple]:
        """Serializable image of the unexpected queue (C/R protocols)."""
        return [(m.comm_id, m.source, m.tag, m.data, m.nbytes)
                for m in self.unexpected]

    def restore_unexpected(self, items) -> None:
        self.unexpected = [InboundMsg(comm_id=c, source=s, tag=t, data=d,
                                      nbytes=n) for c, s, t, d, n in items]

    def fail_all_posted(self, exc: BaseException) -> None:
        for recv in self.posted:
            recv.request.fail(exc)
        self.posted.clear()
