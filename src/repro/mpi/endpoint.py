"""The per-process MPI engine: eager sends, dispatcher, channel counters.

One :class:`MpiEndpoint` lives inside each application process.  It owns
the process's VNI, the matching engine, and per-peer channel counters (the
raw material of the checkpoint protocols' quiescence detection and channel
recording).  Data messages are delivered *eagerly*: the paper's polling
thread (inside the VNI) moves them off the network whether or not a
matching receive exists yet, and this dispatcher files them into the
matching engine.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.calibration import LayerCosts
from repro.errors import Interrupt, MpiError, NetworkError, NodeDown
from repro.mpi.constants import CKPT_TAG_BASE, MSG_HEADER, PROC_NULL
from repro.mpi.datatypes import nbytes_of
from repro.mpi.matching import InboundMsg, MatchingEngine
from repro.mpi.request import Request
from repro.obs.registry import get_registry
from repro.sim.events import Timeout
from repro.vni.interface import Vni

#: Wire packet: ("mpi", comm_id, src_comm_rank, tag, data, nbytes, src_world)
_PKT_TAG = "mpi"


class MpiEndpoint:
    """MPI engine of one rank of one application.

    Parameters
    ----------
    world_rank:
        This process's rank in the application's world communicator.
    addressbook:
        ``{world_rank: (node_id, vni_port)}`` — mutated in place by the
        runtime when processes migrate or restart elsewhere.
    transport:
        Fabric for the data fast path (default BIP/Myrinet, as the paper's
        performance configuration).
    polling:
        Run the paper's polling-thread receive path (see
        :class:`repro.vni.Vni`).
    """

    def __init__(self, engine, node, app_id: str, world_rank: int,
                 addressbook: Dict[int, Tuple[str, str]],
                 transport: str = "bip-myrinet", polling: bool = True,
                 register: bool = True):
        self.engine = engine
        self.node = node
        self.app_id = app_id
        self.world_rank = world_rank
        self.addressbook = addressbook
        self.port = f"mpi:{app_id}:{world_rank}"
        if register:
            # Backup replicas of a rank (active replication) share the
            # rank's world slot but must not clobber the primary's
            # address; a promoted backup registers itself on failover.
            addressbook[world_rank] = (node.node_id, self.port)
        self.vni = Vni(engine, node, port=self.port, transport=transport,
                       polling=polling)
        self.polling = polling
        self.matching = MatchingEngine()
        #: Data messages sent to / received from each peer world rank —
        #: per-channel *protocol state* (quiescence detection, channel
        #: recording), checkpointed and restored; deliberately NOT registry
        #: instruments.
        self.sent_count: Dict[int, int] = defaultdict(int)
        self.recv_count: Dict[int, int] = defaultdict(int)
        # Simulated-latency distributions of the MPI layer (Figure 5 / 6
        # material); shared per-engine series, cached here off the hot path.
        self._registry = get_registry(engine)
        self._h_send = self._registry.histogram(
            "mpi.p2p.latency_seconds", op="send",
            help="simulated seconds from send() entry to wire handoff")
        self._h_recv = self._registry.histogram(
            "mpi.p2p.latency_seconds", op="recv",
            help="simulated seconds a recv() waits for its message")
        self._h_collectives: Dict[str, Any] = {}
        #: Hook intercepting control messages (tag <= CKPT_TAG_BASE);
        #: installed by the C/R module (e.g. Chandy–Lamport markers).
        self.control_hook: Optional[Callable[[InboundMsg, int], Any]] = None
        #: Piggyback provider: called per outgoing data message; its return
        #: value rides the packet (uncoordinated C/R dependency tracking).
        self.piggyback_provider: Optional[Callable[[], Any]] = None
        #: Tap on arriving data messages: ``tap(src_world, msg, piggyback)``
        #: (legacy hook; superseded by :attr:`tap`).
        self.data_tap: Optional[Callable[[int, InboundMsg, Any], None]] = None
        #: DeliveryTap role object (repro.ckpt.protocols.roles): the C/R
        #: module's interception point on both the send and delivery
        #: paths.  When set, its piggyback() wins over piggyback_provider.
        self.tap: Optional[Any] = None
        self._dispatcher = None
        if polling:
            self._dispatcher = node.spawn(self._dispatch(),
                                          name=f"mpi-disp:{self.port}")

    @property
    def layers(self) -> LayerCosts:
        return self.vni.layers

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------

    def send(self, dest_world: int, comm_id: str, src_comm_rank: int,
             tag: int, data: Any, nbytes: Optional[int] = None,
             pre_delay: float = 0.0):
        """Process generator: eager-send one data message.

        ``pre_delay`` is software cost already owed by the caller (the
        communicator's ``app_send``); it is folded — together with this
        layer's ``mpi_send`` — into the VNI's single merged timeout, so
        the whole software send stack costs one engine wakeup.  The
        channel counter and piggyback are therefore sampled at send
        *entry* rather than ``mpi_send`` later; the sending process is
        suspended in between either way, and total latency is unchanged.
        """
        if dest_world == PROC_NULL:
            return
        addr = self.addressbook.get(dest_world)
        if addr is None:
            raise MpiError(f"rank {dest_world} has no address "
                           f"(app {self.app_id})")
        nbytes = nbytes if nbytes is not None else nbytes_of(data)
        t0 = self.engine.now
        pb = None
        if tag > CKPT_TAG_BASE:  # control messages don't move the counters
            self.sent_count[dest_world] += 1
            if self.tap is not None:
                pb = self.tap.piggyback(dest_world)
            elif self.piggyback_provider is not None:
                pb = self.piggyback_provider()
        packet = (_PKT_TAG, comm_id, src_comm_rank, tag, data, nbytes,
                  self.world_rank, pb)
        if self.tap is not None and tag > CKPT_TAG_BASE:
            # Pre-wire hook: message-logging protocols persist the message
            # here, so the log strictly precedes the wire send.
            gen = self.tap.on_send(dest_world, comm_id, src_comm_rank,
                                   tag, data, nbytes, pb)
            if gen is not None:
                yield from gen
            # Replacement route: active replication carries data sends on
            # the total-order multicast instead of the point-to-point wire.
            route = self.tap.route_send(dest_world, comm_id, src_comm_rank,
                                        tag, data, nbytes, pb,
                                        pre_delay + self.layers.mpi_send)
            if route is not None:
                try:
                    yield from route
                finally:
                    self._h_send.observe(self.engine.now - t0)
                return
        node_id, port = addr
        try:
            yield from self.vni.send(node_id, port, packet,
                                     size=nbytes + MSG_HEADER, kind="data",
                                     pre_delay=pre_delay
                                     + self.layers.mpi_send)
        except (NodeDown, NetworkError):
            # Peer (or our NIC) died mid-send: eager sends complete locally;
            # failure surfaces through the daemons' failure detection.
            pass
        finally:
            self._h_send.observe(self.engine.now - t0)

    def observe_recv(self, dt: float) -> None:
        """Record how long a blocking receive waited (called by the
        communicator, which owns the wait)."""
        self._h_recv.observe(dt)

    def observe_collective(self, op: str, dt: float) -> None:
        """Record one collective's wall-to-wall simulated duration."""
        hist = self._h_collectives.get(op)
        if hist is None:
            hist = self._registry.histogram(
                "mpi.collective.latency_seconds", op=op,
                help="simulated seconds per collective call, by operation")
            self._h_collectives[op] = hist
        hist.observe(dt)

    def isend(self, dest_world: int, comm_id: str, src_comm_rank: int,
              tag: int, data: Any, nbytes: Optional[int] = None) -> Request:
        req = Request(self.engine, "send")

        def run():
            try:
                yield from self.send(dest_world, comm_id, src_comm_rank,
                                     tag, data, nbytes)
                req.complete(None)
            except Interrupt:
                # Killed mid-send (node crash).  The owning rank died with
                # us, so the failure may never be observed — defuse it; a
                # waiter that *is* parked on the request still gets the
                # exception through its callback.
                req.fail(MpiError("isend interrupted"))
                req.event.defuse()

        self.node.spawn(run(), name=f"isend:{self.port}")
        return req

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------

    def _dispatch(self):
        """Move VNI-received messages into the matching engine."""
        try:
            while True:
                try:
                    vmsg = yield from self.vni.recv()
                except (NodeDown, NetworkError):
                    return
                yield Timeout(self.engine, self.layers.mpi_recv)
                consumed = yield from self._ingest(vmsg.payload)
                del consumed
        except Interrupt:
            return

    def _ingest(self, payload):
        """Classify one raw packet; returns True if a hook consumed it."""
        if not (isinstance(payload, tuple) and payload
                and payload[0] == _PKT_TAG):
            return False
        _, comm_id, src_rank, tag, data, nbytes, src_world, pb = payload
        if tag <= CKPT_TAG_BASE:
            if self.tap is not None or self.control_hook is not None:
                msg = InboundMsg(comm_id=comm_id, source=src_rank, tag=tag,
                                 data=data, nbytes=nbytes)
                if self.tap is not None:
                    result = self.tap.on_control(msg, src_world)
                    if result is not None and hasattr(result, "__next__"):
                        yield from result
                if self.control_hook is not None:
                    result = self.control_hook(msg, src_world)
                    if result is not None and hasattr(result, "__next__"):
                        yield from result
            return True
        inbound = InboundMsg(comm_id=comm_id, source=src_rank, tag=tag,
                             data=data, nbytes=nbytes)
        if self.tap is not None and self.tap.on_deliver(src_world, inbound,
                                                        pb):
            # Suppressed (duplicate under log-replay, or stashed during a
            # solo restore): the counter must not move.
            return False
        self.recv_count[src_world] += 1
        if self.data_tap is not None:
            self.data_tap(src_world, inbound, pb)
        self.matching.arrived(inbound)
        return False

    def pump_blocking(self):
        """Process generator: ingest exactly one message from the NIC.

        Used when the polling thread is disabled (ablation §2.2.1): the
        receiver itself must enter the kernel per message.
        """
        vmsg = yield from self.vni.recv()
        yield self.engine.timeout(self.layers.mpi_recv)
        yield from self._ingest(vmsg.payload)

    # ------------------------------------------------------------------
    # checkpoint/restart support
    # ------------------------------------------------------------------

    def channel_counters(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        return dict(self.sent_count), dict(self.recv_count)

    def export_state(self) -> dict:
        """Serializable runtime state saved inside checkpoints."""
        return {
            "sent_count": dict(self.sent_count),
            "recv_count": dict(self.recv_count),
            "unexpected": self.matching.snapshot_unexpected(),
        }

    def import_state(self, state: dict) -> None:
        self.sent_count = defaultdict(int, state["sent_count"])
        self.recv_count = defaultdict(int, state["recv_count"])
        self.matching.restore_unexpected(state["unexpected"])

    def in_flight_to(self, peer_sent: Dict[int, int]) -> int:
        """Messages sent to us (per peers' counters) but not yet ingested."""
        missing = 0
        for src, sent in peer_sent.items():
            missing += sent - self.recv_count.get(src, 0)
        return missing

    def close(self) -> None:
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("mpi-close")
        self.vni.close()

    def __repr__(self) -> str:
        return (f"<MpiEndpoint {self.app_id}#{self.world_rank} on "
                f"{self.node.node_id}>")
