"""Reduction operators.

Each operator combines two contributions; element-wise operators accept
scalars, (nested) lists/tuples of scalars, or NumPy arrays.  MAXLOC/MINLOC
operate on whole ``(value, index)`` pairs, as in MPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import MpiError


def _combine(a: Any, b: Any, fn) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return fn(np.asarray(a), np.asarray(b))
    if isinstance(a, (list, tuple)):
        if not isinstance(b, (list, tuple)) or len(a) != len(b):
            raise MpiError("reduction over mismatched sequence shapes")
        out = [_combine(x, y, fn) for x, y in zip(a, b)]
        return tuple(out) if isinstance(a, tuple) else out
    return fn(a, b)


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative, commutative combiner.

    ``elementwise`` operators recurse into containers; pair operators
    (MAXLOC/MINLOC) treat each contribution as one opaque tuple.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    elementwise: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        if self.elementwise:
            return _combine(a, b, self.fn)
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"<ReduceOp {self.name}>"


SUM = ReduceOp("SUM", lambda a, b: a + b)
PROD = ReduceOp("PROD", lambda a, b: a * b)
MAX = ReduceOp("MAX", lambda a, b: np.maximum(a, b)
               if isinstance(a, np.ndarray) else max(a, b))
MIN = ReduceOp("MIN", lambda a, b: np.minimum(a, b)
               if isinstance(a, np.ndarray) else min(a, b))
LAND = ReduceOp("LAND", lambda a, b: np.logical_and(a, b)
                if isinstance(a, np.ndarray) else bool(a) and bool(b))
LOR = ReduceOp("LOR", lambda a, b: np.logical_or(a, b)
               if isinstance(a, np.ndarray) else bool(a) or bool(b))
BAND = ReduceOp("BAND", lambda a, b: a & b)
BOR = ReduceOp("BOR", lambda a, b: a | b)


def _maxloc(a, b):
    (va, ia), (vb, ib) = a, b
    if va > vb or (va == vb and ia < ib):
        return (va, ia)
    return (vb, ib)


def _minloc(a, b):
    (va, ia), (vb, ib) = a, b
    if va < vb or (va == vb and ia < ib):
        return (va, ia)
    return (vb, ib)


MAXLOC = ReduceOp("MAXLOC", _maxloc, elementwise=False)
MINLOC = ReduceOp("MINLOC", _minloc, elementwise=False)


def apply_op(op: ReduceOp, a: Any, b: Any) -> Any:
    """Combine two contributions under ``op``."""
    return op(a, b)
