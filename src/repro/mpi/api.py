"""The MPI facade handed to application programs (``ctx.mpi``).

Wraps the world communicator with the familiar call surface plus the
Starfish extension downcalls of the paper's API (§1):

* ``checkpoint()`` — user-initiated checkpoint of the whole application;
* ``spawn(n)`` — MPI-2 dynamic process management, serviced by the daemons;
* world refresh — after a view change under the VIEW_NOTIFY policy, the
  runtime renumbers the surviving ranks densely and swaps in a new world
  communicator; programs observe it through their ``on_view_change`` hook.

A program that uses none of these is a plain MPI program — Starfish runs
it unmodified (the paper's compatibility argument), and conversely a
Starfish program stripped of these calls runs on any MPI.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import MpiError
from repro.mpi.communicator import Communicator
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.reduce_ops import SUM, ReduceOp
from repro.mpi.request import Request, waitall, waitany


class RuntimeServices:
    """What the Starfish runtime provides behind the extension downcalls.

    The default implementation refuses everything — a bare MpiApi (as used
    in unit tests) behaves like a conventional MPI library.
    """

    def request_checkpoint(self):
        raise MpiError("checkpoint() requires the Starfish runtime")
        yield  # pragma: no cover

    def request_spawn(self, nprocs: int):
        raise MpiError("spawn() requires the Starfish runtime")
        yield  # pragma: no cover


class MpiApi:
    """Per-process MPI interface bound to one world communicator."""

    def __init__(self, endpoint: MpiEndpoint, nprocs: int,
                 services: Optional[RuntimeServices] = None,
                 world_group: Optional[Tuple[int, ...]] = None,
                 world_version: int = 0):
        self.endpoint = endpoint
        self.services = services or RuntimeServices()
        group = world_group or tuple(range(nprocs))
        self.world = Communicator(
            endpoint, f"world:{endpoint.app_id}:v{world_version}", group)
        self.world_version = world_version

    # -- identity ------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.world.rank

    @property
    def size(self) -> int:
        return self.world.size

    # -- point-to-point (delegates to the world communicator) ----------------

    def send(self, data, dest, tag=0, size=None):
        yield from self.world.send(data, dest, tag=tag, size=size)

    def recv(self, source=ANY_SOURCE, tag=ANY_TAG, with_status=False):
        out = yield from self.world.recv(source=source, tag=tag,
                                         with_status=with_status)
        return out

    def isend(self, data, dest, tag=0, size=None) -> Request:
        return self.world.isend(data, dest, tag=tag, size=size)

    def irecv(self, source=ANY_SOURCE, tag=ANY_TAG) -> Request:
        return self.world.irecv(source=source, tag=tag)

    def sendrecv(self, data, dest, source=ANY_SOURCE, sendtag=0,
                 recvtag=ANY_TAG, size=None):
        out = yield from self.world.sendrecv(data, dest, source=source,
                                             sendtag=sendtag,
                                             recvtag=recvtag, size=size)
        return out

    def probe(self, source=ANY_SOURCE, tag=ANY_TAG):
        st = yield from self.world.probe(source=source, tag=tag)
        return st

    def iprobe(self, source=ANY_SOURCE, tag=ANY_TAG):
        return self.world.iprobe(source=source, tag=tag)

    def wait(self, request: Request):
        data = yield from request.wait()
        return data

    def waitall(self, requests: List[Request]):
        out = yield from waitall(self.endpoint.engine, requests)
        return out

    def waitany(self, requests: List[Request]):
        out = yield from waitany(self.endpoint.engine, requests)
        return out

    # -- collectives ------------------------------------------------------------

    def barrier(self):
        yield from self.world.barrier()

    def bcast(self, data, root=0):
        out = yield from self.world.bcast(data, root=root)
        return out

    def reduce(self, data, op: ReduceOp = SUM, root=0):
        out = yield from self.world.reduce(data, op=op, root=root)
        return out

    def allreduce(self, data, op: ReduceOp = SUM):
        out = yield from self.world.allreduce(data, op=op)
        return out

    def gather(self, data, root=0):
        out = yield from self.world.gather(data, root=root)
        return out

    def scatter(self, data, root=0):
        out = yield from self.world.scatter(data, root=root)
        return out

    def allgather(self, data):
        out = yield from self.world.allgather(data)
        return out

    def alltoall(self, data):
        out = yield from self.world.alltoall(data)
        return out

    def scan(self, data, op: ReduceOp = SUM):
        out = yield from self.world.scan(data, op=op)
        return out

    def split(self, color, key=None):
        out = yield from self.world.split(color, key=key)
        return out

    def dup(self):
        out = yield from self.world.dup()
        return out

    # -- Starfish extensions ------------------------------------------------------

    def checkpoint(self):
        """Starfish downcall: checkpoint the application now (§3.2.2).

        Returns the committed version (blocks until the commit; call it as
        the last communication-free action of a step)."""
        version = yield from self.services.request_checkpoint()
        return version

    def spawn(self, nprocs: int):
        """MPI-2 dynamic process management: ask the daemons for ``nprocs``
        more processes of this application.  Returns the new world size
        once they have joined."""
        out = yield from self.services.request_spawn(nprocs)
        return out

    def export_comm_state(self) -> dict:
        """Communicator call counters for checkpoints (solo restarts must
        resume the tag sequences mid-stream; see Communicator.export_seqs)."""
        return {self.world.comm_id: self.world.export_seqs()}

    def import_comm_state(self, state: dict) -> None:
        seqs = state.get(self.world.comm_id)
        if seqs is not None:
            self.world.import_seqs(seqs)

    # -- runtime hook (not for application use) ---------------------------------

    def _refresh_world(self, group: Tuple[int, ...],
                       version: Optional[int] = None) -> None:
        """Swap in a new, densely-renumbered world after a view change.

        ``version`` is the cluster-assigned world version — it names the
        new communicator, so every process derives the same id even if
        some of them coalesced several view changes into one.
        """
        self.world_version = (version if version is not None
                              else self.world_version + 1)
        self.world = Communicator(
            self.endpoint,
            f"world:{self.endpoint.app_id}:v{self.world_version}", group)

    def __repr__(self) -> str:
        return f"<MpiApi rank {self.rank}/{self.size} {self.world.comm_id}>"
