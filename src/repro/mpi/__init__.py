"""The Starfish MPI module (system S10).

An MPI-2 subset faithful to what the paper's runtime provides, implemented
over the VNI fast path:

* blocking and non-blocking point-to-point (``send``/``recv``/``isend``/
  ``irecv``/``probe``) with standard matching semantics — ``ANY_SOURCE`` /
  ``ANY_TAG`` wildcards and non-overtaking FIFO per (source, tag);
* eager delivery with the receive-side polling thread of §2.2.1;
* communicators: ``COMM_WORLD``, ``dup``, ``split``, groups;
* collectives: barrier, bcast (binomial tree), reduce, allreduce, scatter,
  gather, allgather, alltoall, scan — over point-to-point with reserved
  internal tags;
* MPI-2 dynamic process management and the Starfish extension downcalls
  (user-initiated checkpoint, dynamic reconfiguration) are exposed through
  :class:`~repro.mpi.api.MpiApi` and serviced by the runtime
  (:mod:`repro.core.runtime`).

API style follows mpi4py's lowercase, pickle-ish object methods: ``data =
yield from mpi.recv(source=0)``.  Every MPI call that can block is a
generator to be driven with ``yield from``.
"""

from repro.mpi.constants import (ANY_SOURCE, ANY_TAG, MAX_USER_TAG,
                                 PROC_NULL, UNDEFINED)
from repro.mpi.reduce_ops import (BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN,
                                  MINLOC, PROD, SUM)
from repro.mpi.status import Status
from repro.mpi.request import Request
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.communicator import Communicator
from repro.mpi.api import MpiApi

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "BAND", "BOR", "Communicator", "LAND", "LOR",
    "MAX", "MAXLOC", "MAX_USER_TAG", "MIN", "MINLOC", "MpiApi",
    "MpiEndpoint", "PROC_NULL", "PROD", "Request", "SUM", "Status",
    "UNDEFINED",
]
