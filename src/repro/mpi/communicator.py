"""Communicators and collective operations.

A :class:`Communicator` maps communicator-local ranks onto the world ranks
of its group, provides the blocking/non-blocking point-to-point API, and
implements the collectives over point-to-point with reserved negative tags
(one tag per collective *instance*, derived from a per-communicator call
counter — which is why, as in real MPI, all members must call collectives
in the same order).

Collective algorithms: binomial trees for bcast/reduce/barrier (log₂ n
rounds), linear for (all)gather/scatter/alltoall/scan — matching a
late-90s MPICH-style implementation.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CommunicatorError, InvalidRank, InvalidTag, MpiError
from repro.mpi.constants import (ANY_SOURCE, ANY_TAG, COLL_TAG_BASE,
                                 MAX_USER_TAG, PROC_NULL, UNDEFINED)
from repro.mpi.datatypes import nbytes_of
from repro.mpi.endpoint import MpiEndpoint
from repro.mpi.matching import PostedRecv
from repro.mpi.reduce_ops import SUM, ReduceOp, apply_op
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.sim.events import Timeout


def _timed_collective(fn):
    """Wrap a collective generator so its simulated wall-to-wall duration
    lands in the ``mpi.collective.latency_seconds{op}`` histogram.

    Composite collectives (allreduce = reduce + bcast, barrier =
    allreduce) record at every level, so the histograms mirror the call
    tree rather than double-count a single series.
    """
    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        t0 = self.endpoint.engine.now
        try:
            result = yield from fn(self, *args, **kwargs)
        finally:
            self.endpoint.observe_collective(
                fn.__name__, self.endpoint.engine.now - t0)
        return result
    return wrapper


class Communicator:
    """One communication context over a fixed group of world ranks."""

    def __init__(self, endpoint: MpiEndpoint, comm_id: str,
                 group: Tuple[int, ...]):
        if endpoint.world_rank not in group:
            raise CommunicatorError(
                f"rank {endpoint.world_rank} not in group of {comm_id!r}")
        self.endpoint = endpoint
        self.comm_id = comm_id
        self.group = tuple(group)
        self._rank = self.group.index(endpoint.world_rank)
        self._coll_seq = 0
        self._split_seq = 0
        self._dup_seq = 0
        self._freed = False

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self.group)

    def world_rank_of(self, comm_rank: int) -> int:
        self._check_rank(comm_rank)
        return self.group[comm_rank]

    def export_seqs(self) -> Tuple[int, int, int]:
        """Checkpointable call counters (collective/split/dup tags derive
        from these, so a solo-restarted rank must resume the sequence —
        its peers' counters never reset)."""
        return (self._coll_seq, self._split_seq, self._dup_seq)

    def import_seqs(self, seqs) -> None:
        self._coll_seq, self._split_seq, self._dup_seq = seqs

    def _check_rank(self, r: int, wildcard_ok: bool = False) -> None:
        if self._freed:
            raise CommunicatorError(f"{self.comm_id!r} has been freed")
        if r == PROC_NULL or (wildcard_ok and r == ANY_SOURCE):
            return
        if not 0 <= r < self.size:
            raise InvalidRank(f"rank {r} outside communicator of size "
                              f"{self.size}")

    def _check_tag(self, tag: int) -> None:
        if not 0 <= tag <= MAX_USER_TAG:
            raise InvalidTag(f"send tag must be in [0, {MAX_USER_TAG}], "
                             f"got {tag}")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(self, data: Any, dest: int, tag: int = 0,
             size: Optional[int] = None):
        """Process generator: blocking standard-mode (eager) send."""
        self._check_rank(dest)
        self._check_tag(tag)
        yield from self._send_internal(data, dest, tag, size)

    def _send_internal(self, data, dest, tag, size=None):
        if dest == PROC_NULL:
            return
        # app_send rides down as pre_delay: the whole software send stack
        # (app + MPI + VNI layers) charges one merged timeout.
        yield from self.endpoint.send(self.group[dest], self.comm_id,
                                      self._rank, tag, data, size,
                                      pre_delay=self.endpoint.layers.app_send)

    def isend(self, data: Any, dest: int, tag: int = 0,
              size: Optional[int] = None) -> Request:
        """Non-blocking send; returns a :class:`Request`."""
        self._check_rank(dest)
        self._check_tag(tag)
        if dest == PROC_NULL:
            req = Request(self.endpoint.engine, "send")
            req.complete(None)
            return req
        return self.endpoint.isend(self.group[dest], self.comm_id,
                                   self._rank, tag, data, size)

    def irecv(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; returns a :class:`Request`."""
        self._check_rank(source, wildcard_ok=True)
        req = Request(self.endpoint.engine, "recv")
        if source == PROC_NULL:
            req.complete(None, Status(PROC_NULL, tag, 0))
            return req
        self.endpoint.matching.post(
            PostedRecv(comm_id=self.comm_id, source=source, tag=tag,
                       request=req))
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             with_status: bool = False):
        """Process generator: blocking receive; returns the data (or
        ``(data, status)`` with ``with_status=True``)."""
        t0 = self.endpoint.engine.now
        req = self.irecv(source=source, tag=tag)
        if not self.endpoint.polling:
            # No polling thread: the receiver itself drains the NIC.
            while not req.done:
                yield from self.endpoint.pump_blocking()
        data = yield from req.wait()
        self.endpoint.observe_recv(self.endpoint.engine.now - t0)
        yield Timeout(self.endpoint.engine, self.endpoint.layers.app_recv)
        if with_status:
            return data, req.status
        return data

    def sendrecv(self, data: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 size: Optional[int] = None):
        """Process generator: combined send+receive (deadlock-free)."""
        sreq = self.isend(data, dest, tag=sendtag, size=size)
        out = yield from self.recv(source=source, tag=recvtag)
        yield from sreq.wait()
        return out

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Process generator: block until a matching message is queued;
        returns its :class:`Status` without receiving it."""
        while True:
            st = self.iprobe(source, tag)
            if st is not None:
                return st
            if self.endpoint.polling:
                yield self.endpoint.engine.timeout(
                    self.endpoint.layers.mpi_recv)
            else:
                yield from self.endpoint.pump_blocking()

    def iprobe(self, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Optional[Status]:
        self._check_rank(source, wildcard_ok=True)
        return self.endpoint.matching.probe(self.comm_id, source, tag)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def _next_coll_tag(self) -> int:
        if self._freed:
            raise CommunicatorError(f"{self.comm_id!r} has been freed")
        self._coll_seq += 1
        return COLL_TAG_BASE - 16 * self._coll_seq

    def _vsend(self, data, comm_rank, tag, size=None):
        yield from self._send_internal(data, comm_rank, tag, size)

    def _vrecv(self, comm_rank, tag):
        out = yield from self.recv(source=comm_rank, tag=tag)
        return out

    @_timed_collective
    def bcast(self, data: Any, root: int = 0):
        """Process generator: binomial-tree broadcast; returns the data."""
        self._check_rank(root)
        tag = self._next_coll_tag()
        size, rank = self.size, self._rank
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                src = ((vrank - mask) + root) % size
                data = yield from self._vrecv(src, tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < size:
                dst = ((vrank + mask) + root) % size
                yield from self._vsend(data, dst, tag)
            mask >>= 1
        return data

    @_timed_collective
    def reduce(self, data: Any, op: ReduceOp = SUM, root: int = 0):
        """Process generator: binomial-tree reduction to ``root``.

        Returns the reduced value at the root, ``None`` elsewhere.
        """
        self._check_rank(root)
        tag = self._next_coll_tag()
        size, rank = self.size, self._rank
        vrank = (rank - root) % size
        result = data
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = ((vrank - mask) + root) % size
                yield from self._vsend(result, dst, tag)
                return None
            peer = vrank + mask
            if peer < size:
                contrib = yield from self._vrecv(((peer + root) % size), tag)
                result = apply_op(op, result, contrib)
            mask <<= 1
        return result

    @_timed_collective
    def allreduce(self, data: Any, op: ReduceOp = SUM):
        """Process generator: reduce + broadcast; all ranks get the result."""
        partial = yield from self.reduce(data, op=op, root=0)
        result = yield from self.bcast(partial, root=0)
        return result

    @_timed_collective
    def barrier(self):
        """Process generator: no rank leaves before all have entered."""
        yield from self.allreduce(0, op=SUM)

    @_timed_collective
    def gather(self, data: Any, root: int = 0):
        """Process generator: root returns the list by rank, others None."""
        self._check_rank(root)
        tag = self._next_coll_tag()
        if self._rank != root:
            yield from self._vsend(data, root, tag)
            return None
        out: List[Any] = [None] * self.size
        out[root] = data
        for _ in range(self.size - 1):
            msg, status = yield from self.recv(source=ANY_SOURCE, tag=tag,
                                               with_status=True)
            out[status.source] = msg
        return out

    @_timed_collective
    def scatter(self, data: Optional[List[Any]], root: int = 0):
        """Process generator: root distributes ``data[i]`` to rank i."""
        self._check_rank(root)
        tag = self._next_coll_tag()
        if self._rank == root:
            if data is None or len(data) != self.size:
                raise MpiError(f"scatter needs a {self.size}-element list "
                               "at the root")
            for r in range(self.size):
                if r != root:
                    yield from self._vsend(data[r], r, tag)
            return data[root]
        out = yield from self._vrecv(root, tag)
        return out

    @_timed_collective
    def allgather(self, data: Any):
        """Process generator: every rank returns the full by-rank list."""
        gathered = yield from self.gather(data, root=0)
        out = yield from self.bcast(gathered, root=0)
        return out

    @_timed_collective
    def alltoall(self, data: List[Any]):
        """Process generator: rank i's ``data[j]`` ends at rank j's slot i."""
        if len(data) != self.size:
            raise MpiError(f"alltoall needs a {self.size}-element list")
        tag = self._next_coll_tag()
        reqs = [self.endpoint.isend(self.group[r], self.comm_id, self._rank,
                                    tag, data[r])
                for r in range(self.size) if r != self._rank]
        out: List[Any] = [None] * self.size
        out[self._rank] = data[self._rank]
        for _ in range(self.size - 1):
            msg, status = yield from self.recv(source=ANY_SOURCE, tag=tag,
                                               with_status=True)
            out[status.source] = msg
        for req in reqs:
            yield from req.wait()
        return out

    @_timed_collective
    def scan(self, data: Any, op: ReduceOp = SUM):
        """Process generator: inclusive prefix reduction by rank order."""
        tag = self._next_coll_tag()
        acc = data
        if self._rank > 0:
            prev = yield from self._vrecv(self._rank - 1, tag)
            acc = apply_op(op, prev, data)
        if self._rank < self.size - 1:
            yield from self._vsend(acc, self._rank + 1, tag)
        return acc

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------

    def dup(self):
        """Process generator: duplicate (synchronizing, like MPI_Comm_dup).

        All members must call it; returns the new communicator.
        """
        yield from self.barrier()
        self._dup_seq += 1
        return Communicator(self.endpoint,
                            f"{self.comm_id}.d{self._dup_seq}", self.group)

    def split(self, color: int, key: Optional[int] = None):
        """Process generator: partition by ``color``; order within a new
        communicator follows ``(key, old rank)``.  Ranks passing
        ``UNDEFINED`` get ``None``."""
        key = key if key is not None else self._rank
        triples = yield from self.allgather((color, key, self._rank))
        self._split_seq += 1
        if color == UNDEFINED:
            return None
        mine = sorted(((k, r) for c, k, r in triples if c == color))
        group = tuple(self.group[r] for _k, r in mine)
        return Communicator(self.endpoint,
                            f"{self.comm_id}.s{self._split_seq}c{color}",
                            group)

    def free(self) -> None:
        self._freed = True

    def __repr__(self) -> str:
        return (f"<Communicator {self.comm_id!r} rank {self._rank}/"
                f"{self.size}>")
