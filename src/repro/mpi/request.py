"""Non-blocking operation handles (MPI_Request)."""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.errors import MpiError
from repro.mpi.status import Status
from repro.sim.events import Event


class Request:
    """Handle for a pending isend/irecv.

    ``yield from req.wait()`` blocks until completion and returns the
    received data (receives) or ``None`` (sends); ``req.test()`` polls.
    """

    def __init__(self, engine, kind: str):
        self.engine = engine
        self.kind = kind                     # "send" | "recv"
        self.event: Event = Event(engine, name=f"req:{kind}")
        self._status: Optional[Status] = None
        self._data: Any = None
        self.cancelled = False

    # -- completion (called by the engine/matching layer) -------------------

    def complete(self, data: Any = None, status: Optional[Status] = None):
        if self.event.triggered:
            raise MpiError("request completed twice")
        self._data = data
        self._status = status
        self.event.succeed((data, status))

    def fail(self, exc: BaseException) -> None:
        if not self.event.triggered:
            self.event.fail(exc)

    # -- user side -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def status(self) -> Optional[Status]:
        return self._status

    def wait(self):
        """Process generator: block until complete; returns the data."""
        if not self.event.processed:
            yield self.event
        data, _status = self.event.value
        return data

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion check: ``(done, data_or_None)``."""
        if self.event.triggered:
            return True, self._data
        return False, None

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<Request {self.kind} {state}>"


def waitall(engine, requests):
    """Process generator: wait for every request; returns their data list."""
    out = []
    for req in requests:
        data = yield from req.wait()
        out.append(data)
    return out


def waitany(engine, requests):
    """Process generator: wait until one request completes.

    Returns ``(index, data)`` of the first completed request (by position
    for already-completed ones).
    """
    if not requests:
        raise MpiError("waitany on empty request list")
    while True:
        for i, req in enumerate(requests):
            if req.done:
                data = yield from req.wait()
                return i, data
        yield engine.any_of([r.event for r in requests])
