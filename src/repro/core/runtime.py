"""One application process (Figure 1 of the paper).

Assembles the five components inside every Starfish application process —
group handler (the daemon link), application module (the user's
:class:`~repro.core.program.StarfishProgram`), checkpoint/restart module
(a :mod:`repro.ckpt.protocols` instance), MPI module, and VNI — around an
object bus, plus the runtime's own scheduler driving the program's steps.

Data messages use the fast path (program → MPI module → VNI); everything
else (C/R, coordination, membership, configuration) goes through the bus
and the daemon, as in the paper.

Execution model and its guarantees are documented in
:mod:`repro.core.program`; the key mechanism here is the *safe point*
between steps, where pauses (checkpoints, suspension) and view-change
upcalls are honoured, and the *step abort*: a step caught in a view change
that removed ranks is interrupted and re-executed on the new world.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.bus import (CheckpointEvent, ConfigEvent, CoordinationEvent,
                       MembershipEvent, ObjectBus, ShutdownEvent)
from repro.calibration import RESTART_BASE
from repro.ckpt import make_checkpointer
from repro.ckpt.protocols import PROTOCOLS, make_protocol
from repro.ckpt.protocols.base import CrContext
from repro.core.program import ProgramContext, ViewInfo
from repro.errors import CheckpointError, Interrupt, MpiError
from repro.mpi import MpiApi, MpiEndpoint
from repro.mpi.api import RuntimeServices
from repro.obs.registry import get_registry
from repro.sim.events import _PENDING, Event


class _StepAborted(Exception):
    """Internal: the current step was cancelled by a view change."""


def _race(engine, a: Event, b: Event) -> Event:
    """A lean two-way ``AnyOf``: fires when either event is processed.

    The scheduler races every step event against the disturbance event, so
    this runs once per awaited event of every step; the general
    :class:`~repro.sim.events.AnyOf` machinery (evaluate closure, fired
    set, value dict) costs real time there and its value is never used —
    the caller inspects the constituents directly.  Failure semantics
    match ``AnyOf``: the first processed event wins; a losing failure is
    defused.
    """
    ev = Event(engine)

    def _on(winner: Event) -> None:
        if ev._value is _PENDING:
            if winner._ok:
                ev.succeed()
            else:
                winner._defused = True
                ev.fail(winner._value)
        elif not winner._ok:
            winner._defused = True

    cbs = a.callbacks
    if cbs is None:
        _on(a)
    else:
        cbs.append(_on)
    cbs = b.callbacks
    if cbs is None:
        _on(b)
    else:
        cbs.append(_on)
    return ev


class AppProcess:
    """One rank of one application, hosted on one node."""

    def __init__(self, daemon, record, rank: int, restore: Optional[dict],
                 addressbook: Dict[int, Tuple[str, str]],
                 replica: int = 0):
        self.daemon = daemon
        self.engine = daemon.engine
        self.node = daemon.node
        self.record = record
        self.rank = rank
        #: Copy index under active replication (0 = primary).  Backups run
        #: the identical program but own no address and report no result
        #: until :meth:`promote` makes them the rank's primary.
        self.replica = replica
        self.restore_info = restore
        self.was_restored = False
        self.app_log: List[Tuple[float, int, str]] = []

        # --- Figure 1 components -------------------------------------
        self.bus = ObjectBus(self.engine,
                             name=f"{record.app_id}:{rank}")
        self.endpoint = MpiEndpoint(
            self.engine, self.node, app_id=record.app_id, world_rank=rank,
            addressbook=addressbook, transport=record.transport,
            polling=record.polling, register=replica == 0)
        self.services = _Services(self)
        world = tuple(sorted(record.placement))
        self.mpi = MpiApi(self.endpoint, nprocs=len(world),
                          services=self.services, world_group=world,
                          world_version=record.world_version)
        self.program = record.program()
        self.ctx = ProgramContext(self)
        self.protocol = None
        if record.ckpt_protocol is not None:
            # Each protocol class declares which constructor kwargs it
            # derives from the app record (interval, logging flags, ...).
            cls = PROTOCOLS.get(record.ckpt_protocol)
            kwargs = cls.runtime_kwargs(record) if cls is not None else {}
            self.protocol = make_protocol(record.ckpt_protocol, **kwargs)
        self.checkpointer = make_checkpointer(record.ckpt_level)

        # --- scheduler state ---------------------------------------------
        self.done = Event(self.engine, name=f"app:{record.app_id}:{rank}")
        self._proc = None
        #: Completed (committed-to-state) steps; snapshots record it and
        #: coordinated pauses target a common value of it across ranks.
        self.steps_completed = 0
        self._pause_req = 0
        self._pause_target = 0
        self._pause_waiters: List[Event] = []
        self._at_safe_point = False
        #: True while the runtime is suspended waiting for one of the
        #: step's own events (the step cannot send while we wait).
        self._step_waiting = False
        #: >0 while the program itself is blocked awaiting a checkpoint
        #: commit (mpi.checkpoint()): that wait is itself a safe point.
        self._ckpt_blocked = 0
        #: Last step-boundary MPI state (message-logging protocols only):
        #: channel counters, unexpected queue, and communicator sequences
        #: captured at the commit instant, where they are mutually
        #: consistent with the committed program state.  A self-paced
        #: pause can freeze the rank *mid*-step ("de-facto frozen"), so
        #: pause-time counters may already include the uncommitted step's
        #: traffic — unusable for solo replay, which re-executes from the
        #: step boundary.
        self._boundary_state: Optional[dict] = None
        #: Accumulated simulated time the application was actually frozen
        #: (pause acknowledged -> resumed); the protocol-comparison bench
        #: reports this as "blocked time".
        self.paused_accum = 0.0
        self._pause_started: Optional[float] = None
        self._resume_evt: Optional[Event] = None
        self._pending_view: Optional[ViewInfo] = None
        self._disturb: Optional[Event] = None
        self._spawn_waiters: List[Tuple[int, Event]] = []
        self._tickers: List = []
        # Per-process series; a restarted rank is a new AppProcess, so the
        # series reset here to keep the seed's fresh-instance semantics.
        reg = get_registry(self.engine)
        # Backup copies get their own series (rank "1r2" = rank 1, copy
        # 2): sharing the primary's label would reset and double-count it.
        rank_label = f"{rank}r{replica}" if replica else str(rank)
        labels = dict(app=record.app_id, rank=rank_label)
        self._m_steps = reg.counter("app.steps", **labels,
                                    help="committed program steps")
        self._m_aborted = reg.counter(
            "app.aborted_steps", **labels,
            help="steps rolled back by a view change mid-step")
        self._m_views = reg.counter("app.views", **labels,
                                    help="view changes applied")
        for m in (self._m_steps, self._m_aborted, self._m_views):
            m.reset()

        self.bus.subscribe(ShutdownEvent, self._on_shutdown_event)

    @property
    def stats(self) -> Dict[str, int]:
        """Legacy counter view (read side of the registry instruments)."""
        return {"steps": int(self._m_steps.value),
                "aborted_steps": int(self._m_aborted.value),
                "views": int(self._m_views.value)}

    # ------------------------------------------------------------------
    # handle protocol (what the daemon drives)
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.bus.start(self.node)
        if self.protocol is not None:
            self.protocol.start(_CrContextImpl(self))
            # The protocol's WaveScheduler decides whether this rank hosts
            # a runtime-side checkpoint ticker (coordinated protocols: the
            # lowest rank only; self-paced ones run their own).
            ticker = self.protocol.scheduler.runtime_ticker(self)
            if ticker is not None:
                self._tickers.append(self.node.spawn(
                    ticker, name=f"ckpt-tick:{self.rank}"))
        self._proc = self.node.spawn(
            self._run(), name=f"app:{self.record.app_id}:{self.rank}")

    def kill(self, reason: str) -> None:
        if not self.done.triggered:
            self.done.succeed(("killed", reason))
        for proc in (self._proc, *self._tickers):
            if proc is not None and proc.is_alive:
                proc.interrupt(reason)
        if self.protocol is not None:
            self.protocol.stop()
        self.bus.stop()
        self.endpoint.close()

    def suspend(self) -> None:
        self._pause_req += 1

    def resume(self) -> None:
        self._release_pause()

    def request_user_checkpoint(self) -> None:
        if self.protocol is None:
            return
        ev = self.protocol.request_checkpoint()
        del ev  # fire and forget; commit is observable in the store

    def promote(self) -> None:
        """Failover upcall (active replication): this backup copy is now
        the rank's primary.  It owns the rank's address from here on; if
        it already finished (its watcher reported nothing while it was a
        backup), the held result is reported now."""
        if self.replica == 0:
            return
        self.replica = 0
        self.endpoint.addressbook[self.rank] = (self.node.node_id,
                                               self.endpoint.port)
        if self.protocol is not None and \
                hasattr(self.protocol, "on_promoted"):
            self.protocol.on_promoted()
        if self.done.triggered:
            kind, value = self.done.value
            if kind == "ok":
                self.daemon.gm.cast(("app-rank-done", self.record.app_id,
                                     self.rank, value))

    def deliver_cr(self, payload, src_rank: int) -> None:
        self.bus.post(CheckpointEvent(op="message", source=src_rank,
                                      payload=payload))
        if self.protocol is not None:
            self.protocol.deliver(payload, src_rank)

    def deliver_coordination(self, payload, src_rank: int) -> None:
        self.bus.post(CoordinationEvent(source=src_rank, payload=payload))
        self.program.on_coordination(self.ctx, src_rank, payload)

    def deliver_config(self, key: str, value) -> None:
        self.bus.post(ConfigEvent(key=key, value=value))

    def deliver_membership(self, world_ranks: Tuple[int, ...],
                           world_version: int,
                           placement: Dict[int, str]) -> None:
        if world_version <= self.mpi.world_version:
            return
        old = self.mpi.world.group
        if tuple(world_ranks) == old:
            return
        info = ViewInfo(old_world=old, new_world=tuple(world_ranks),
                        my_old_rank=(old.index(self.rank)
                                     if self.rank in old else None),
                        world_version=world_version)
        self._pending_view = info
        self.bus.post(MembershipEvent(members=info.new_world,
                                      joined=info.joined, left=info.lost))
        # Wake spawn() callers as soon as the grown world is known.
        for want, ev in self._spawn_waiters[:]:
            if len(info.new_world) >= want and not ev.triggered:
                ev.succeed(len(info.new_world))
                self._spawn_waiters.remove((want, ev))
        # Any world change invalidates in-flight communication (the old
        # communicator is retired): abort the step; the redo runs on the
        # new world.  A rank blocked in an old-world receive would
        # otherwise never reach the safe point that refreshes its world.
        if self._disturb is not None and not self._disturb.triggered:
            self._disturb.succeed("view-change")
        # The C/R module needs the fresh membership NOW, not at the next
        # safe point: a coordinated wave waiting on a lost peer holds the
        # app paused, which is exactly what prevents the safe point.
        if self.protocol is not None:
            self.protocol.on_membership_change(tuple(world_ranks))

    # ------------------------------------------------------------------
    # the scheduler (main loop)
    # ------------------------------------------------------------------

    def _run(self):
        try:
            yield from self._wait_world_up()
            if self.restore_info is not None:
                yield from self._restore()
            else:
                self.program.setup(self.ctx)
            # Step 0 boundary (or, after a solo restore, the restored
            # boundary: replayed-but-unconsumed messages are in the
            # unexpected queue and counted).
            self._capture_boundary()
            if self.record.world_version > 0:
                # This process enters a world that has already changed
                # (spawned into a grown app, or respawned by a restart):
                # run the view upcall so any program-level resynchron-
                # ization collectives include this rank too.
                yield from self._apply_view(ViewInfo(
                    old_world=(), new_world=self.mpi.world.group,
                    my_old_rank=None,
                    world_version=self.record.world_version))
            while True:
                yield from self._safe_point()
                if self.program.is_done(self.ctx):
                    break
                yield from self._one_step()
            result = self.program.finalize(self.ctx)
            if result is not None and hasattr(result, "__next__"):
                result = yield from result
            if not self.done.triggered:
                self.done.succeed(("ok", result))
        except Interrupt:
            if not self.done.triggered:
                self.done.succeed(("killed", "interrupted"))
        except Exception as exc:
            if not self.done.triggered:
                self.done.succeed(("error", exc))
        finally:
            self._cleanup()

    def _wait_world_up(self):
        """MPI_Init-style synchronization: wait until every rank of the
        current world has registered its network address (spawning is
        staggered across daemons).

        An entry must match the rank's *current* placement: after a
        restart the book still holds the previous incarnation's address
        (possibly a dead node), and a fast-restoring rank must not race
        ahead and send into the void.
        """
        book = self.endpoint.addressbook
        placement = self.record.placement
        while any(r not in book
                  or (r in placement and book[r][0] != placement[r])
                  for r in self.mpi.world.group):
            yield self.engine.timeout(0.002)

    def _cleanup(self) -> None:
        """Wind down after the program finished (NOT after a kill).

        The C/R module and the endpoint deliberately stay alive: a rank
        that finished early must keep participating in checkpoints (pause
        requests auto-ack — final state is trivially a safe point), or
        slower peers would hang waiting for its protocol messages.  The
        daemon kills everything for real when the application ends.
        """
        self._at_safe_point = True
        self._ack_pause_waiters()
        for t in self._tickers:
            if t.is_alive:
                t.interrupt("app-done")
        self.bus.stop()

    def _one_step(self):
        """Drive one program step, event by event.

        The runtime (not a detached process) advances the step generator so
        that *between* any two of the step's events it can: abort the step
        on a view shrink, and freeze the rank for a pause whose step target
        has been reached (no message can escape while frozen — the step's
        side effects only happen inside ``gen.send``).
        """
        step = self.program.step(self.ctx)
        if step is None or not hasattr(step, "__next__"):
            self._commit_step()
            return
        self._disturb = Event(self.engine, name=f"disturb:{self.rank}")
        send_val = None
        throw_exc: Optional[BaseException] = None
        aborted = False
        while True:
            # Freeze here when a pause targeting our progress is active
            # (this rank ran ahead of the checkpoint boundary): no step
            # side effects can happen while we hold the generator.
            yield from self._mid_step_gate()
            try:
                if throw_exc is not None:
                    ev = step.throw(throw_exc)
                else:
                    ev = step.send(send_val)
            except StopIteration:
                break
            except _StepAborted:
                aborted = True
                break
            throw_exc, send_val = None, None
            self._step_waiting = True
            try:
                yield _race(self.engine, ev, self._disturb)
            except Interrupt:
                step.close()
                raise
            except Exception as exc:     # the awaited event failed
                throw_exc = exc
                continue
            finally:
                self._step_waiting = False
            if not ev.processed:
                # The disturbance won the race.  (``processed``, not
                # ``triggered``: a Timeout is born triggered but has not
                # *happened* until the engine processes it — judging by
                # ``triggered`` would time-warp an interrupted sleep.)
                throw_exc = _StepAborted()
                continue
            if ev.ok:
                send_val = ev.value
            else:
                ev.defuse()
                throw_exc = ev.value
                continue
        self._disturb = None
        if aborted:
            self._m_aborted.inc()
            self.endpoint.matching.fail_all_posted(
                MpiError("step aborted by view change"))
            return
        self._commit_step()

    def _commit_step(self) -> None:
        self.steps_completed += 1
        self._m_steps.inc()
        self._capture_boundary()

    def _capture_boundary(self) -> None:
        """Snapshot the endpoint + communicator state at a step boundary.

        The commit instant is a consistent cut: the finished step's sends
        and consumptions are all reflected, the next step has issued
        nothing, and arrivals ingested-but-unmatched sit in the unexpected
        queue snapshotted with the very counters that counted them.  Only
        protocols that restore channel state solo (message logging) ask
        for this; for everyone else it is skipped bookkeeping.
        """
        if self.protocol is None or not getattr(
                self.protocol, "wants_boundary_capture", False):
            return
        self._boundary_state = {
            **self.endpoint.export_state(),
            "comm_seqs": self.mpi.export_comm_state(),
        }

    def _pause_eligible(self) -> bool:
        return (self._pause_req > 0
                and self.steps_completed >= self._pause_target)

    def _ack_pause_waiters(self) -> None:
        if self._pause_started is None:
            self._pause_started = self.engine.now
        for ev in self._pause_waiters:
            if not ev.triggered:
                ev.succeed()
        self._pause_waiters = []

    def _mid_step_gate(self):
        while self._pause_eligible():
            self._at_safe_point = True
            self._ack_pause_waiters()
            self._resume_evt = Event(self.engine, name=f"resume:{self.rank}")
            yield self._resume_evt
            self._at_safe_point = False

    def request_pause(self, target_step: Optional[int]) -> Optional[Event]:
        """Register a pause; returns an event to wait on (or ``None`` if
        the rank counts as paused right away)."""
        self._pause_req += 1
        if target_step is not None and target_step > self._pause_target:
            self._pause_target = target_step
        if self._at_safe_point or self._ckpt_blocked > 0:
            if self._pause_started is None:
                self._pause_started = self.engine.now
            return None
        if self._step_waiting and self._pause_eligible():
            # Blocked mid-step beyond the target: de-facto frozen (the
            # mid-step gate will hold it if its event completes).
            if self._pause_started is None:
                self._pause_started = self.engine.now
            return None
        ev = Event(self.engine, name=f"pause:{self.rank}")
        self._pause_waiters.append(ev)
        return ev

    def _safe_point(self):
        while True:
            if self._pending_view is not None and self._pause_req == 0:
                info = self._pending_view
                self._pending_view = None
                yield from self._apply_view(info)
                continue
            if self._pause_eligible():
                self._at_safe_point = True
                self._ack_pause_waiters()
                self._resume_evt = Event(self.engine,
                                         name=f"resume:{self.rank}")
                yield self._resume_evt
                self._at_safe_point = False
                continue
            return

    def _apply_view(self, info: ViewInfo):
        self._m_views.inc()
        if info.new_world != self.mpi.world.group:
            self.mpi._refresh_world(info.new_world, info.world_version)
        self.mpi.world_version = info.world_version
        handler = self.program.on_view_change(self.ctx, info)
        if handler is not None and hasattr(handler, "__next__"):
            yield from handler
        return
        yield  # pragma: no cover

    def _release_pause(self) -> None:
        if self._pause_req > 0:
            self._pause_req -= 1
        if self._pause_req == 0:
            self._pause_target = 0
            if self._pause_started is not None:
                self.paused_accum += self.engine.now - self._pause_started
                self._pause_started = None
            if self._resume_evt is not None \
                    and not self._resume_evt.triggered:
                self._resume_evt.succeed()
            # No pause outstanding: anyone still waiting for one to take
            # hold (a checkpoint wave aborted before the rank stopped)
            # would otherwise wait for an ack that can no longer come.
            for ev in self._pause_waiters:
                if not ev.triggered:
                    ev.succeed()
            self._pause_waiters = []

    def _on_shutdown_event(self, event: ShutdownEvent) -> None:
        self.kill(event.reason or "shutdown")

    def _ckpt_ticker(self):
        try:
            while True:
                yield self.engine.timeout(self.record.ckpt_interval)
                ev = self.protocol.request_checkpoint()
                yield ev
        except Interrupt:
            return
        except Exception:
            return

    # ------------------------------------------------------------------
    # restart from a checkpoint
    # ------------------------------------------------------------------

    def _restore(self):
        info = self.restore_info
        if info["mode"] == "log-replay":
            yield from self._restore_log_replay(info)
            return
        version: Optional[int]
        if info["mode"] == "coordinated":
            version = info["version"]
        else:
            version = info["line"].get(self.rank, -1)
            if version is not None and version < 0:
                version = None
        if version is None:
            # Nothing stored for us (initial-state rollback): fresh start.
            self.program.setup(self.ctx)
            return
        record = yield from self.daemon.store.read(
            self.node, self.record.app_id, self.rank, version)
        state, convert_cost = self.checkpointer.restore(
            record.image, record.nbytes, self.node.arch)
        yield self.engine.timeout(RESTART_BASE + convert_cost)
        self.program.state = state
        self.steps_completed = record.mpi_state.get("steps_completed", 0)
        # The execution model replays from the captured step boundary, so
        # in-flight traffic captured with the snapshot (unexpected queues,
        # Chandy–Lamport channel recordings) is regenerated by the replay
        # itself — the stored copies are diagnostic, not restored.  The
        # fresh endpoint starts with empty queues and zero counters.
        self.was_restored = True
        hook = self.program.on_restart(self.ctx)
        if hook is not None and hasattr(hook, "__next__"):
            yield from hook

    def _restore_log_replay(self, info):
        """Solo restart under a message-logging protocol.

        Only this rank rolled back — the survivors kept running — so
        unlike the coordinated path the endpoint's channel counters MUST
        be restored (the peers' counters never reset), and the messages
        this incarnation consumed after its checkpoint are re-fed from
        the sender-side logs through the protocol's delivery tap.
        """
        version = info["line"].get(self.rank, -1)
        tap = self.endpoint.tap
        if version is None or version < 0:
            # No checkpoint yet: fresh start + full-log replay.  The
            # replayed messages sit in the matching engine as unexpected;
            # re-execution from step 0 consumes them in order, and its
            # re-sends are duplicate-suppressed at the survivors.
            self.program.setup(self.ctx)
        else:
            record = yield from self.daemon.store.read(
                self.node, self.record.app_id, self.rank, version)
            state, convert_cost = self.checkpointer.restore(
                record.image, record.nbytes, self.node.arch)
            yield self.engine.timeout(RESTART_BASE + convert_cost)
            self.program.state = state
            self.steps_completed = record.mpi_state.get("steps_completed", 0)
            self.endpoint.import_state(record.mpi_state)
            self.mpi.import_comm_state(record.mpi_state.get("comm_seqs", {}))
        self.was_restored = True
        if tap is not None and hasattr(tap, "replay"):
            yield from tap.replay(self.endpoint, self.daemon.store)
        hook = self.program.on_restart(self.ctx)
        if hook is not None and hasattr(hook, "__next__"):
            yield from hook

    def __repr__(self) -> str:
        return (f"<AppProcess {self.record.app_id}#{self.rank} on "
                f"{self.node.node_id}>")


class _Services(RuntimeServices):
    """Starfish extension downcalls, serviced through the daemon."""

    def __init__(self, rt: AppProcess):
        self.rt = rt

    def request_checkpoint(self):
        if self.rt.protocol is None:
            raise MpiError(
                "checkpoint() called but the application was submitted "
                "without a checkpoint protocol")
        ev = self.rt.protocol.request_checkpoint()
        # The caller blocks mid-step until the commit; that wait is a safe
        # point (the program promises its state is step-consistent here),
        # otherwise the protocol's own pause() could never be satisfied.
        self.rt._ckpt_blocked += 1
        try:
            version = yield ev
        finally:
            self.rt._ckpt_blocked -= 1
        return version

    def request_spawn(self, nprocs: int):
        if nprocs < 1:
            raise MpiError("spawn() needs nprocs >= 1")
        want = len(self.rt.mpi.world.group) + nprocs
        ev = Event(self.rt.engine, name=f"spawn-wait:{self.rt.rank}")
        self.rt._spawn_waiters.append((want, ev))
        self.rt.daemon.request_spawn(self.rt.record.app_id, nprocs)
        new_size = yield ev
        return new_size


class _CrContextImpl(CrContext):
    """The runtime side of the checkpoint-protocol interface."""

    def __init__(self, rt: AppProcess):
        self.rt = rt
        self.engine = rt.engine
        self.app_id = rt.record.app_id
        self.rank = rt.rank
        self.node = rt.node
        self.arch = rt.node.arch
        self.endpoint = rt.endpoint
        self.checkpointer = rt.checkpointer
        self.store = rt.daemon.store

    def peers(self):
        return sorted(self.rt.mpi.world.group)

    def cast(self, payload):
        self.rt.daemon.cr_cast(self.app_id, self.rank, payload)

    def pause(self, target_step=None):
        ev = self.rt.request_pause(target_step)
        if ev is not None:
            yield ev

    def resume(self):
        self.rt._release_pause()

    def snapshot_state(self):
        return self.rt.program.state

    def current_step(self) -> int:
        return self.rt.steps_completed

    def runtime_meta(self) -> dict:
        return {"steps_completed": self.rt.steps_completed}

    def notify_committed(self, version: int) -> None:
        self.rt.bus.post(CheckpointEvent(op="committed", payload=version))

    def restoring(self) -> bool:
        info = self.rt.restore_info
        return bool(info) and info.get("mode") == "log-replay"

    def replica_index(self) -> int:
        return self.rt.replica

    def comm_state(self) -> dict:
        return self.rt.mpi.export_comm_state()

    def boundary_state(self):
        return self.rt._boundary_state
