"""Application submission specs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type

from repro.core.policies import FaultPolicy
from repro.errors import DaemonError


@dataclass(frozen=True)
class CheckpointConfig:
    """How (and whether) an application is checkpointed.

    ``protocol``: ``None`` (no C/R) or any name in
    :data:`repro.ckpt.protocols.PROTOCOLS` — ``"stop-and-sync"``,
    ``"chandy-lamport"``, ``"uncoordinated"``, ``"diskless"``
    (fast-network buddy checkpointing — the paper's §7 future work),
    ``"sender-logging"`` / ``"causal-logging"`` (message logging with
    solo restart of the crashed rank).
    ``level``: ``"native"`` (homogeneous process dump) or ``"vm"``
    (portable, heterogeneous).
    ``interval``: periodic checkpointing period in simulated seconds
    (``None`` = only on explicit request).
    ``logging``: receiver-side message logging (uncoordinated only).
    ``replicas``: copies per rank under active replication
    (``"replication"`` only): 1 primary + ``replicas - 1`` backups on
    distinct nodes, with instant failover instead of rollback.
    """

    protocol: Optional[str] = None
    level: str = "vm"
    interval: Optional[float] = None
    logging: bool = False
    replicas: int = 1

    def __post_init__(self):
        from repro.ckpt.protocols import PROTOCOLS
        if self.protocol is not None and self.protocol not in PROTOCOLS:
            raise DaemonError(f"unknown C/R protocol {self.protocol!r}")
        if self.level not in ("native", "vm"):
            raise DaemonError(f"unknown checkpoint level {self.level!r}")
        if self.replicas < 1:
            raise DaemonError("replicas must be >= 1")
        if self.replicas > 1 and self.protocol != "replication":
            raise DaemonError(
                "replicas > 1 needs protocol='replication' (rank replica "
                f"groups), got protocol={self.protocol!r}")


@dataclass(frozen=True)
class AppSpec:
    """Everything a client supplies to run an application."""

    program: Type                       # a StarfishProgram subclass
    nprocs: int
    params: Dict[str, Any] = field(default_factory=dict)
    ft_policy: FaultPolicy = FaultPolicy.KILL
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    transport: str = "bip-myrinet"
    polling: bool = True
    owner: str = "local"
    #: Optional explicit placement {rank: node_id}; default is the
    #: daemons' least-loaded placement.
    placement: Optional[Dict[int, str]] = None
    #: Fleet-scheduler metadata (:mod:`repro.fleet`): the accounting
    #: tenant (``None`` = use ``owner``) and the admission priority
    #: (higher admits first; FIFO within a priority band).  Ignored by
    #: direct ``StarfishCluster.submit()`` calls.
    tenant: Optional[str] = None
    priority: int = 0

    def __post_init__(self):
        if self.nprocs < 1:
            raise DaemonError("nprocs must be >= 1")
        if self.transport not in ("bip-myrinet", "tcp-ethernet"):
            raise DaemonError(f"unknown transport {self.transport!r}")
