"""Cluster and application observability.

:class:`ClusterMetrics` snapshots everything a Starfish operator would
want on a dashboard: per-application progress and fault history, stable
storage consumption, per-fabric traffic broken down by Table 1 message
kind, and group-communication health.  It is a thin *read-side view*
over the engine's :class:`~repro.obs.registry.MetricsRegistry` (plus a
few live objects for membership/placement), so it can be sampled at any
simulated time without its own instrumentation hooks.

Example::

    metrics = ClusterMetrics(sf)
    snap = metrics.snapshot()
    print(metrics.format_report())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.daemon.registry import AppStatus


@dataclass(frozen=True)
class AppSnapshot:
    app_id: str
    status: str
    nprocs: int
    placement: Dict[int, str]
    restarts: int
    world_version: int
    done_ranks: int
    ckpt_protocol: Optional[str]
    ckpt_versions: Dict[int, List[int]]
    committed_line: Optional[int]
    steps_completed: Dict[int, int]
    aborted_steps: Dict[int, int]
    paused_seconds: Dict[int, float]


@dataclass(frozen=True)
class FabricSnapshot:
    name: str
    frames: int
    bytes: int
    dropped: int
    by_kind: Dict[str, int]


@dataclass(frozen=True)
class ClusterSnapshot:
    time: float
    nodes_up: int
    nodes_total: int
    daemons: int
    group_epoch: Optional[int]
    apps: List[AppSnapshot]
    fabrics: List[FabricSnapshot]
    store_writes: int
    store_reads: int
    store_bytes: int


class ClusterMetrics:
    """Live metrics over a :class:`~repro.core.starfish.StarfishCluster`."""

    def __init__(self, sf):
        self.sf = sf

    # ------------------------------------------------------------------

    def snapshot(self) -> ClusterSnapshot:
        sf = self.sf
        daemons = sf.live_daemons()
        apps: List[AppSnapshot] = []
        seen = set()
        for daemon in daemons:
            for record in daemon.registry.all():
                if record.app_id in seen:
                    continue
                seen.add(record.app_id)
                apps.append(self._app_snapshot(record))
        epoch = None
        if daemons and daemons[0].gm.view is not None:
            epoch = daemons[0].gm.view.epoch
        reg = sf.engine.metrics
        fabrics = [
            FabricSnapshot(
                name=f.spec.name,
                frames=int(reg.sum("net.frames_sent", fabric=f.spec.name)),
                bytes=int(reg.sum("net.bytes_sent", fabric=f.spec.name)),
                dropped=int(reg.sum("net.frames_dropped",
                                    fabric=f.spec.name)),
                by_kind={k: int(v) for k, v in
                         reg.group_by("net.frames_sent", "kind",
                                      fabric=f.spec.name).items() if v})
            for f in (sf.cluster.ethernet, sf.cluster.myrinet)]
        return ClusterSnapshot(
            time=sf.engine.now,
            nodes_up=len(sf.cluster.up_nodes()),
            nodes_total=len(sf.cluster.nodes),
            daemons=len(daemons),
            group_epoch=epoch,
            apps=apps,
            fabrics=fabrics,
            store_writes=int(reg.sum("ckpt.store.writes")),
            store_reads=int(reg.sum("ckpt.store.reads")),
            store_bytes=int(reg.sum("ckpt.store.bytes_written")))

    def _app_snapshot(self, record) -> AppSnapshot:
        sf = self.sf
        steps: Dict[int, int] = {}
        aborted: Dict[int, int] = {}
        paused: Dict[int, float] = {}
        for daemon in sf.live_daemons():
            for (aid, rank), handle in daemon.handles.items():
                if aid != record.app_id:
                    continue
                steps[rank] = handle.steps_completed
                aborted[rank] = handle.stats["aborted_steps"]
                paused[rank] = handle.paused_accum
        versions = {rank: sf.store.versions_of(record.app_id, rank)
                    for rank in sorted(record.placement)}
        return AppSnapshot(
            app_id=record.app_id, status=record.status.value,
            nprocs=len(record.placement), placement=dict(record.placement),
            restarts=record.restarts, world_version=record.world_version,
            done_ranks=len(record.done_ranks),
            ckpt_protocol=record.ckpt_protocol,
            ckpt_versions={r: v for r, v in versions.items() if v},
            committed_line=sf.store.latest_committed(record.app_id),
            steps_completed=steps, aborted_steps=aborted,
            paused_seconds=paused)

    # ------------------------------------------------------------------

    def format_report(self) -> str:
        """Human-readable multi-line report of the current snapshot."""
        snap = self.snapshot()
        lines = [
            f"Starfish cluster @ t={snap.time:.3f}s — "
            f"{snap.nodes_up}/{snap.nodes_total} nodes up, "
            f"{snap.daemons} daemons, group epoch {snap.group_epoch}",
            f"stable storage: {snap.store_writes} checkpoint writes "
            f"({snap.store_bytes / 1e6:.1f} MB), {snap.store_reads} reads",
        ]
        for fab in snap.fabrics:
            kinds = ", ".join(f"{k}={v}" for k, v in
                              sorted(fab.by_kind.items())) or "-"
            lines.append(f"{fab.name}: {fab.frames} frames "
                         f"({fab.bytes / 1e6:.2f} MB, "
                         f"{fab.dropped} dropped) [{kinds}]")
        for app in snap.apps:
            lines.append(
                f"app {app.app_id}: {app.status}, "
                f"{app.nprocs} ranks, restarts={app.restarts}, "
                f"world v{app.world_version}, "
                f"line={app.committed_line}, "
                f"protocol={app.ckpt_protocol or '-'}")
            if app.steps_completed:
                steps = ", ".join(f"r{r}:{n}" for r, n in
                                  sorted(app.steps_completed.items()))
                lines.append(f"  steps [{steps}]")
        return "\n".join(lines)
