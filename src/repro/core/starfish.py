"""The Starfish system facade.

:class:`StarfishCluster` is the top of the public API: it builds a
simulated cluster, boots a Starfish daemon on every node, joins them into
the Starfish group, and exposes submission, client sessions, fault
injection, and result collection.

Typical use::

    sf = StarfishCluster.build(spec=ClusterSpec(nodes=4))
    spec = AppSpec(program=MonteCarloPi, nprocs=4,
                   params={"shots": 100_000},
                   ft_policy=FaultPolicy.RESTART,
                   checkpoint=CheckpointConfig(protocol="stop-and-sync"))
    handle = sf.submit(spec)
    FaultPlan().at(5.0, CrashNode("n2")).apply_to(sf)   # fault injection
    result = sf.run_to_completion(handle)
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.ckpt import CheckpointStore
from repro.cluster import Architecture, Cluster, ClusterSpec
from repro.cluster.spec import _UNSET
from repro.core.appspec import AppSpec
from repro.core.policies import FaultPolicy
from repro.core.runtime import AppProcess
from repro.daemon import AppStatus, Client, StarfishDaemon
from repro.daemon.registry import AppRecord
from repro.errors import (ConvergenceTimeout, DaemonError, MajorityLost,
                          UnknownApplication)
from repro.gcs import GcsConfig

_app_ids = itertools.count(1)


class AppHandle:
    """Client-side handle on a submitted application."""

    def __init__(self, sf: "StarfishCluster", app_id: str):
        self.sf = sf
        self.app_id = app_id

    def _record(self) -> AppRecord:
        for daemon in self.sf.live_daemons():
            record = daemon.registry.maybe(self.app_id)
            if record is not None:
                return record
        raise UnknownApplication(self.app_id)

    @property
    def status(self) -> AppStatus:
        return self._record().status

    @property
    def finished(self) -> bool:
        return self._record().finished

    @property
    def restarts(self) -> int:
        return self._record().restarts

    def results(self) -> Dict[int, Any]:
        """Per-rank results reported so far."""
        return dict(self._record().results)

    def result(self, rank: int = 0) -> Any:
        return self._record().results.get(rank)

    def __repr__(self) -> str:
        try:
            status = self.status.value
        except UnknownApplication:
            status = "unknown"
        return f"<AppHandle {self.app_id} {status}>"


class StarfishCluster:
    """A running Starfish system over a simulated cluster."""

    def __init__(self, cluster: Cluster,
                 gcs_config: Optional[GcsConfig] = None,
                 users: Optional[Dict[str, Tuple[str, bool]]] = None):
        self.cluster = cluster
        self.engine = cluster.engine
        self.gcs_config = gcs_config or GcsConfig()
        self.users = users
        self.store = self._build_store(cluster)
        self.daemons: Dict[str, StarfishDaemon] = {}
        self.program_registry: Dict[str, Any] = {}
        #: Per-application MPI address books (rank -> (node, port)).  A
        #: shared object per app: the real system pushes address updates as
        #: configuration messages; the shared dict models that channel.
        self.books: Dict[str, Dict[int, Tuple[str, str]]] = {}
        self._register_builtin_programs()
        for node_id in sorted(cluster.nodes):
            self._boot_daemon(node_id)

    def _build_store(self, cluster: Cluster) -> CheckpointStore:
        """The checkpoint store, per ``ClusterSpec``.

        ``store_tiers`` builds the multi-level :class:`~repro.store.
        TieredStore` (L1 memory / L2 disk / L3 fabric, delta capture);
        otherwise ``replication_factor`` picks the k-way
        :class:`~repro.store.ReplicatedStore`; otherwise the paper's
        idealized single-copy stable storage (and the determinism
        goldens byte-identical).  Replicating stores with ``k >= 2``
        get the failure-driven repair daemon.
        """
        spec = getattr(cluster, "spec", None)
        k = spec.replication_factor if spec is not None else None
        tiers = spec.store_tiers if spec is not None else None
        if tiers is not None:
            from repro.store import RepairService, TieredStore
            store = TieredStore(self.engine, cluster, tiers=tiers,
                                k=k if k is not None else 2,
                                policy=spec.placement_policy,
                                delta_depth=spec.delta_depth,
                                promotion=spec.tier_policy)
            if store.k > 1:
                store.repair = RepairService(
                    self.engine, cluster, store,
                    bandwidth=spec.repair_bandwidth)
            cluster.watchers.append(store.on_membership)
            return store
        if k is not None:
            from repro.store import RepairService, ReplicatedStore
            store = ReplicatedStore(self.engine, cluster, k=k,
                                    policy=spec.placement_policy)
            if k > 1:
                store.repair = RepairService(
                    self.engine, cluster, store,
                    bandwidth=spec.repair_bandwidth)
            cluster.watchers.append(store.on_membership)
            return store
        store = CheckpointStore(self.engine)
        # Volatile (diskless) copies stop counting the instant their
        # holder goes down — availability checks never race the watcher.
        from repro.cluster.node import NodeState

        def _memory_live(node_id: str) -> bool:
            node = cluster.nodes.get(node_id)
            return node is not None and node.state is not NodeState.DOWN

        store.node_liveness = _memory_live
        # Diskless checkpoints live in node memory: a crash destroys the
        # copies that node was holding for its buddies (the base store's
        # on_membership does exactly that and nothing more).
        cluster.watchers.append(store.on_membership)
        return store

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, nodes=_UNSET, seed=_UNSET, archs=_UNSET, gcs_config=_UNSET,
              settle=_UNSET, trace=_UNSET, telemetry=_UNSET,
              *, spec: Optional[ClusterSpec] = None) -> "StarfishCluster":
        """Create a cluster, boot all daemons, and (by default) run the
        simulation until the Starfish group has converged.  Prefer passing
        one ``spec=ClusterSpec(...)``; the keyword args funnel into one."""
        spec = ClusterSpec.coalesce(spec=spec, nodes=nodes, seed=seed,
                                    archs=archs, gcs_config=gcs_config,
                                    settle=settle,
                                    trace=trace, telemetry=telemetry)
        cluster = Cluster.build(spec=spec)
        sf = cls(cluster, gcs_config=spec.gcs_config, users=spec.users)
        if spec.settle:
            sf.settle()
        return sf

    def _register_builtin_programs(self) -> None:
        from repro import apps
        for name in apps.PROGRAMS:
            self.program_registry[name] = getattr(apps, apps.PROGRAMS[name])

    def register_program(self, name: str, program) -> None:
        """Make a program class available to ASCII ``SUBMIT`` commands."""
        self.program_registry[name] = program

    def _boot_daemon(self, node_id: str) -> StarfishDaemon:
        node = self.cluster.node(node_id)
        daemon = StarfishDaemon(
            self.engine, node, self.cluster, self.store,
            process_factory=self._make_process,
            program_registry=self.program_registry,
            gcs_config=self.gcs_config, users=self.users,
            node_provisioner=self.add_node)
        contact = None
        for other in self.live_daemons():
            if other is not daemon:
                contact = other.endpoint
                break
        daemon.start(contact=contact)
        self.daemons[node_id] = daemon
        return daemon

    def _make_process(self, daemon: StarfishDaemon, record: AppRecord,
                      rank: int, restore, replica: int = 0) -> AppProcess:
        book = self.books.setdefault(record.app_id, {})
        return AppProcess(daemon, record, rank, restore, book,
                          replica=replica)

    # ------------------------------------------------------------------
    # daemons & settling
    # ------------------------------------------------------------------

    def live_daemons(self) -> List[StarfishDaemon]:
        from repro.cluster.node import NodeState
        out = []
        for nid, daemon in sorted(self.daemons.items()):
            node = self.cluster.nodes.get(nid)
            if node is not None and node.state in (NodeState.UP,
                                                   NodeState.DISABLED):
                out.append(daemon)
        return out

    def any_daemon(self) -> StarfishDaemon:
        daemons = self.live_daemons()
        if not daemons:
            raise MajorityLost(
                f"no live daemons (all {len(self.daemons)} are down)")
        return daemons[0]

    def settle(self, timeout: float = 30.0) -> None:
        """Run until every live daemon shares one full view.

        Raises :class:`~repro.errors.MajorityLost` immediately if no
        daemon is left to converge, and
        :class:`~repro.errors.ConvergenceTimeout` (both are
        :class:`~repro.errors.StarfishError` subclasses) on the deadline —
        the caller gets a typed error, never a silent hang."""
        deadline = self.engine.now + timeout
        while self.engine.now < deadline:
            live = self.live_daemons()
            if not live:
                raise MajorityLost(
                    f"no live daemons (all {len(self.daemons)} are down); "
                    "the group can never converge")
            views = {tuple(d.gm.view.members) if d.gm.view else None
                     for d in live}
            if len(views) == 1 and None not in views:
                members = views.pop()
                if {m.node for m in members} == {d.node.node_id
                                                 for d in live}:
                    return
            self.engine.run(until=self.engine.now + 0.25)
        raise ConvergenceTimeout(
            f"Starfish group failed to converge within {timeout}s "
            f"({len(self.live_daemons())} live daemons)")

    # ------------------------------------------------------------------
    # submission & running
    # ------------------------------------------------------------------

    def submit(self, spec: AppSpec, app_id: Optional[str] = None,
               via_node: Optional[str] = None) -> AppHandle:
        """Submit an application through (any) daemon."""
        app_id = app_id or f"app{next(_app_ids)}"
        daemon = (self.daemons[via_node] if via_node is not None
                  else self.any_daemon())
        daemon.submit(
            app_id, spec.program, spec.nprocs, owner=spec.owner,
            params={**spec.params,
                    "_ckpt_logging": spec.checkpoint.logging},
            ft_policy=FaultPolicy.of(spec.ft_policy).value,
            ckpt_protocol=spec.checkpoint.protocol,
            ckpt_level=spec.checkpoint.level,
            ckpt_interval=spec.checkpoint.interval,
            transport=spec.transport, polling=spec.polling,
            placement=spec.placement, replicas=spec.checkpoint.replicas)
        return AppHandle(self, app_id)

    def run_to_completion(self, handle: AppHandle,
                          timeout: float = 600.0) -> Dict[int, Any]:
        """Advance the simulation until the application finishes;
        returns its per-rank results."""
        deadline = self.engine.now + timeout
        while self.engine.now < deadline:
            if not self.live_daemons():
                raise MajorityLost(
                    f"all {len(self.daemons)} daemons are dead; app "
                    f"{handle.app_id!r} can never finish")
            try:
                if handle.finished:
                    break
            except UnknownApplication:
                pass
            self.engine.run(until=min(deadline, self.engine.now + 0.5))
        record = handle._record()
        if record.status is not AppStatus.DONE:
            raise DaemonError(
                f"app {handle.app_id} ended as {record.status.value}")
        return dict(record.results)

    def run(self, spec: AppSpec, timeout: float = 600.0) -> Dict[int, Any]:
        """Submit and run to completion (the quickstart one-liner)."""
        return self.run_to_completion(self.submit(spec), timeout=timeout)

    # ------------------------------------------------------------------
    # clients
    # ------------------------------------------------------------------

    def client(self, from_node: Optional[str] = None,
               to_node: Optional[str] = None) -> Client:
        """A client session object (drive it from a simulated process)."""
        src = self.cluster.node(from_node) if from_node \
            else self.cluster.node(self.any_daemon().node.node_id)
        dst = to_node or self.any_daemon().node.node_id
        return Client(self.engine, src, dst)

    # ------------------------------------------------------------------
    # dynamics & fault injection
    # ------------------------------------------------------------------

    def add_node(self, node_id: str,
                 arch: Optional[Architecture] = None) -> StarfishDaemon:
        """Provision a new workstation and boot a daemon on it."""
        from repro.cluster.arch import DEFAULT_ARCH
        self.cluster.add_node(node_id, arch=arch or DEFAULT_ARCH)
        return self._boot_daemon(node_id)

    @property
    def faults(self):
        """The system's :class:`~repro.faults.plan.FaultInjector` (shared
        with the underlying cluster, bound to this Starfish system so
        actions can resolve app placement and reboot daemons)."""
        injector = self.cluster.faults
        injector.starfish = self
        return injector

    def crash_node(self, node_id: str) -> None:
        self.cluster.crash_node(node_id)

    def recover_node(self, node_id: str) -> StarfishDaemon:
        """Bring a crashed node back and boot a fresh daemon on it."""
        self.cluster.recover_node(node_id)
        return self._boot_daemon(node_id)

    def migrate(self, handle: AppHandle, rank: int, target_node: str) -> None:
        """Move one rank to ``target_node`` by rolling the application back
        to its last recovery line with an updated placement (paper §3.2.1:
        C/R doubles as process migration — e.g. when "a better node
        becomes available").

        Every precondition is validated here, up-front: a request the
        daemon layer would silently refuse (dead or unregistered target,
        unknown rank, same-node move, replicated app) raises a typed
        :class:`~repro.errors.PlacementError` instead of casting an op
        that strands the caller waiting for a migration that never runs.
        """
        from repro.cluster.node import NodeState
        from repro.errors import PlacementError
        node = self.cluster.nodes.get(target_node)
        if node is None:
            raise PlacementError(f"unknown node {target_node!r}")
        if node.state is not NodeState.UP:
            raise PlacementError(
                f"target node {target_node!r} is {node.state.value}, "
                "not up")
        record = handle._record()       # raises UnknownApplication
        if record.finished:
            raise DaemonError(f"app {handle.app_id} already finished "
                              f"({record.status.value})")
        if rank not in record.placement:
            raise PlacementError(
                f"app {handle.app_id} has no rank {rank} "
                f"(ranks: {sorted(record.placement)})")
        if record.placement.get(rank) == target_node:
            raise PlacementError(
                f"rank {rank} of {handle.app_id} already runs on "
                f"{target_node!r}")
        if record.replicas:
            raise PlacementError(
                f"app {handle.app_id} uses active replication; replicated "
                "apps do not migrate (failover moves ranks instead)")
        caster = self.any_daemon()
        view = caster.gm.view
        if view is None or view.member_on(target_node) is None:
            raise PlacementError(
                f"no daemon registered on {target_node!r} in the current "
                "Starfish group view")
        caster.gm.cast(("app-migrate", handle.app_id, rank, target_node))

    def __repr__(self) -> str:
        return (f"<StarfishCluster {len(self.live_daemons())}/"
                f"{len(self.daemons)} daemons t={self.engine.now:.6g}>")
