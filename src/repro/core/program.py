"""The Starfish programming model.

A :class:`StarfishProgram` is an MPI program structured for application-
level checkpointing (the repo's substitution for process-image dumps, see
DESIGN.md §2):

* everything worth saving lives in ``self.state`` — a plain-data dict that
  the VM-level encoder can serialize for any Table 2 machine;
* execution is a sequence of *steps* driven by the runtime; step boundaries
  are the *safe points* where checkpoints, suspension, and view-change
  upcalls happen;
* a step interrupted by a view change (a peer died mid-collective) is
  **aborted and re-executed** on the new world, so programs should mutate
  ``self.state`` only once the step's communication has succeeded
  (at-least-once step semantics).

Programs that override none of the optional hooks are conventional MPI
programs; Starfish runs them unmodified — they just don't get the dynamic
features (exactly the paper's API compatibility story).

Example::

    class MonteCarloPi(StarfishProgram):
        def setup(self, ctx):
            self.state.update(shots=ctx.params["shots"], done=0, hits=0)

        def step(self, ctx):
            n = min(1000, self.state["shots"] - self.state["done"])
            hits = ...  # local computation
            total = yield from ctx.mpi.allreduce(hits)
            self.state["hits"] += total
            self.state["done"] += n * ctx.mpi.size

        def is_done(self, ctx):
            return self.state["done"] >= self.state["shots"]

        def finalize(self, ctx):
            return 4.0 * self.state["hits"] / self.state["done"]
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


class ProgramContext:
    """What every program hook receives."""

    def __init__(self, runtime):
        self._rt = runtime

    @property
    def mpi(self):
        """The MPI facade (world communicator + Starfish extensions)."""
        return self._rt.mpi

    @property
    def rank(self) -> int:
        return self._rt.mpi.rank

    @property
    def size(self) -> int:
        return self._rt.mpi.size

    @property
    def params(self) -> Dict[str, Any]:
        """Submission parameters (read-only by convention)."""
        return self._rt.record.params

    @property
    def now(self) -> float:
        return self._rt.engine.now

    @property
    def node_id(self) -> str:
        return self._rt.node.node_id

    @property
    def app_id(self) -> str:
        return self._rt.record.app_id

    @property
    def restarted(self) -> bool:
        """True if this process was restored from a checkpoint."""
        return self._rt.was_restored

    def sleep(self, seconds: float):
        """Process generator: simulated computation / idle time."""
        yield self._rt.engine.timeout(seconds)

    def coordinate(self, payload) -> None:
        """Starfish coordination message: broadcast ``payload`` to every
        process of this application *through the daemons* (Table 1's
        "Coordination" row — reliable, totally ordered, off the fast
        path).  Delivered via :meth:`StarfishProgram.on_coordination`."""
        self._rt.daemon.coord_cast(self._rt.record.app_id,
                                   self._rt.rank, payload)

    def log(self, message: str) -> None:
        self._rt.app_log.append((self._rt.engine.now, self.rank, message))

    def __repr__(self) -> str:
        return f"<ProgramContext {self.app_id}#{self.rank}>"


class StarfishProgram:
    """Base class for applications; subclass and override the hooks."""

    def __init__(self):
        #: The checkpointable state container: plain data only (numbers,
        #: strings, lists/tuples/dicts, numpy arrays).
        self.state: Dict[str, Any] = {}

    # -- required hooks ------------------------------------------------------

    def setup(self, ctx: ProgramContext) -> None:
        """Initialize ``self.state``.  Called once on a fresh start (NOT
        after a restart — state comes from the checkpoint then)."""

    def step(self, ctx: ProgramContext):
        """One unit of work; may be a generator using ``ctx.mpi``."""
        raise NotImplementedError

    def is_done(self, ctx: ProgramContext) -> bool:
        """Checked at every safe point; True ends the run."""
        raise NotImplementedError

    def finalize(self, ctx: ProgramContext):
        """Produce this rank's result (may be a generator)."""
        return None

    # -- optional Starfish upcalls ------------------------------------------

    def on_view_change(self, ctx: ProgramContext, info: "ViewInfo"):
        """The application's world changed (ranks died or joined).

        Called at a safe point, *after* the world communicator has been
        renumbered.  Trivially parallel programs repartition here.  May be
        a generator.  Programs that don't override this simply keep the
        conventional MPI model (paper §3.2.2).
        """

    def on_restart(self, ctx: ProgramContext):
        """Called after this process was restored from a checkpoint,
        before stepping resumes.  May be a generator."""

    def on_coordination(self, ctx: ProgramContext, source: int,
                        payload) -> None:
        """A coordination message (``ctx.coordinate``) arrived from
        ``source`` (world rank).  Called immediately on delivery; must not
        block (no generator) — stash data in ``self.state`` and act on it
        in the next step."""


class ViewInfo:
    """Argument of :meth:`StarfishProgram.on_view_change`."""

    def __init__(self, old_world: Tuple[int, ...],
                 new_world: Tuple[int, ...], my_old_rank: Optional[int],
                 world_version: int):
        #: Previous world ranks (original numbering).
        self.old_world = old_world
        #: Surviving/current world ranks (original numbering).
        self.new_world = new_world
        #: This process's rank in the *old* world (None if it is new).
        self.my_old_rank = my_old_rank
        self.world_version = world_version

    @property
    def lost(self) -> Tuple[int, ...]:
        return tuple(r for r in self.old_world if r not in self.new_world)

    @property
    def joined(self) -> Tuple[int, ...]:
        return tuple(r for r in self.new_world if r not in self.old_world)

    @property
    def grew(self) -> bool:
        return bool(self.joined) and not self.lost

    def __repr__(self) -> str:
        return (f"<ViewInfo v{self.world_version} {self.old_world} -> "
                f"{self.new_world}>")
