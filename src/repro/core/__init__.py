"""Starfish core (system S13) — the paper's contribution, assembled.

* :class:`~repro.core.starfish.StarfishCluster` — boots a daemon on every
  node of a simulated cluster, joins them into the Starfish group, and
  offers submission, clients, and fault injection;
* :class:`~repro.core.program.StarfishProgram` — the application
  programming model (explicit state container + step-structured execution,
  the repo's substitution for process-image checkpointing — see DESIGN.md);
* :class:`~repro.core.runtime.AppProcess` — one application process:
  object bus, group handler, MPI module, VNI, C/R module, scheduler
  (Figure 1 of the paper);
* :class:`~repro.core.appspec.AppSpec` / ``CheckpointConfig`` — what a
  client submits;
* :mod:`repro.core.policies` — the fault-tolerance policies of §3.2.2.
"""

from repro.cluster.spec import ClusterSpec
from repro.core.appspec import AppSpec, CheckpointConfig
from repro.core.metrics import ClusterMetrics
from repro.core.policies import FaultPolicy
from repro.core.program import ProgramContext, StarfishProgram, ViewInfo
from repro.core.starfish import AppHandle, StarfishCluster

__all__ = [
    "AppHandle",
    "AppSpec",
    "CheckpointConfig",
    "ClusterMetrics",
    "ClusterSpec",
    "FaultPolicy",
    "ProgramContext",
    "StarfishCluster",
    "StarfishProgram",
    "ViewInfo",
]
