"""Fault-tolerance policies (paper §3.2.2).

Chosen per application at submission time:

* ``KILL`` — compatibility mode: any node failure kills the whole
  application, "which mimics non fault tolerant systems".  This is also
  the plain-MPI baseline of the comparison benchmarks.
* ``VIEW_NOTIFY`` — surviving processes get a view-change upcall (their
  lightweight group shrank); trivially parallel applications repartition
  their compute space and keep running without interruption.
* ``RESTART`` — Starfish restarts the application from its last recovery
  line: the committed version for coordinated protocols, the computed
  consistent cut for uncoordinated checkpointing, or from scratch if no
  checkpoint exists.  Failed ranks are re-placed on surviving nodes.
"""

from __future__ import annotations

import enum


class FaultPolicy(enum.Enum):
    KILL = "kill"
    VIEW_NOTIFY = "view-notify"
    RESTART = "restart"

    @classmethod
    def of(cls, value) -> "FaultPolicy":
        if isinstance(value, cls):
            return value
        return cls(value)
