"""Command-line interface: ``python -m repro <command>``.

A thin operational front end for trying the system without writing code:

* ``demo`` — boot a cluster, run Monte-Carlo π, print the result;
* ``status`` — boot a cluster with a workload and print the metrics report;
* ``metrics [--format text|prom]`` — same workload, raw telemetry dump;
* ``trace --chrome OUT.json`` — run traced, export Chrome trace JSON;
* ``chaos --campaign NAME`` — run a deterministic fault campaign;
* ``store [flags] [placement|replica-map|repair|tiers]`` — run a
  replicated- or tiered-store workload and dump placement, the replica
  map, repair status, or the per-tier holder/delta-chain map (no
  subcommand = every section; ``--tiers memory,disk,fabric`` builds the
  multi-level store);
* ``examples`` — list the bundled example scripts;
* ``rtt [--transport ...]`` — quick Figure-5-style latency probe.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro._version import __version__


def cmd_demo(args) -> int:
    from repro.apps import MonteCarloPi
    from repro.core import AppSpec, StarfishCluster
    sf = StarfishCluster.build(nodes=args.nodes)
    print(f"booted {args.nodes}-node Starfish cluster "
          f"(group epoch {sf.any_daemon().gm.view.epoch})")
    results = sf.run(AppSpec(program=MonteCarloPi, nprocs=args.nodes,
                             params={"shots": args.shots}))
    print(f"pi ~ {results[0]:.6f} after {args.shots} samples on "
          f"{args.nodes} ranks (simulated t={sf.engine.now:.3f}s)")
    return 0


def cmd_status(args) -> int:
    from repro.core import ClusterMetrics
    sf = _run_status_workload(args.nodes, args.seconds)
    print(ClusterMetrics(sf).format_report())
    return 0


def _run_status_workload(nodes: int, seconds: float, trace: bool = False):
    """Boot a cluster, run the ``status`` workload, return the cluster."""
    from repro.apps import ComputeSleep
    from repro.core import (AppSpec, CheckpointConfig, FaultPolicy,
                            StarfishCluster)
    sf = StarfishCluster.build(nodes=nodes, trace=trace)
    sf.submit(AppSpec(program=ComputeSleep, nprocs=nodes,
                      params={"steps": 100, "step_time": 0.05},
                      ft_policy=FaultPolicy.RESTART,
                      checkpoint=CheckpointConfig(protocol="stop-and-sync",
                                                  level="vm", interval=1.0)))
    sf.engine.run(until=sf.engine.now + seconds)
    return sf


def cmd_metrics(args) -> int:
    from repro.obs import to_prometheus, to_text
    sf = _run_status_workload(args.nodes, args.seconds)
    render = to_prometheus if args.format == "prom" else to_text
    print(render(sf.engine.metrics))
    return 0


def cmd_trace(args) -> int:
    from repro.obs import chrome_trace
    try:
        fh = open(args.chrome, "w")   # fail on a bad path *before* the run
    except OSError as exc:
        print(f"repro trace: cannot write {args.chrome}: {exc.strerror}",
              file=sys.stderr)
        return 1
    with fh:
        sf = _run_status_workload(args.nodes, args.seconds, trace=True)
        doc = chrome_trace(sf.engine.tracer,
                           event_log=sf.engine.metrics.events)
        json.dump(doc, fh)
    print(f"wrote {len(doc['traceEvents'])} trace events to {args.chrome} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def cmd_chaos(args) -> int:
    from repro.errors import CampaignError
    from repro.faults import CampaignRunner, get_campaign
    try:
        campaign = get_campaign(args.campaign)
    except CampaignError as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    fh = None
    if args.json is not None:
        try:
            fh = open(args.json, "w")  # fail on a bad path *before* the run
        except OSError as exc:
            print(f"repro chaos: cannot write {args.json}: {exc.strerror}",
                  file=sys.stderr)
            return 1
    runner = CampaignRunner(campaign, seed=args.seed, protocol=args.protocol,
                            policy=args.policy, nodes=args.nodes,
                            scheduler=args.scheduler)
    try:
        report = runner.run(raise_on_error=False)
    except Exception:
        if fh is not None:
            fh.close()
        raise
    if fh is not None:
        with fh:
            fh.write(report.to_json())
    print(report.summary())
    if not campaign.expect_completion:
        # Failure campaigns are green when they fail *cleanly* (a typed
        # StarfishError recorded in the report, not a hang or a crash).
        aborted_cleanly = report.status == "aborted" and report.data["error"]
        return 0 if aborted_cleanly else 1
    return 0 if report.ok else 1


def cmd_check(args) -> int:
    from repro.check.harness import CheckRunner
    from repro.errors import CampaignError
    from repro.faults import get_campaign
    try:
        campaigns = ([args.campaign] if args.campaign != "churn"
                     else ["store-crash-burst", "partition-flap"])
        for name in campaigns:
            get_campaign(name)
    except CampaignError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    from repro.ckpt.protocols import PROTOCOLS
    protocols = ([args.protocol] if args.protocol != "all"
                 else sorted(PROTOCOLS))
    rc = 0
    results = []
    for name in campaigns:
        for protocol in protocols:
            runner = CheckRunner(name, protocol=protocol, seed=args.seed,
                                 jitter=args.jitter, nodes=args.nodes,
                                 scheduler=args.scheduler)
            if args.replay is not None:
                outcome, identical = runner.replay(args.replay)
                print(f"check {name!r} protocol={protocol} "
                      f"perturb_seed={args.replay}: [{outcome.verdict}] "
                      f"status={outcome.status}  "
                      f"replay byte-identical: {identical}")
                if outcome.error:
                    print(f"  {outcome.error['type']}: "
                          f"{outcome.error['message']}")
                    diagnosis = outcome.error.get("diagnosis")
                    if diagnosis:
                        from repro.check.watchdog import format_diagnosis
                        print(format_diagnosis(diagnosis))
                if not identical or not outcome.ok:
                    rc = 1
                continue
            result = runner.run(seeds=range(1, args.seeds + 1))
            results.append(result)
            print(result.summary())
            if not result.ok:
                rc = 1
    if args.json is not None and args.replay is None:
        import json as _json
        payload = _json.dumps([r.to_dict() for r in results], sort_keys=True,
                              indent=2, default=repr) + "\n"
        try:
            with open(args.json, "w") as fh:
                fh.write(payload)
        except OSError as exc:
            print(f"repro check: cannot write {args.json}: {exc.strerror}",
                  file=sys.stderr)
            return 1
    return rc


def cmd_store(args) -> int:
    if getattr(args, "what", None) is not None:
        print("repro store: --what has been removed; use the "
              "placement | replica-map | repair | tiers subcommands "
              "instead", file=sys.stderr)
        return 2

    from repro.apps import ComputeSleep
    from repro.cluster.spec import ClusterSpec
    from repro.core import (AppSpec, CheckpointConfig, FaultPolicy,
                            StarfishCluster)
    from repro.faults import CrashNode, FaultPlan, RecoverNode
    tiers = tuple(args.tiers.split(",")) if args.tiers else None
    spec = ClusterSpec(nodes=args.nodes, seed=args.seed,
                       replication_factor=args.k,
                       placement_policy=args.placement,
                       store_tiers=tiers,
                       delta_depth=args.delta_depth if tiers else 0,
                       tier_policy=args.tier_policy if tiers
                       else "write-through")
    sf = StarfishCluster.build(spec=spec)
    nprocs = min(3, args.nodes)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=nprocs,
        params={"steps": 10, "step_time": 0.25, "state_bytes": 4096},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol=args.protocol, level="vm",
                                    interval=0.8)))
    if args.crash:
        plan = (FaultPlan()
                .at(1.2, CrashNode(pick="app-host", app_id=handle.app_id))
                .at(2.8, RecoverNode()))
        plan.apply_to(sf, offset=sf.engine.now)
    sf.run_to_completion(handle)
    store = sf.store
    sub = getattr(args, "store_cmd", None)
    if sub is not None:
        sections = ({"replica-map": "replicas"}.get(sub, sub),)
    else:
        sections = ("placement", "replicas", "repair")
        if tiers is not None:
            sections += ("tiers",)
    app_id = getattr(args, "app", None) or handle.app_id
    rank = getattr(args, "rank", None)
    version = getattr(args, "version", None)

    def keep(key) -> bool:
        return ((rank is None or key[1] == rank)
                and (version is None or key[2] == version))

    if "placement" in sections:
        print(f"placement policy={store.policy.name} k={store.k} "
              f"nodes={args.nodes}")
        newest = store.max_version(app_id)
        for (key, rec, _avail) in store.replica_map(app_id):
            if key[2] != (version if version is not None else newest) \
                    or not keep(key):
                continue
            primary = rec.holder_nodes[0] if rec.holder_nodes else "?"
            extra = store.policy.replicas(key, primary,
                                          store.candidates(primary),
                                          store.k)
            print(f"  rank {key[1]} v{key[2]}: primary {primary} "
                  f"-> replicas {extra or '[]'}")
    if "replicas" in sections:
        committed = store.latest_committed(app_id)
        restorable = store.latest_restorable(app_id, range(nprocs))
        print(f"replica map app={app_id} committed={committed} "
              f"restorable={restorable} deficit={store.replica_deficit()}")
        for (key, rec, avail) in store.replica_map(app_id):
            if not keep(key):
                continue
            print(f"  {key[0]} rank={key[1]} v{key[2]} "
                  f"holders={rec.holder_nodes} reachable={avail}")
    if "repair" in sections:
        if store.repair is None:
            print(f"repair: disabled (k={store.k}; no replicas to maintain)")
        else:
            status = store.repair.status()
            print("repair: " + " ".join(f"{k}={status[k]}"
                                        for k in sorted(status)))
    if "tiers" in sections:
        if not hasattr(store, "tier_map"):
            print("tiers: disabled (build with --tiers memory,disk,fabric)")
        else:
            print(f"tier map app={app_id} tiers={'+'.join(store.tiers)} "
                  f"promotion={store.promotion} "
                  f"delta_depth={store.delta_depth}")
            for (key, rec, by_tier) in store.tier_map(app_id):
                if not keep(key):
                    continue
                held = " ".join(
                    f"{t}={by_tier.get(t, [])}" for t in store.tiers)
                delta = (f" delta_of=v{rec.delta_of}"
                         f" full={rec.full_nbytes}B"
                         if rec.is_delta else " full-image")
                print(f"  rank={key[1]} v{key[2]} nbytes={rec.nbytes}"
                      f"{delta} {held}")
    return 0


def cmd_fleet_churn(args) -> int:
    from repro.errors import CampaignError, FleetOracleViolation
    from repro.fleet import report_bytes, run_fleet_churn, sweep_fleet_churn
    fh = None
    if args.json is not None:
        try:
            fh = open(args.json, "w")  # fail on a bad path *before* the run
        except OSError as exc:
            print(f"repro fleet churn: cannot write {args.json}: "
                  f"{exc.strerror}", file=sys.stderr)
            return 1
    try:
        if args.seeds > 0:
            summary = sweep_fleet_churn(nodes=args.nodes, seed=args.seed,
                                        seeds=args.seeds)
            payload = json.dumps(summary, sort_keys=True, indent=1)
            for run in summary["runs"]:
                print(f"  perturb_seed={run['perturb_seed']}: "
                      f"done={run['done']} rejected={run['rejected']} "
                      f"migrations={run['migrations']} "
                      f"victim_migrated_at={run['victim_migrated_at']} "
                      f"oracle={run['oracle']}")
            print(f"fleet churn sweep: {summary['sweeps']} runs green "
                  f"(nodes={summary['nodes']} seed={summary['seed']})")
        else:
            report = run_fleet_churn(nodes=args.nodes, seed=args.seed,
                                     perturb_seed=args.perturb_seed)
            payload = report_bytes(report)
            done = sum(1 for j in report["jobs"] if j["state"] == "done")
            print(f"fleet churn: {done}/{report['submitted']} jobs done, "
                  f"{len(report['migrations'])} proactive migrations, "
                  f"victim migrated at rel "
                  f"t={report['victim_migrated_at']}, "
                  f"oracle={report['oracle']}")
    except (CampaignError, FleetOracleViolation) as exc:
        if fh is not None:
            fh.close()
        print(f"repro fleet churn: {exc}", file=sys.stderr)
        return 1
    if fh is not None:
        with fh:
            fh.write(payload + "\n")
    return 0


def cmd_fleet_serve(args) -> int:
    from repro.core import StarfishCluster
    from repro.fleet import ControlAPI, FleetController, FleetHTTPServer
    sf = StarfishCluster.build(nodes=args.nodes)
    controller = FleetController(sf)
    sf.engine.run(until=sf.engine.now + 1.0)   # first heartbeat round
    api = ControlAPI(controller)
    server = FleetHTTPServer(api, host=args.host, port=args.port)
    print(f"fleet gateway on {server.url} over a simulated "
          f"{args.nodes}-node cluster (POST /v1/step to advance time)")
    if args.self_test:
        return _fleet_self_test(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _fleet_self_test(server) -> int:
    """Exercise the gateway over real sockets, then shut it down."""
    import urllib.request
    server.start_background()
    rc = 0
    try:
        def get(path):
            with urllib.request.urlopen(server.url + path, timeout=10) as r:
                return r.read().decode()

        def post(path, body):
            req = urllib.request.Request(
                server.url + path, data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=10) as r:
                return json.loads(r.read().decode())

        nodes = json.loads(get("/v1/nodes"))
        job = post("/v1/submit", {"tenant": "selftest",
                                  "program": "computesleep", "nprocs": 2,
                                  "params": {"steps": 3,
                                             "step_time": 0.05}})
        status = post("/v1/step", {"dt": 2.0})
        final = json.loads(get(f"/v1/jobs/{job['job']['job_id']}"))
        metrics = get("/metrics?tenant=selftest")
        print(f"  nodes: {len(nodes['nodes'])} tracked, ok={nodes['ok']}")
        print(f"  submit: job {job['job']['job_id']} -> "
              f"{final['job']['state']} at t={status['time']:.3f}")
        wanted = "fleet_jobs_submitted"
        print(f"  metrics: {wanted} exported="
              f"{wanted in metrics}")
        ok = (nodes["ok"] and final["job"]["state"] == "done"
              and wanted in metrics)
        print(f"self-test: {'PASS' if ok else 'FAIL'}")
        rc = 0 if ok else 1
    finally:
        server.shutdown()
    return rc


def cmd_rtt(args) -> int:
    from repro.apps import PingPong
    from repro.core import AppSpec, StarfishCluster
    sf = StarfishCluster.build(nodes=2)
    sizes = [1, 64, 1024, 16384, 65536]
    results = sf.run(AppSpec(program=PingPong, nprocs=2,
                             params={"sizes": sizes, "reps": args.reps},
                             transport=args.transport), timeout=2000)
    print(f"round-trip over {args.transport} ({args.reps} reps):")
    for size in sizes:
        print(f"  {size:>7} B  {results[0][size] * 1e6:10.1f} us")
    return 0


def cmd_examples(_args) -> int:
    here = Path(__file__).resolve().parents[2] / "examples"
    if not here.is_dir():
        print("examples/ directory not found (installed without sources?)")
        return 1
    for script in sorted(here.glob("*.py")):
        doc = script.read_text().split('"""')
        headline = doc[1].strip().splitlines()[0] if len(doc) > 1 else ""
        print(f"  {script.name:<34} {headline}")
    return 0


def main(argv=None) -> int:
    from repro.ckpt.protocols import PROTOCOLS
    protocol_names = sorted(PROTOCOLS)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Starfish (HPDC 1999) reproduction — fault-tolerant "
                    "dynamic MPI on a simulated cluster of workstations.")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run Monte-Carlo pi on a cluster")
    demo.add_argument("--nodes", type=int, default=4)
    demo.add_argument("--shots", type=int, default=200_000)
    demo.set_defaults(fn=cmd_demo)

    status = sub.add_parser("status", help="run a workload and print the "
                                           "cluster metrics report")
    status.add_argument("--nodes", type=int, default=4)
    status.add_argument("--seconds", type=float, default=3.0)
    status.set_defaults(fn=cmd_status)

    metrics = sub.add_parser("metrics", help="run a workload and dump the "
                                             "telemetry registry")
    metrics.add_argument("--nodes", type=int, default=4)
    metrics.add_argument("--seconds", type=float, default=3.0)
    metrics.add_argument("--format", default="text",
                         choices=["text", "prom"])
    metrics.set_defaults(fn=cmd_metrics)

    trace = sub.add_parser("trace", help="run a traced workload and export "
                                         "Chrome trace_event JSON")
    trace.add_argument("--nodes", type=int, default=4)
    trace.add_argument("--seconds", type=float, default=3.0)
    trace.add_argument("--chrome", required=True, metavar="OUT.json",
                       help="output path for the trace JSON")
    trace.set_defaults(fn=cmd_trace)

    chaos = sub.add_parser("chaos", help="run a deterministic fault "
                                         "campaign with invariant checks")
    chaos.add_argument("--campaign", required=True, metavar="NAME",
                       help="campaign name (see repro.faults.CAMPAIGNS)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--nodes", type=int, default=None,
                       help="override the campaign's cluster size")
    chaos.add_argument("--protocol", default="stop-and-sync",
                       choices=protocol_names)
    chaos.add_argument("--policy", default="restart",
                       choices=["kill", "view-notify", "restart"])
    chaos.add_argument("--scheduler", default=None,
                       choices=["heap", "calendar"],
                       help="engine future-event-list implementation "
                            "(default: the campaign's spec; dispatch is "
                            "byte-identical either way)")
    chaos.add_argument("--json", default=None, metavar="OUT.json",
                       help="write the full campaign report as JSON")
    chaos.set_defaults(fn=cmd_chaos)

    check = sub.add_parser(
        "check", help="schedule-perturbation sweep: re-run a campaign "
                      "under N seeded shuffles of same-instant event "
                      "ordering, with protocol oracles + liveness watchdog")
    check.add_argument("--campaign", default="churn", metavar="NAME",
                       help="campaign name, or 'churn' (default) for the "
                            "store-crash-burst + partition-flap pair")
    check.add_argument("--protocol", default="all",
                       choices=["all"] + protocol_names)
    check.add_argument("--seeds", type=int, default=10, metavar="N",
                       help="perturbation seeds 1..N to sweep (default 10)")
    check.add_argument("--seed", type=int, default=0,
                       help="the campaign seed (shared by every "
                            "perturbed run)")
    check.add_argument("--jitter", type=float, default=0.0,
                       metavar="SECONDS",
                       help="per-frame delivery jitter bound (breaks up "
                            "same-instant wire batches; per-link FIFO is "
                            "preserved)")
    check.add_argument("--nodes", type=int, default=None,
                       help="override the campaign's cluster size")
    check.add_argument("--replay", type=int, default=None, metavar="PSEED",
                       help="replay one perturbation seed twice and verify "
                            "the report reproduces byte-identically")
    check.add_argument("--scheduler", default=None,
                       choices=["heap", "calendar"],
                       help="engine future-event-list implementation "
                            "(default: the campaign's spec; verdicts are "
                            "scheduler-independent)")
    check.add_argument("--json", default=None, metavar="OUT.json",
                       help="write all sweep results as JSON")
    check.set_defaults(fn=cmd_check)

    store = sub.add_parser("store", help="run a checkpointed workload on "
                                         "the replicated/tiered store and "
                                         "inspect placement/replicas/"
                                         "repair/tiers")
    # Build flags live on THIS parser only (before the subcommand token);
    # the inspection subcommands define --app/--rank/--version only —
    # argparse child defaults would otherwise clobber parent-parsed
    # values (bpo-9351).
    store.add_argument("--nodes", type=int, default=5)
    store.add_argument("--k", type=int, default=2,
                       help="replication factor (copies per record)")
    store.add_argument("--placement", default="ring",
                       choices=["ring", "random", "partition-aware"])
    store.add_argument("--protocol", default="stop-and-sync",
                       choices=protocol_names)
    store.add_argument("--seed", type=int, default=0)
    store.add_argument("--crash", action="store_true",
                       help="crash an app host mid-run (and recover it) to "
                            "exercise failure-driven repair")
    store.add_argument("--tiers", default=None, metavar="T1,T2,...",
                       help="build a multi-level TieredStore instead "
                            "(comma list from: memory, disk, fabric)")
    store.add_argument("--delta-depth", type=int, default=0,
                       help="delta-checkpoint chain depth (with --tiers)")
    store.add_argument("--tier-policy", default="write-through",
                       choices=["write-through", "write-back"],
                       help="tier promotion policy (with --tiers)")
    # Removed flag (was deprecated for one release): still parsed so the
    # command can fail with a pointer to its replacement subcommands
    # instead of a generic argparse error.
    store.add_argument("--what", default=None, help=argparse.SUPPRESS)
    store.set_defaults(fn=cmd_store, store_cmd=None)
    store_sub = store.add_subparsers(dest="store_cmd", metavar="SECTION")
    for sname, shelp in (
            ("placement", "per-rank primary -> replica picks"),
            ("replica-map", "holder map, committed/restorable line, "
                            "deficit"),
            ("repair", "repair-service status counters"),
            ("tiers", "per-tier holder map and delta chains")):
        sp = store_sub.add_parser(sname, help=shelp)
        sp.add_argument("--app", default=None,
                        help="application id filter (default: the "
                             "workload just run)")
        sp.add_argument("--rank", type=int, default=None,
                        help="only this rank's records")
        sp.add_argument("--version", type=int, default=None,
                        help="only this checkpoint version")

    fleet = sub.add_parser(
        "fleet", help="the multi-tenant fleet control plane: churn "
                      "campaign or a real HTTP gateway over a simulated "
                      "cluster")
    fleet_sub = fleet.add_subparsers(dest="fleet_cmd", required=True,
                                     metavar="ACTION")
    churn = fleet_sub.add_parser(
        "churn", help="run the deterministic fleet churn scenario "
                      "(3 tenants, quotas, proactive migration) with the "
                      "FleetOracle as the gate")
    churn.add_argument("--nodes", type=int, default=16)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--seeds", type=int, default=0, metavar="N",
                       help="also sweep perturbation seeds 1..N "
                            "(0 = single run)")
    churn.add_argument("--perturb-seed", type=int, default=None,
                       metavar="PSEED",
                       help="run once under this perturbation seed")
    churn.add_argument("--json", default=None, metavar="OUT.json",
                       help="write the report (or sweep summary) as JSON")
    churn.set_defaults(fn=cmd_fleet_churn)
    serve = fleet_sub.add_parser(
        "serve", help="serve the fleet ControlAPI over real HTTP "
                      "(simulated cluster behind it)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 = pick a free port")
    serve.add_argument("--nodes", type=int, default=8)
    serve.add_argument("--self-test", action="store_true",
                       help="start, exercise every endpoint via real "
                            "HTTP requests, shut down (CI smoke)")
    serve.set_defaults(fn=cmd_fleet_serve)

    rtt = sub.add_parser("rtt", help="quick Figure-5-style latency probe")
    rtt.add_argument("--transport", default="bip-myrinet",
                     choices=["bip-myrinet", "tcp-ethernet"])
    rtt.add_argument("--reps", type=int, default=20)
    rtt.set_defaults(fn=cmd_rtt)

    examples = sub.add_parser("examples", help="list bundled examples")
    examples.set_defaults(fn=cmd_examples)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
