"""The fleet churn scenario: multi-tenant load under node churn.

The end-to-end acceptance run of the fleet control plane (ISSUE 9):
three tenants submit 13 applications against per-tenant quotas on a
16-node cluster while a fault schedule degrades and crashes nodes.  The
headline behavior under test is **proactive migration**: the disk
slowdown on ``n3`` pushes its suspicion score over the threshold, the
controller drains it, and the victim application's rank moves off ``n3``
*before* the scheduled crash — verified by the victim finishing with
``daemon.ranks_restarted == 0`` (it pays ``daemon.ranks_migrated``
instead, which is the whole point).

Deterministic: same ``(nodes, seed, perturb_seed)`` produces a
byte-identical report.  ``sweep_fleet_churn`` re-runs the scenario
across perturbation seeds with the FleetOracle as the gate
(``repro fleet churn --seeds N``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.cluster import ClusterSpec
from repro.core.appspec import AppSpec, CheckpointConfig
from repro.core.policies import FaultPolicy
from repro.core.starfish import StarfishCluster
from repro.errors import CampaignError
from repro.faults.actions import (CrashNode, DiskSlowdown, FrameLossWindow,
                                  RecoverNode)
from repro.faults.plan import FaultPlan
from repro.fleet.controller import FleetController
from repro.fleet.oracle import FleetOracle
from repro.fleet.scheduler import JobState, TenantQuota
from repro.gcs import GcsConfig

TENANTS = ("acme", "globex", "initech")

#: Node degraded, drained, and finally crashed (the proactive-migration
#: victim's third rank starts here).
SUSPECT_NODE = "n3"
#: Campaign-relative fault schedule (see :func:`_churn_plan`).
CRASH_AT = 6.0


def _churn_plan(nodes: int) -> FaultPlan:
    """Degrade ``n3``, then crash it; later crash the last node too."""
    last = f"n{nodes - 1}"
    return (FaultPlan()
            .at(1.5, DiskSlowdown(node=SUSPECT_NODE, factor=6.0,
                                  duration=3.0))
            .at(4.5, FrameLossWindow(prob=0.05, duration=1.0,
                                     fabric="tcp-ethernet"))
            .at(CRASH_AT, CrashNode(node=SUSPECT_NODE, cause="fleet-churn"))
            .at(8.0, RecoverNode(node=SUSPECT_NODE))
            .at(9.0, CrashNode(node=last, cause="fleet-churn"))
            .at(11.0, RecoverNode(node=last)))


def _workloads(nodes: int) -> List[AppSpec]:
    """13 submissions: the pinned victim, 11 fillers, 1 oversized."""
    from repro.apps import ComputeSleep
    ckpt = CheckpointConfig(protocol="stop-and-sync", level="vm",
                            interval=0.5)
    specs = [AppSpec(
        program=ComputeSleep, nprocs=3,
        params={"steps": 12, "step_time": 0.25, "state_bytes": 2048},
        ft_policy=FaultPolicy.RESTART, checkpoint=ckpt,
        placement={0: "n1", 1: "n2", 2: SUSPECT_NODE},
        tenant="acme", priority=2)]
    filler_ckpt = CheckpointConfig(protocol="stop-and-sync", level="vm",
                                   interval=0.8)
    for i in range(11):
        # Durations 1.6s / 3.8s / 6.0s: with quota queuing, some jobs
        # are still running when the crashes land — those pay failure
        # restarts (the contrast to the proactively-migrated victim).
        specs.append(AppSpec(
            program=ComputeSleep, nprocs=2 + (i % 2),
            params={"steps": 8 + 11 * (i % 3), "step_time": 0.2,
                    "state_bytes": 1024},
            ft_policy=FaultPolicy.RESTART, checkpoint=filler_ckpt,
            tenant=TENANTS[i % len(TENANTS)],
            priority=1 if i == 4 else 0))
    # One spec that can never fit its tenant's quota: must be rejected
    # immediately with the typed quota reason.
    specs.append(AppSpec(
        program=ComputeSleep, nprocs=9,
        params={"steps": 2, "step_time": 0.1},
        ft_policy=FaultPolicy.RESTART, tenant="initech"))
    return specs


def run_fleet_churn(nodes: int = 16, seed: int = 0,
                    perturb_seed: Optional[int] = None,
                    strict: bool = True,
                    timeout: float = 120.0) -> Dict[str, Any]:
    """One full fleet churn run; returns the (byte-stable) report."""
    if nodes < 8:
        raise CampaignError("fleet churn needs >= 8 nodes")
    hb = 0.2
    sf = StarfishCluster.build(spec=ClusterSpec(
        nodes=nodes, seed=seed, perturb_seed=perturb_seed,
        gcs_config=GcsConfig(heartbeat_period=hb, suspect_timeout=5 * hb,
                             announce_period=16 * hb)))
    quotas = {t: TenantQuota(max_ranks=6, max_apps=3) for t in TENANTS}
    controller = FleetController(sf, quotas=quotas, tick=0.25)
    jobs = [controller.submit(spec) for spec in _workloads(nodes)]
    victim = jobs[0]
    start = sf.engine.now
    _churn_plan(nodes).apply_to(sf, offset=start)
    deadline = start + timeout
    # Play out the full fault schedule even if every job finishes early
    # — the crashes must actually land for the run to mean anything.
    horizon = start + 12.0
    while (controller.pending_work() or sf.engine.now < horizon) \
            and sf.engine.now < deadline:
        sf.engine.run(until=sf.engine.now + 0.5)
    controller.close()
    sf.engine.run(until=sf.engine.now + 0.5)   # drain the control loop

    oracle_violations = FleetOracle().check(controller.scheduler)
    metrics = controller.registry
    restarted = metrics.group_by("daemon.ranks_restarted", "app")
    migrated = metrics.group_by("daemon.ranks_migrated", "app")
    crash_time = start + CRASH_AT
    victim_moves = [m for m in controller.migrations
                    if m[1] == victim.job_id and m[3] == SUSPECT_NODE]
    report = {
        "campaign": "fleet-churn",
        "nodes": nodes, "seed": seed, "perturb_seed": perturb_seed,
        "tenants": {t: {"max_ranks": 6, "max_apps": 3} for t in TENANTS},
        "submitted": len(jobs),
        "victim": victim.job_id,
        "victim_migrated_at": (round(victim_moves[0][0] - start, 9)
                               if victim_moves else None),
        "crash_at": CRASH_AT,
        "jobs": controller.scheduler.snapshot(),
        "migrations": [
            {"t": round(t - start, 9), "app": app, "rank": rank,
             "src": src, "dst": dst}
            for t, app, rank, src, dst in controller.migrations],
        "ranks_restarted": {k: int(v) for k, v in sorted(
            restarted.items())},
        "ranks_migrated": {k: int(v) for k, v in sorted(
            migrated.items())},
        "scheduler_log": controller.scheduler.log_lines(),
        "faults": sf.faults.log_lines(),
        "oracle": oracle_violations or "ok",
        "duration": round(sf.engine.now - start, 9),
    }
    if strict:
        _gate(report, jobs, victim, crash_time, start)
    return report


def _gate(report: Dict[str, Any], jobs, victim, crash_time: float,
          start: float) -> None:
    """The acceptance gates; typed CampaignError on any miss."""
    if report["oracle"] != "ok":
        raise CampaignError(
            f"fleet oracle violations: {report['oracle']}")
    if victim.state != JobState.DONE:
        raise CampaignError(
            f"victim {victim.job_id} ended {victim.state}, wanted done")
    moved_at = report["victim_migrated_at"]
    if moved_at is None:
        raise CampaignError(
            f"victim {victim.job_id} was never proactively migrated "
            f"off {SUSPECT_NODE}")
    if start + moved_at >= crash_time:
        raise CampaignError(
            f"victim migrated at rel t={moved_at:.3f}, after the "
            f"scheduled crash at rel t={crash_time - start:.3f}")
    if report["ranks_restarted"].get(victim.job_id, 0) != 0:
        raise CampaignError(
            f"victim {victim.job_id} paid a failure restart "
            f"(ranks_restarted={report['ranks_restarted']})")
    if report["ranks_migrated"].get(victim.job_id, 0) < 1:
        raise CampaignError(
            f"victim {victim.job_id} shows no migrated ranks")
    rejected = [j for j in jobs if j.state == JobState.REJECTED]
    if not any(j.reason == "quota-exceeded" for j in rejected):
        raise CampaignError("the oversized submission was not "
                            "quota-rejected")
    done = sum(1 for j in jobs if j.state == JobState.DONE)
    if done < 10:
        raise CampaignError(f"only {done} jobs finished")


def sweep_fleet_churn(nodes: int = 16, seed: int = 0,
                      seeds: int = 20) -> Dict[str, Any]:
    """Perturbation sweep: the base run plus ``seeds`` perturbed runs.

    Every run must pass the strict gates and the FleetOracle; the
    summary counts per-seed job outcomes.
    """
    runs = []
    for pseed in [None] + list(range(1, seeds + 1)):
        report = run_fleet_churn(nodes=nodes, seed=seed,
                                 perturb_seed=pseed, strict=True)
        runs.append({
            "perturb_seed": pseed,
            "done": sum(1 for j in report["jobs"]
                        if j["state"] == JobState.DONE),
            "rejected": sum(1 for j in report["jobs"]
                            if j["state"] == JobState.REJECTED),
            "migrations": len(report["migrations"]),
            "victim_migrated_at": report["victim_migrated_at"],
            "oracle": report["oracle"],
        })
    return {"campaign": "fleet-churn", "nodes": nodes, "seed": seed,
            "sweeps": len(runs), "runs": runs}


def report_bytes(report: Dict[str, Any]) -> str:
    """Canonical JSON (the byte-identity comparison in tests/CLI)."""
    return json.dumps(report, sort_keys=True, indent=1)
