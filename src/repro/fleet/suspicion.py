"""Failure suspicion from observability signals.

The scorer turns ``repro.obs`` signals into a per-node **SuspicionScore**
in ``[0, 1]``; the controller proactively drains nodes whose score
crosses the threshold *before* they crash (the agent-intelligence
fault-tolerance idea: pay a cheap planned migration instead of an
expensive recovery).

The formula (documented in DESIGN.md §18)::

    score(n) = min(1,  w_missed * missed_heartbeats(n)
                     + w_disk   * [disk slowdown active on n]
                     + w_loss   * [frame-loss window active])

Inputs come from two places, both already structured:

* ``missed_heartbeats`` — the :class:`~repro.fleet.view.FleetView` row
  (a paused or wedged daemon stops producing payloads);
* fault windows — ``fault.inject`` events in the registry's event log:
  ``disk-slowdown`` / ``disk-slowdown-end`` carry the affected nodes,
  ``frame-loss`` / ``frame-loss-end`` are fabric-global (so they weigh
  below the threshold on their own — a lossy network is not one sick
  node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.fleet.view import FleetView, NodeHealth


def _node_set(fields) -> Set[str]:
    """The ``nodes`` CSV field as a set, dropping empties: a missing or
    empty field must mean *no* nodes, not the phantom node ``""`` that
    ``"".split(",")`` produces (it can never be removed by a well-formed
    ``-end`` event and quietly pollutes ``_slow_disks`` forever)."""
    return {n for n in str(fields.get("nodes", "")).split(",") if n}


@dataclass(frozen=True)
class SuspicionConfig:
    """Weights and threshold of the suspicion formula."""

    w_missed: float = 0.25    # per consecutive missed heartbeat
    w_disk: float = 0.6       # an active disk slowdown on the node
    w_loss: float = 0.2       # an active fabric-wide frame-loss window
    threshold: float = 0.5    # >= threshold => suspect


class SuspicionScorer:
    """Incremental scorer over the engine's ``fault.inject`` events."""

    def __init__(self, registry, config: SuspicionConfig = None):
        self._registry = registry
        self.config = config or SuspicionConfig()
        #: Emission-seq cursor: events with ``seq < _seen`` were already
        #: folded in.  Must NOT be a position into ``records(...)`` —
        #: that list is rebuilt from a bounded ring, so once the log
        #: wraps, positions shift under the cursor and fresh
        #: ``fault.inject`` events get skipped or double-counted.
        self._seen = 0
        #: Nodes with an active disk slowdown.
        self._slow_disks: Set[str] = set()
        #: Open fabric-wide frame-loss windows.
        self._loss_depth = 0

    def _ingest(self) -> None:
        """Fold fault events emitted since the last call."""
        log = self._registry.events
        seen = self._seen
        for ev in log.records("fault.inject"):
            if ev.seq < seen:
                continue
            fields = ev.field_dict
            action = fields.get("action")
            if action == "disk-slowdown":
                self._slow_disks |= _node_set(fields)
            elif action == "disk-slowdown-end":
                self._slow_disks -= _node_set(fields)
            elif action == "frame-loss":
                self._loss_depth += 1
            elif action == "frame-loss-end":
                self._loss_depth = max(0, self._loss_depth - 1)
        # Anything emitted after this point gets a seq >= emitted.
        self._seen = log.emitted

    def update(self, view: FleetView) -> None:
        """Re-score every known node; annotates the view rows in place."""
        self._ingest()
        cfg = self.config
        for info in view.nodes.values():
            if info.health is NodeHealth.DOWN:
                info.suspicion = 1.0
                info.suspect = True
                continue
            score = cfg.w_missed * info.missed
            if info.node_id in self._slow_disks:
                score += cfg.w_disk
            if self._loss_depth:
                score += cfg.w_loss
            info.suspicion = min(1.0, score)
            info.suspect = info.suspicion >= cfg.threshold
