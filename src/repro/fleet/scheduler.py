"""Multi-tenant admission scheduling.

The :class:`JobScheduler` owns the fleet's admission queue: many
concurrent :class:`~repro.core.appspec.AppSpec` submissions from multiple
tenants, admitted under per-tenant quotas in **deterministic
FIFO-within-priority order** — the queue is ordered by
``(-priority, submit_time, tenant, seq)``, so any interleaving of
same-instant submits admits in the same order and places on the same
nodes (the Hypothesis property in ``tests/test_fleet_properties.py``).

Placement goes through the existing
:class:`~repro.store.placement.PlacementPolicy` surface: the least-loaded
eligible node hosts rank 0 and the policy's ring successors host the
rest (cycling when the fleet has fewer eligible nodes than ranks).

Rejections are **typed**: :data:`REJECT_QUOTA` for a spec that can never
fit its tenant's quota, :data:`REJECT_PLACEMENT` for an admission whose
submit failed downstream, :data:`REJECT_SHUTDOWN` for jobs still queued
when the controller closes.  The FleetOracle refuses any rejected job
without one of these reasons.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.appspec import AppSpec
from repro.fleet.view import FleetView
from repro.store.placement import make_placement

#: Typed rejection reasons (the only values FleetOracle accepts).
REJECT_QUOTA = "quota-exceeded"
REJECT_PLACEMENT = "placement-failed"
REJECT_SHUTDOWN = "fleet-shutdown"
REJECT_REASONS = (REJECT_QUOTA, REJECT_PLACEMENT, REJECT_SHUTDOWN)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant concurrency limits (``None`` = unlimited)."""

    max_ranks: Optional[int] = None   # concurrent running ranks
    max_apps: Optional[int] = None    # concurrent running applications


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"

    TERMINAL = (DONE, FAILED, REJECTED)


@dataclass
class FleetJob:
    """One submission's lifecycle record."""

    job_id: str
    tenant: str
    spec: AppSpec
    seq: int
    submit_time: float
    priority: int = 0
    state: str = JobState.QUEUED
    reason: Optional[str] = None          # typed, for REJECTED
    placement: Optional[Dict[int, str]] = None
    admitted_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def snapshot(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id, "tenant": self.tenant,
            "priority": self.priority, "nprocs": self.spec.nprocs,
            "state": self.state, "reason": self.reason,
            "placement": ({str(r): n for r, n in sorted(
                self.placement.items())} if self.placement else None),
            "submit_time": self.submit_time,
            "admitted_at": self.admitted_at,
            "finished_at": self.finished_at,
        }


@dataclass
class Admission:
    """One admission decision, kept for the FleetOracle."""

    job_id: str
    tenant: str
    time: float
    placement: Dict[int, str]
    #: Nodes that were *not* eligible at admission time (cordoned,
    #: draining, suspect, or down) — the oracle checks disjointness.
    forbidden: Tuple[str, ...]
    #: Tenant's concurrent ranks/apps right after this admission.
    ranks_after: int
    apps_after: int


class JobScheduler:
    """Admission queue + quota accounting over a :class:`FleetView`."""

    def __init__(self, view: FleetView,
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 policy: str = "ring", registry=None):
        from repro.obs import NULL_REGISTRY
        self.view = view
        self.quotas = dict(quotas or {})
        self.policy = make_placement(policy)
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.jobs: Dict[str, FleetJob] = {}
        self._tenant_seq: Dict[str, itertools.count] = {}
        #: Admission decisions in order (the oracle's evidence).
        self.admissions: List[Admission] = []
        #: Per-tenant high-water marks of concurrent (ranks, apps).
        self.high_water: Dict[str, Tuple[int, int]] = {}
        self.log: List[str] = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, TenantQuota())

    def submit(self, spec: AppSpec, now: float) -> FleetJob:
        """Queue one spec; rejects immediately (typed) when the spec can
        never fit inside its tenant's quota."""
        tenant = spec.tenant or spec.owner
        seq = next(self._tenant_seq.setdefault(tenant, itertools.count(1)))
        job = FleetJob(job_id=f"{tenant}-j{seq}", tenant=tenant, spec=spec,
                       seq=seq, submit_time=now, priority=spec.priority)
        self.jobs[job.job_id] = job
        self._count("fleet.jobs_submitted", tenant)
        quota = self.quota(tenant)
        if quota.max_ranks is not None and spec.nprocs > quota.max_ranks:
            self._reject(job, REJECT_QUOTA, now)
            self.log.append(
                f"t={now:.6f} reject {job.job_id} {REJECT_QUOTA} "
                f"(nprocs {spec.nprocs} > max_ranks {quota.max_ranks})")
            return job
        self.log.append(f"t={now:.6f} queue {job.job_id} "
                        f"x{spec.nprocs} prio={job.priority}")
        return job

    def _reject(self, job: FleetJob, reason: str, now: float) -> None:
        job.state = JobState.REJECTED
        job.reason = reason
        job.finished_at = now
        self._count("fleet.jobs_rejected", job.tenant, reason=reason)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def pending(self) -> List[FleetJob]:
        """Queued jobs in deterministic admission order."""
        return sorted(
            (j for j in self.jobs.values() if j.state == JobState.QUEUED),
            key=lambda j: (-j.priority, j.submit_time, j.tenant, j.seq))

    def running(self) -> List[FleetJob]:
        return sorted((j for j in self.jobs.values()
                       if j.state == JobState.RUNNING),
                      key=lambda j: j.job_id)

    def usage(self, tenant: str) -> Tuple[int, int]:
        """(concurrent ranks, concurrent apps) of a tenant's running jobs."""
        ranks = apps = 0
        for job in self.jobs.values():
            if job.state == JobState.RUNNING and job.tenant == tenant:
                ranks += job.spec.nprocs
                apps += 1
        return ranks, apps

    def admit_ready(self, now: float) -> List[FleetJob]:
        """Admit every queued job that fits its quota and places now.

        A job blocked on quota or placement stays queued and does not
        block other jobs behind it (otherwise one saturated tenant would
        stall the whole fleet) — still deterministic, since the scan
        order is the admission order.
        """
        admitted: List[FleetJob] = []
        eligible = self.view.eligible()
        if not eligible:
            return admitted
        loads = self.view.loads()
        forbidden = tuple(sorted(set(self.view.nodes) - set(eligible)))
        for job in self.pending():
            quota = self.quota(job.tenant)
            ranks, apps = self.usage(job.tenant)
            if quota.max_ranks is not None and \
                    ranks + job.spec.nprocs > quota.max_ranks:
                continue
            if quota.max_apps is not None and apps + 1 > quota.max_apps:
                continue
            placement = self._place(job, eligible, loads)
            if placement is None:
                continue
            job.state = JobState.RUNNING
            job.admitted_at = now
            job.placement = placement
            for node_id in placement.values():
                loads[node_id] = loads.get(node_id, 0) + 1
            ranks += job.spec.nprocs
            apps += 1
            hw = self.high_water.get(job.tenant, (0, 0))
            self.high_water[job.tenant] = (max(hw[0], ranks),
                                           max(hw[1], apps))
            self.admissions.append(Admission(
                job_id=job.job_id, tenant=job.tenant, time=now,
                placement=dict(placement), forbidden=forbidden,
                ranks_after=ranks, apps_after=apps))
            self._count("fleet.jobs_admitted", job.tenant)
            self.log.append(
                f"t={now:.6f} admit {job.job_id} -> "
                + ",".join(placement[r] for r in sorted(placement)))
            admitted.append(job)
        self._sample_gauges()
        return admitted

    def _place(self, job: FleetJob, eligible: List[str],
               loads: Dict[str, int]) -> Optional[Dict[int, str]]:
        """Placement over eligible nodes, or None to keep the job queued.

        An explicit ``spec.placement`` is honored verbatim once every
        named node is eligible.  Otherwise: least-loaded primary, ring
        successors for the rest, cycling when ranks outnumber nodes.
        """
        if job.spec.placement is not None:
            wanted = job.spec.placement
            if all(n in eligible for n in wanted.values()):
                return dict(wanted)
            return None
        primary = min(eligible, key=lambda n: (loads.get(n, 0), n))
        rest = self.policy.replicas((job.job_id, 0, 0), primary,
                                    [n for n in eligible if n != primary],
                                    job.spec.nprocs)
        ring = [primary] + rest
        return {rank: ring[rank % len(ring)]
                for rank in range(job.spec.nprocs)}

    # ------------------------------------------------------------------
    # completion / shutdown
    # ------------------------------------------------------------------

    def complete(self, job: FleetJob, state: str, now: float) -> None:
        job.state = state
        job.finished_at = now
        self._count("fleet.jobs_completed", job.tenant, status=state)
        self.log.append(f"t={now:.6f} {state} {job.job_id}")
        self._sample_gauges()

    def reject_queued(self, reason: str, now: float) -> List[FleetJob]:
        """Reject every still-queued job (controller shutdown)."""
        out = []
        for job in self.pending():
            self._reject(job, reason, now)
            self.log.append(f"t={now:.6f} reject {job.job_id} {reason}")
            out.append(job)
        self._sample_gauges()
        return out

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def _count(self, name: str, tenant: str, **labels) -> None:
        self.registry.counter(name, tenant=tenant, **labels).inc()

    def _sample_gauges(self) -> None:
        tenants = sorted({j.tenant for j in self.jobs.values()})
        for tenant in tenants:
            depth = sum(1 for j in self.jobs.values()
                        if j.tenant == tenant
                        and j.state == JobState.QUEUED)
            ranks, _apps = self.usage(tenant)
            self.registry.gauge("fleet.queue_depth",
                                tenant=tenant).set(depth)
            self.registry.gauge("fleet.ranks_running",
                                tenant=tenant).set(ranks)

    def log_lines(self) -> List[str]:
        """Byte-stable admission log (same seed = same bytes)."""
        return list(self.log)

    def snapshot(self) -> List[Dict[str, object]]:
        return [self.jobs[jid].snapshot() for jid in sorted(self.jobs)]
