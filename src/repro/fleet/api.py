"""The ControlAPI: the fleet's JSON request/response surface.

One dict in, one dict out — the same surface serves in-sim callers
(campaigns, tests) and the real HTTP gateway
(:mod:`repro.fleet.http` / ``repro fleet serve``).  Every response
carries ``ok``; failures carry the *typed* error class name and message
instead of a traceback::

    api.handle({"op": "submit", "tenant": "acme",
                "program": "computesleep", "nprocs": 3})
    -> {"ok": True, "job": {...}}

Ops: ``submit``, ``status``, ``jobs``, ``nodes``, ``migrate``,
``drain``, ``uncordon``, ``metrics`` (Prometheus text, per-tenant via a
label-filtered :class:`~repro.obs.RegistryView`), and ``step`` (advance
the simulation — the gateway's only way to make time pass).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.appspec import AppSpec, CheckpointConfig
from repro.core.starfish import AppHandle
from repro.errors import ReproError
from repro.fleet.controller import FleetController
from repro.obs import to_prometheus


class ControlAPI:
    """Dispatches JSON requests against one :class:`FleetController`."""

    def __init__(self, controller: FleetController):
        self.controller = controller
        self.sf = controller.sf

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = str(request.get("op", ""))
        handler = getattr(self, "_op_" + op, None)
        if handler is None:
            return {"ok": False, "error": "UnknownOp",
                    "message": f"unknown op {op!r}"}
        try:
            return {"ok": True, **handler(request)}
        except ReproError as exc:
            return {"ok": False, "error": type(exc).__name__,
                    "message": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": "BadRequest",
                    "message": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------

    def _op_submit(self, req: Dict[str, Any]) -> Dict[str, Any]:
        program_name = str(req["program"])
        program = self.sf.program_registry.get(program_name)
        if program is None:
            raise KeyError(
                f"unknown program {program_name!r}; known: "
                f"{sorted(self.sf.program_registry)}")
        checkpoint = CheckpointConfig(
            protocol=req.get("ckpt"),
            level=str(req.get("level", "vm")),
            interval=(float(req["interval"]) if req.get("interval")
                      is not None else None),
            replicas=int(req.get("replicas", 1)))
        spec = AppSpec(
            program=program, nprocs=int(req["nprocs"]),
            params=dict(req.get("params", {})),
            ft_policy=str(req.get("ft", "kill")),
            checkpoint=checkpoint,
            owner=str(req.get("tenant", "local")),
            tenant=req.get("tenant"),
            priority=int(req.get("priority", 0)))
        job = self.controller.submit(spec)
        return {"job": job.snapshot()}

    def _op_status(self, req: Dict[str, Any]) -> Dict[str, Any]:
        job_id = str(req["job_id"])
        job = self.controller.scheduler.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return {"job": job.snapshot()}

    def _op_jobs(self, req: Dict[str, Any]) -> Dict[str, Any]:
        return {"jobs": self.controller.scheduler.snapshot()}

    def _op_nodes(self, req: Dict[str, Any]) -> Dict[str, Any]:
        return {"time": self.controller.engine.now,
                "nodes": self.controller.view.snapshot()}

    def _op_migrate(self, req: Dict[str, Any]) -> Dict[str, Any]:
        app_id = str(req.get("app_id") or req["job_id"])
        self.sf.migrate(AppHandle(self.sf, app_id),
                        int(req["rank"]), str(req["target"]))
        return {"app_id": app_id, "rank": int(req["rank"]),
                "target": str(req["target"])}

    def _op_drain(self, req: Dict[str, Any]) -> Dict[str, Any]:
        node = str(req["node"])
        if node not in self.sf.cluster.nodes:
            raise KeyError(f"unknown node {node!r}")
        self.controller.drain(node)
        return {"node": node, "health":
                self.controller.view.row(node).health.value}

    def _op_uncordon(self, req: Dict[str, Any]) -> Dict[str, Any]:
        node = str(req["node"])
        if node not in self.sf.cluster.nodes:
            raise KeyError(f"unknown node {node!r}")
        self.controller.uncordon(node)
        return {"node": node, "health":
                self.controller.view.row(node).health.value}

    def _op_metrics(self, req: Dict[str, Any]) -> Dict[str, Any]:
        registry = self.controller.registry
        tenant = req.get("tenant")
        if tenant is not None:
            registry = registry.view(tenant=str(tenant))
        return {"text": to_prometheus(registry)}

    def _op_step(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Advance the simulation by ``dt`` seconds (gateway clock)."""
        dt = float(req.get("dt", 1.0))
        engine = self.controller.engine
        engine.run(until=engine.now + max(0.0, dt))
        return {"time": engine.now}
