"""The fleet's per-node state, built from daemon heartbeats.

:class:`FleetView` is the controller's "fleet database" (the
``master_control`` exemplar's central table): one :class:`NodeInfo` row
per node, fed by the structured payloads of
:meth:`repro.daemon.StarfishDaemon.heartbeat` — liveness, hosted ranks,
replica copies, and checkpoint-store bytes.  The suspicion scorer
(:mod:`repro.fleet.suspicion`) annotates rows in place; the scheduler
reads :meth:`FleetView.eligible` and never sees cordoned, draining,
suspect, or down nodes.

Drain state machine (one row's ``health``)::

    ACTIVE --cordon--> CORDONED --drain--> DRAINING --empty--> DRAINED
      ^                                                          |
      +------------------------- uncordon -----------------------+

    any state --node crash--> DOWN --heartbeat after reboot--> ACTIVE
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class NodeHealth(enum.Enum):
    """Administrative health of one node (the drain state machine)."""

    ACTIVE = "active"          # schedulable
    CORDONED = "cordoned"      # no new work; existing work stays
    DRAINING = "draining"      # no new work; ranks being migrated off
    DRAINED = "drained"        # cordoned and empty of primary ranks
    DOWN = "down"              # crashed (not an admin state)


@dataclass
class NodeInfo:
    """One row of the fleet database."""

    node_id: str
    health: NodeHealth = NodeHealth.ACTIVE
    #: Time of the last heartbeat payload observed (-1 = never).
    last_heartbeat: float = -1.0
    #: Consecutive collection periods without a heartbeat.
    missed: int = 0
    ranks: int = 0
    copies: int = 0
    apps: Tuple[str, ...] = ()
    store_bytes: int = 0
    epoch: int = -1
    #: Annotated by the SuspicionScorer.
    suspicion: float = 0.0
    suspect: bool = False
    #: True when the *controller* drained this node off a suspicion
    #: signal (such drains auto-uncordon once the signal clears;
    #: operator-requested drains never do).
    auto_drained: bool = False

    def snapshot(self) -> Dict[str, object]:
        """JSON-able row for the ControlAPI's ``nodes`` endpoint."""
        return {
            "node": self.node_id, "health": self.health.value,
            "last_heartbeat": self.last_heartbeat, "missed": self.missed,
            "ranks": self.ranks, "copies": self.copies,
            "apps": list(self.apps), "store_bytes": self.store_bytes,
            "epoch": self.epoch,
            "suspicion": round(self.suspicion, 6), "suspect": self.suspect,
        }


@dataclass
class FleetView:
    """Per-node liveness + load, refreshed once per collection tick.

    ``period`` is the controller's heartbeat-collection period: a node
    whose last payload is older than one period is accumulating missed
    beats (a paused daemon produces exactly this signature — the node is
    up but its daemon stopped answering).
    """

    period: float = 0.25
    nodes: Dict[str, NodeInfo] = field(default_factory=dict)

    def row(self, node_id: str) -> NodeInfo:
        info = self.nodes.get(node_id)
        if info is None:
            info = self.nodes[node_id] = NodeInfo(node_id)
        return info

    def observe(self, payload: Dict[str, object], now: float) -> NodeInfo:
        """Fold one daemon heartbeat payload into the view."""
        info = self.row(str(payload["node"]))
        info.last_heartbeat = now
        info.missed = 0
        info.ranks = int(payload.get("ranks", 0))
        info.copies = int(payload.get("copies", 0))
        info.apps = tuple(payload.get("apps", ()))
        info.store_bytes = int(payload.get("store_bytes", 0))
        info.epoch = int(payload.get("epoch", -1))
        if info.health is NodeHealth.DOWN:
            # A rebooted node heartbeats again: back to schedulable.
            info.health = NodeHealth.ACTIVE
            info.auto_drained = False
        return info

    def refresh(self, now: float, down_nodes: Iterable[str]) -> None:
        """Mark crashed nodes and count missed beats for silent ones."""
        down = set(down_nodes)
        for info in self.nodes.values():
            if info.node_id in down:
                info.health = NodeHealth.DOWN
                info.ranks = info.copies = 0
                info.apps = ()
                continue
            if info.last_heartbeat < 0:
                continue
            info.missed = max(0, int((now - info.last_heartbeat)
                                     / self.period + 1e-9) - 1)

    # ------------------------------------------------------------------
    # scheduler-facing queries
    # ------------------------------------------------------------------

    def eligible(self) -> List[str]:
        """Sorted ids of nodes the scheduler may place new work on."""
        return sorted(nid for nid, info in self.nodes.items()
                      if info.health is NodeHealth.ACTIVE
                      and not info.suspect)

    def loads(self) -> Dict[str, int]:
        """Hosted primary ranks per node (all known nodes)."""
        return {nid: info.ranks for nid, info in sorted(self.nodes.items())}

    def snapshot(self) -> List[Dict[str, object]]:
        return [self.nodes[nid].snapshot() for nid in sorted(self.nodes)]
