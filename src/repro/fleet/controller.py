"""The fleet controller: the in-sim long-running orchestrator process.

One :class:`FleetController` per :class:`~repro.core.starfish.
StarfishCluster` — the central control host of the ``master_control``
exemplar, run as an *engine-level* simulated process (it survives any
node crash).  Every tick it:

1. collects a heartbeat payload from every live, unpaused daemon into
   the :class:`~repro.fleet.view.FleetView`;
2. marks crashed nodes down and counts missed beats for silent ones;
3. re-scores suspicion (:class:`~repro.fleet.suspicion.SuspicionScorer`);
4. runs the drain lifecycle — auto-drains fresh suspects
   (cordon → proactive-migrate → confirm-empty), migrates ranks off
   draining nodes through the validated ``migrate()`` path (refusal-aware
   for replicated apps), and auto-uncordons drained nodes whose
   suspicion cleared;
5. folds finished applications back into the scheduler;
6. admits every queued job that now fits (quota + placement).

Cordon reuses the daemons' replicated ``node-admin`` op, so *failure*
restarts coordinated inside the daemon layer also avoid cordoned nodes
— the fleet and the daemons always agree on schedulability.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.core.appspec import AppSpec
from repro.core.starfish import AppHandle, StarfishCluster
from repro.daemon import AppStatus
from repro.errors import DaemonError, PlacementError, StarfishError
from repro.fleet.scheduler import (FleetJob, JobScheduler, JobState,
                                   REJECT_PLACEMENT, REJECT_SHUTDOWN,
                                   TenantQuota)
from repro.fleet.suspicion import SuspicionConfig, SuspicionScorer
from repro.fleet.view import FleetView, NodeHealth
from repro.obs import get_registry


class FleetController:
    """Heartbeat collection + suspicion + drain + admission, per tick."""

    def __init__(self, sf: StarfishCluster,
                 quotas: Optional[Dict[str, TenantQuota]] = None,
                 suspicion: Optional[SuspicionConfig] = None,
                 tick: float = 0.25, auto_drain: bool = True,
                 placement_policy: str = "ring"):
        self.sf = sf
        self.engine = sf.engine
        self.tick = tick
        self.auto_drain = auto_drain
        self.registry = get_registry(sf.engine)
        self.view = FleetView(period=tick)
        self.scheduler = JobScheduler(self.view, quotas,
                                      policy=placement_policy,
                                      registry=self.registry)
        self.scorer = SuspicionScorer(self.registry, suspicion)
        #: Live application handles of admitted jobs.
        self.handles: Dict[str, AppHandle] = {}
        #: Proactive migrations performed: (time, app_id, rank, src, dst).
        self.migrations: List[Tuple[float, str, int, str, str]] = []
        self._closed = False
        self._proc = self.engine.process(self._run(), name="fleet-ctl")

    # ------------------------------------------------------------------
    # the control loop
    # ------------------------------------------------------------------

    def _run(self):
        while not self._closed:
            yield self.engine.timeout(self.tick)
            if self._closed:
                return
            try:
                self.step()
            except DaemonError:
                # A dead or still-converging cluster is not the
                # controller's emergency; keep ticking.
                continue

    def step(self) -> None:
        """One synchronous control-loop iteration (tests call this too)."""
        now = self.engine.now
        from repro.cluster.node import NodeState
        down = {nid for nid, node in self.sf.cluster.nodes.items()
                if node.state is NodeState.DOWN}
        for daemon in self.sf.live_daemons():
            if daemon.gm.paused:
                continue   # a wedged daemon misses its beat
            self.view.observe(daemon.heartbeat(), now)
        self.view.refresh(now, down)
        self.scorer.update(self.view)
        self._lifecycle(now)
        self._poll_jobs(now)
        self._admit(now)

    # ------------------------------------------------------------------
    # drain / cordon lifecycle
    # ------------------------------------------------------------------

    def cordon(self, node_id: str) -> None:
        """Stop placing new work on ``node_id`` (fleet + daemon layer)."""
        self.sf.any_daemon().gm.cast(("node-admin", "disable", node_id))
        info = self.view.row(node_id)
        if info.health is NodeHealth.ACTIVE:
            info.health = NodeHealth.CORDONED
        self._event("fleet.cordon", node=node_id)

    def uncordon(self, node_id: str) -> None:
        self.sf.any_daemon().gm.cast(("node-admin", "enable", node_id))
        info = self.view.row(node_id)
        info.health = NodeHealth.ACTIVE
        info.auto_drained = False
        self._event("fleet.uncordon", node=node_id)

    def drain(self, node_id: str, auto: bool = False) -> None:
        """Cordon, then migrate every primary rank off ``node_id``."""
        self.cordon(node_id)
        info = self.view.row(node_id)
        info.health = NodeHealth.DRAINING
        info.auto_drained = auto
        self._event("fleet.drain", node=node_id, auto=auto)

    def _lifecycle(self, now: float) -> None:
        for nid in sorted(self.view.nodes):
            info = self.view.nodes[nid]
            if info.health is NodeHealth.DOWN:
                continue
            if self.auto_drain and info.suspect \
                    and info.health is NodeHealth.ACTIVE:
                self.drain(nid, auto=True)
            if info.health is NodeHealth.DRAINING:
                self._migrate_off(nid, now)
                if self._empty(nid):
                    info.health = NodeHealth.DRAINED
                    self._event("fleet.drained", node=nid)
            if info.health is NodeHealth.DRAINED \
                    and info.auto_drained and not info.suspect:
                # The suspicion signal cleared and the node is empty:
                # hand it back to the scheduler.
                self.uncordon(nid)

    def _empty(self, node_id: str) -> bool:
        """No active application keeps a primary rank on the node.

        Backup copies under active replication don't block a drain —
        they cannot migrate (refusal-aware path) and their primaries are
        elsewhere by construction.
        """
        registry = self.sf.any_daemon().registry
        return not any(rec.ranks_on(node_id)
                       for rec in registry.active())

    def _migrate_off(self, node_id: str, now: float) -> None:
        """Migrate at most one rank per app per tick off ``node_id``.

        One at a time because each migration is a rollback: casting a
        second migrate while the app is mid-restart would plan from a
        stale record.  The next tick picks up the remaining ranks.
        """
        registry = self.sf.any_daemon().registry
        for rec in registry.active():
            if rec.status is AppStatus.RESTARTING:
                continue
            ranks = rec.ranks_on(node_id)
            if not ranks:
                continue
            if rec.replicas:
                self.registry.counter(
                    "fleet.migrations_refused", reason="replicated",
                    help="proactive migrations the daemon layer refuses"
                ).inc()
                continue
            rank = min(ranks)
            target = self._migration_target(exclude=node_id)
            if target is None:
                self.registry.counter(
                    "fleet.migrations_refused", reason="no-target").inc()
                continue
            try:
                self.sf.migrate(AppHandle(self.sf, rec.app_id), rank,
                                target)
            except (PlacementError, StarfishError):
                self.registry.counter(
                    "fleet.migrations_refused", reason="refused").inc()
                continue
            self.migrations.append((now, rec.app_id, rank, node_id,
                                    target))
            self.registry.counter(
                "fleet.migrations", node=node_id,
                help="ranks proactively migrated off this node").inc()
            self._event("fleet.migrate", app=rec.app_id, rank=rank,
                        src=node_id, dst=target)

    def _migration_target(self, exclude: str) -> Optional[str]:
        candidates = [n for n in self.view.eligible() if n != exclude]
        if not candidates:
            return None
        loads = self.view.loads()
        return min(candidates, key=lambda n: (loads.get(n, 0), n))

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------

    def submit(self, spec: AppSpec) -> FleetJob:
        """Queue one spec with the admission scheduler."""
        return self.scheduler.submit(spec, self.engine.now)

    def _poll_jobs(self, now: float) -> None:
        for job in self.scheduler.running():
            handle = self.handles.get(job.job_id)
            if handle is None:
                continue
            try:
                status = handle.status
            except DaemonError:
                # Not registered yet: the admission cast is in flight.
                continue
            if status is AppStatus.DONE:
                self.scheduler.complete(job, JobState.DONE, now)
            elif status in (AppStatus.FAILED, AppStatus.KILLED):
                self.scheduler.complete(job, JobState.FAILED, now)

    def _admit(self, now: float) -> None:
        for job in self.scheduler.admit_ready(now):
            spec = dataclasses.replace(job.spec, placement=job.placement)
            try:
                self.handles[job.job_id] = self.sf.submit(
                    spec, app_id=job.job_id)
            except (PlacementError, StarfishError) as exc:
                job.state = JobState.REJECTED
                job.reason = REJECT_PLACEMENT
                job.finished_at = now
                self.registry.counter("fleet.jobs_rejected",
                                      tenant=job.tenant,
                                      reason=REJECT_PLACEMENT).inc()
                self._event("fleet.submit_failed", job=job.job_id,
                            error=type(exc).__name__)

    def pending_work(self) -> bool:
        """Any job not yet terminal?"""
        return any(not j.terminal for j in self.scheduler.jobs.values())

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self) -> List[FleetJob]:
        """Stop the loop; rejects still-queued jobs with a typed reason."""
        rejected = self.scheduler.reject_queued(REJECT_SHUTDOWN,
                                                self.engine.now)
        self._closed = True
        return rejected

    # ------------------------------------------------------------------

    def _event(self, name: str, **fields: Any) -> None:
        self.registry.events.emit(self.engine.now, name, **fields)

    def __repr__(self) -> str:
        jobs = self.scheduler.jobs
        running = sum(1 for j in jobs.values()
                      if j.state == JobState.RUNNING)
        return (f"<FleetController jobs={len(jobs)} running={running} "
                f"nodes={len(self.view.nodes)} t={self.engine.now:.6g}>")
