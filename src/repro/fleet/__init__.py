"""The fleet control plane: a multi-tenant orchestrator over Starfish.

Starfish (the paper) is a long-lived daemon fabric that dynamic MPI
programs join and leave; this package supplies the missing service
layer on top of :class:`~repro.core.starfish.StarfishCluster` —
modeled on the ``master_control`` exemplar (central control host +
per-node daemons + heartbeats + fleet database):

* :class:`~repro.fleet.scheduler.JobScheduler` — multi-tenant admission
  queue with per-tenant quotas and deterministic FIFO-within-priority
  ordering;
* :class:`~repro.fleet.view.FleetView` — the fleet database, built from
  structured daemon heartbeats (liveness, ranks, copies, store bytes);
* :class:`~repro.fleet.suspicion.SuspicionScorer` — failure suspicion
  from ``repro.obs`` signals; suspects are proactively drained *before*
  they crash;
* :class:`~repro.fleet.controller.FleetController` — the long-running
  control loop tying the above together (cordon → proactive-migrate →
  confirm-empty);
* :class:`~repro.fleet.api.ControlAPI` /
  :class:`~repro.fleet.http.FleetHTTPServer` — one JSON surface, served
  in-sim and over real HTTP (``repro fleet serve``);
* :class:`~repro.fleet.oracle.FleetOracle` — the invariant gate (no
  quota breach, no placement on forbidden nodes, typed terminal states).

See DESIGN.md §18 for the architecture diagram, the suspicion-score
formula, and the drain state machine.
"""

from repro.fleet.api import ControlAPI
from repro.fleet.campaign import (run_fleet_churn, sweep_fleet_churn,
                                  report_bytes)
from repro.fleet.controller import FleetController
from repro.fleet.http import FleetHTTPServer
from repro.fleet.oracle import FleetOracle
from repro.fleet.scheduler import (Admission, FleetJob, JobScheduler,
                                   JobState, REJECT_PLACEMENT,
                                   REJECT_QUOTA, REJECT_REASONS,
                                   REJECT_SHUTDOWN, TenantQuota)
from repro.fleet.suspicion import SuspicionConfig, SuspicionScorer
from repro.fleet.view import FleetView, NodeHealth, NodeInfo

__all__ = [
    "ControlAPI", "FleetController", "FleetHTTPServer", "FleetOracle",
    "FleetView", "NodeHealth", "NodeInfo",
    "JobScheduler", "FleetJob", "JobState", "Admission", "TenantQuota",
    "REJECT_QUOTA", "REJECT_PLACEMENT", "REJECT_SHUTDOWN",
    "REJECT_REASONS",
    "SuspicionConfig", "SuspicionScorer",
    "run_fleet_churn", "sweep_fleet_churn", "report_bytes",
]
