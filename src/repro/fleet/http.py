"""A thin real HTTP gateway over the in-sim ControlAPI.

``repro fleet serve`` boots a simulated cluster + fleet controller and
exposes the :class:`~repro.fleet.api.ControlAPI` through a stdlib
``http.server`` — real sockets, real curl, simulated cluster::

    GET  /v1/nodes               fleet view (JSON)
    GET  /v1/jobs                all jobs (JSON)
    GET  /v1/jobs/<job_id>       one job (JSON)
    GET  /metrics[?tenant=x]     Prometheus text (per-tenant filtered)
    POST /v1/submit              {"tenant", "program", "nprocs", ...}
    POST /v1/migrate             {"app_id", "rank", "target"}
    POST /v1/drain               {"node"}
    POST /v1/uncordon            {"node"}
    POST /v1/step                {"dt": seconds}  -- advance sim time

The server is deliberately single-threaded: the simulation engine is not
thread-safe, so requests serialize and the sim only advances inside an
explicit ``/v1/step`` (or between requests, driven by the CLI loop).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.fleet.api import ControlAPI

#: GET path -> ControlAPI op (POST ops are /v1/<op> verbatim).
_POST_OPS = ("submit", "migrate", "drain", "uncordon", "step")


class FleetHTTPServer:
    """Owns the listening socket; serve inline or on a helper thread."""

    def __init__(self, api: ControlAPI, host: str = "127.0.0.1",
                 port: int = 0):
        self.api = api
        gateway = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):   # quiet by default
                pass

            def do_GET(self):
                status, ctype, body = gateway._get(self.path)
                self._reply(status, ctype, body)

            def do_POST(self):
                # A malformed Content-Length is the *client's* error:
                # answer 400 JSON instead of letting int() raise (which
                # surfaces as a 500 and wedges the keep-alive
                # connection mid-stream).  The body length is unknown
                # then, so the connection must close.
                try:
                    length = int(self.headers.get("Content-Length", 0))
                except ValueError:
                    self.close_connection = True
                    status, ctype, body = gateway._json(
                        {"ok": False, "error": "BadRequest",
                         "message": "malformed Content-Length header"})
                    self._reply(status, ctype, body)
                    return
                raw = self.rfile.read(length) if length > 0 else b"{}"
                status, ctype, body = gateway._post(self.path, raw)
                self._reply(status, ctype, body)

            def _reply(self, status: int, ctype: str, body: bytes):
                # A client may hang up mid-reply; that is its
                # prerogative, not a server crash.  Drop the connection
                # quietly (the handler would otherwise die with an
                # unhandled BrokenPipeError / ConnectionResetError).
                try:
                    self.send_response(status)
                    self.send_header("Content-Type", ctype)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    self.close_connection = True

        self._server = HTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # request handling (thread-unsafe by design; requests serialize in
    # the single-threaded HTTPServer)
    # ------------------------------------------------------------------

    def _get(self, path: str) -> Tuple[int, str, bytes]:
        parsed = urlparse(path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        if parsed.path == "/metrics":
            response = self.api.handle({"op": "metrics", **query})
            if response["ok"]:
                return (200, "text/plain; version=0.0.4",
                        response["text"].encode())
            return self._json(response)
        if parts[:2] == ["v1", "nodes"]:
            return self._json(self.api.handle({"op": "nodes"}))
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 3:
                return self._json(self.api.handle(
                    {"op": "status", "job_id": parts[2]}))
            return self._json(self.api.handle({"op": "jobs"}))
        return self._json({"ok": False, "error": "NotFound",
                           "message": f"no route {parsed.path!r}"})

    def _post(self, path: str, raw: bytes) -> Tuple[int, str, bytes]:
        parts = [p for p in urlparse(path).path.split("/") if p]
        if len(parts) == 2 and parts[0] == "v1" and parts[1] in _POST_OPS:
            try:
                body: Dict[str, Any] = json.loads(raw.decode() or "{}")
            except json.JSONDecodeError as exc:
                return self._json({"ok": False, "error": "BadRequest",
                                   "message": f"invalid JSON: {exc}"})
            return self._json(self.api.handle({"op": parts[1], **body}))
        return self._json({"ok": False, "error": "NotFound",
                           "message": f"no route {path!r}"})

    @staticmethod
    def _json(response: Dict[str, Any]) -> Tuple[int, str, bytes]:
        status = 200 if response.get("ok") else (
            404 if response.get("error") in ("NotFound", "UnknownOp",
                                             "KeyError") else 400)
        body = json.dumps(response, sort_keys=True).encode()
        return status, "application/json", body

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def start_background(self) -> "FleetHTTPServer":
        """Serve on a helper thread (tests / ``--self-test``)."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="fleet-http", daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
