"""The FleetOracle: invariants of the fleet control plane.

Checked after (or during) a fleet run, typically across a perturbation
sweep (``repro fleet churn --seeds N``):

1. **No quota breach** — no tenant's concurrent ranks/apps ever exceeded
   its :class:`~repro.fleet.scheduler.TenantQuota` (high-water marks are
   recorded at every admission, so a transient breach can't hide).
2. **No placement on forbidden nodes** — every admission's placement is
   disjoint from the nodes that were cordoned, draining, suspect, or
   down at that admission.
3. **Typed terminal states** — every job is terminal (done, failed, or
   rejected), and every rejection carries one of the typed reasons in
   :data:`~repro.fleet.scheduler.REJECT_REASONS`.
"""

from __future__ import annotations

from typing import List

from repro.errors import FleetOracleViolation
from repro.fleet.scheduler import JobScheduler, JobState, REJECT_REASONS


class FleetOracle:
    """Validates one scheduler's history; raises on demand."""

    def check(self, scheduler: JobScheduler,
              require_terminal: bool = True) -> List[str]:
        """All violations found (empty = green)."""
        violations: List[str] = []
        for tenant, (ranks, apps) in sorted(scheduler.high_water.items()):
            quota = scheduler.quota(tenant)
            if quota.max_ranks is not None and ranks > quota.max_ranks:
                violations.append(
                    f"quota breach: tenant {tenant} reached {ranks} "
                    f"concurrent ranks (max {quota.max_ranks})")
            if quota.max_apps is not None and apps > quota.max_apps:
                violations.append(
                    f"quota breach: tenant {tenant} reached {apps} "
                    f"concurrent apps (max {quota.max_apps})")
        for adm in scheduler.admissions:
            bad = sorted(set(adm.placement.values()) & set(adm.forbidden))
            if bad:
                violations.append(
                    f"forbidden placement: {adm.job_id} admitted onto "
                    f"{','.join(bad)} at t={adm.time:.6f}")
        for job_id in sorted(scheduler.jobs):
            job = scheduler.jobs[job_id]
            if job.state == JobState.REJECTED \
                    and job.reason not in REJECT_REASONS:
                violations.append(
                    f"untyped rejection: {job_id} rejected with "
                    f"reason {job.reason!r}")
            elif require_terminal and not job.terminal:
                violations.append(
                    f"non-terminal job: {job_id} ended as {job.state}")
        return violations

    def verify(self, scheduler: JobScheduler,
               require_terminal: bool = True) -> None:
        """Raise :class:`FleetOracleViolation` on the first violation."""
        violations = self.check(scheduler,
                                require_terminal=require_terminal)
        if violations:
            raise FleetOracleViolation(
                f"{len(violations)} fleet invariant violation(s): "
                + "; ".join(violations))
