"""Named, ready-to-run fault campaigns (the ``repro chaos`` registry).

A :class:`Campaign` bundles a default cluster size, a workload factory
and a plan factory.  Plans are *campaign-relative*: time 0 is the moment
the runner applies the plan (right after the booted group settles).

The ``standard`` campaign is the acceptance gate exercised across every
C/R protocol x FT policy pair by ``benchmarks/bench_campaign_matrix.py``:
a crash of an app-hosting node, recovery, a partition that isolates a
spare node (healing itself), and a frame-loss window on the Ethernet
control path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cluster.spec import ClusterSpec
from repro.core.appspec import AppSpec, CheckpointConfig
from repro.core.policies import FaultPolicy
from repro.errors import CampaignError
from repro.faults.actions import (CrashNode, DaemonPause, FrameLossWindow,
                                  Partition, RecoverNode)
from repro.faults.invariants import ALL_CHECKERS, CheckpointSurvivability
from repro.faults.plan import FaultPlan


def _default_workload(protocol: Optional[str], policy, nodes: int) -> AppSpec:
    """A deterministic, crash-spanning workload: ComputeSleep stretches
    virtual time well past the last fault, and its per-rank results (the
    number of steps each rank executed) make golden-run comparison
    exact."""
    from repro.apps import ComputeSleep
    checkpoint = (CheckpointConfig(protocol=protocol, level="vm",
                                   interval=0.8,
                                   replicas=2 if protocol == "replication"
                                   else 1)
                  if protocol is not None else CheckpointConfig())
    return AppSpec(program=ComputeSleep, nprocs=3,
                   params={"steps": 30, "step_time": 0.25,
                           "state_bytes": 4096},
                   ft_policy=FaultPolicy.of(policy),
                   checkpoint=checkpoint)


@dataclass(frozen=True)
class Campaign:
    """A named fault schedule + workload combination."""

    name: str
    description: str
    plan: Callable[[str, int], FaultPlan]       # (app_id, nodes) -> plan
    workload: Callable[[Optional[str], Any, int], AppSpec] = _default_workload
    nodes: int = 5
    #: Optional base ClusterSpec (runner overrides nodes/seed).
    cluster_spec: Optional[Any] = None
    #: False for campaigns that are *supposed* to kill the system (the
    #: runner/bench then expects a typed StarfishError, not completion).
    expect_completion: bool = True
    #: Optional checker suite override (``None`` = ALL_CHECKERS).
    checkers: Optional[Tuple[Any, ...]] = None


def _jacobi_workload(protocol: Optional[str], policy, nodes: int) -> AppSpec:
    """A communication-heavy workload (nearest-neighbour halo exchange +
    one allreduce per step): under the message-logging protocols the
    crashed rank's replay actually has channel history to re-feed, and
    the converged residual makes golden-run comparison exact."""
    from repro.apps import Jacobi1D
    checkpoint = (CheckpointConfig(protocol=protocol, level="native",
                                   interval=0.8,
                                   replicas=2 if protocol == "replication"
                                   else 1)
                  if protocol is not None else CheckpointConfig())
    return AppSpec(program=Jacobi1D, nprocs=3,
                   params={"n": 120, "iterations": 150, "iters_per_step": 10,
                           "compute_ns_per_cell": 500_000},
                   ft_policy=FaultPolicy.of(policy),
                   checkpoint=checkpoint)


def _solo_crash_plan(app_id: str, nodes: int) -> FaultPlan:
    return (FaultPlan()
            .at(1.2, CrashNode(pick="app-host", app_id=app_id))
            .at(3.0, RecoverNode()))


def _standard_plan(app_id: str, nodes: int) -> FaultPlan:
    return (FaultPlan()
            .at(1.0, CrashNode(pick="app-host", app_id=app_id))
            .at(2.5, RecoverNode())
            .at(4.0, Partition(isolate="spare", app_id=app_id,
                               duration=1.0))
            .at(6.0, FrameLossWindow(prob=0.05, duration=1.0,
                                     fabric="tcp-ethernet")))


def _crash_recover_plan(app_id: str, nodes: int) -> FaultPlan:
    return (FaultPlan()
            .at(1.0, CrashNode(pick="app-host", app_id=app_id))
            .at(3.0, RecoverNode()))


def _partition_flap_plan(app_id: str, nodes: int) -> FaultPlan:
    return (FaultPlan()
            .at(1.0, Partition(isolate="spare", app_id=app_id, duration=0.8))
            .at(3.0, Partition(isolate="spare", app_id=app_id, duration=0.8)))


def _loss_soak_plan(app_id: str, nodes: int) -> FaultPlan:
    return (FaultPlan()
            .randomly(2, 0.5, 4.0,
                      FrameLossWindow(prob=0.08, duration=0.75,
                                      fabric="tcp-ethernet")))


def _pause_plan(app_id: str, nodes: int) -> FaultPlan:
    return (FaultPlan()
            .at(1.0, DaemonPause(duration=1.0, pick="spare",
                                 app_id=app_id)))


def _crash_burst_plan(app_id: str, nodes: int) -> FaultPlan:
    """Two spaced crash/recover pairs, each landing on an app host after
    at least one recovery line has committed (interval 0.8) — the
    k-replicated store must keep every committed line restorable
    throughout (at most k-1 = 1 node is ever down at once)."""
    return (FaultPlan()
            .at(1.2, CrashNode(pick="app-host", app_id=app_id))
            .at(2.8, RecoverNode())
            .at(4.4, CrashNode(pick="app-host", app_id=app_id))
            .at(6.0, RecoverNode()))


def _fleet_churn_plan(app_id: str, nodes: int) -> FaultPlan:
    """The fleet control plane's churn schedule (see
    :mod:`repro.fleet.campaign`, which layers tenants + a controller on
    the same timeline): degrade ``n3``'s disk, open a loss window, crash
    and recover ``n3``, then crash and recover the last node."""
    from repro.faults.actions import DiskSlowdown
    last = f"n{nodes - 1}"
    return (FaultPlan()
            .at(1.5, DiskSlowdown(node="n3", factor=6.0, duration=3.0))
            .at(4.5, FrameLossWindow(prob=0.05, duration=1.0,
                                     fabric="tcp-ethernet"))
            .at(6.0, CrashNode(node="n3", cause="fleet-churn"))
            .at(8.0, RecoverNode(node="n3"))
            .at(9.0, CrashNode(node=last, cause="fleet-churn"))
            .at(11.0, RecoverNode(node=last)))


def _blackout_plan(app_id: str, nodes: int) -> FaultPlan:
    plan = FaultPlan()
    for i in range(nodes):
        plan.at(1.0 + 0.1 * i, CrashNode(node=f"n{i}", cause="blackout"))
    return plan


CAMPAIGNS: Dict[str, Campaign] = {c.name: c for c in (
    Campaign(
        name="standard",
        description="crash an app host, recover it, isolate+heal a spare "
                    "node, then a 1s Ethernet loss window",
        plan=_standard_plan),
    Campaign(
        name="crash-recover",
        description="crash one app-hosting node, recover it 2s later",
        plan=_crash_recover_plan),
    Campaign(
        name="partition-flap",
        description="twice isolate a spare node for 0.8s (merge-on-heal)",
        plan=_partition_flap_plan),
    Campaign(
        name="loss-soak",
        description="two seeded-random 0.75s Ethernet loss windows",
        plan=_loss_soak_plan),
    Campaign(
        name="daemon-pause",
        description="freeze a spare node's daemon for 1s (suspect, "
                    "exclude, gossip re-merge)",
        plan=_pause_plan),
    Campaign(
        name="store-crash-burst",
        description="two spaced app-host crashes against a k=2 replicated "
                    "checkpoint store; CheckpointSurvivability(k) must stay "
                    "green (every committed line restorable)",
        plan=_crash_burst_plan,
        cluster_spec=ClusterSpec(replication_factor=2),
        checkers=ALL_CHECKERS + (CheckpointSurvivability(),)),
    Campaign(
        name="tier-failover",
        description="two spaced app-host crashes against the full "
                    "L1-memory/L2-disk/L3-fabric tiered store with delta "
                    "checkpoints; recovery shrinks to the fastest "
                    "surviving tier and CheckpointSurvivability(k) must "
                    "stay green",
        plan=_crash_burst_plan,
        cluster_spec=ClusterSpec(
            store_tiers=("memory", "disk", "fabric"),
            replication_factor=2, delta_depth=3),
        checkers=ALL_CHECKERS + (CheckpointSurvivability(),)),
    Campaign(
        name="solo-crash",
        description="crash one app-hosting node mid-exchange under a "
                    "message-passing workload, recover it later; built for "
                    "the logging protocols' single-rank restart (but runs "
                    "under any protocol)",
        plan=_solo_crash_plan,
        workload=_jacobi_workload),
    Campaign(
        name="replica-failover",
        description="crash a primary-hosting node under active rank "
                    "replication (k=2), recover it later; the rank fails "
                    "over to its surviving copy with zero ranks restarted "
                    "and no rollback wave (runs under any protocol; only "
                    "'replication' places copies)",
        plan=_solo_crash_plan),
    Campaign(
        name="fleet-churn",
        description="the fleet control plane's churn schedule: disk "
                    "slowdown on n3, an Ethernet loss window, crash + "
                    "recover n3, crash + recover the last node",
        plan=_fleet_churn_plan,
        nodes=8),
    Campaign(
        name="blackout",
        description="crash every node; the run must fail with a typed "
                    "MajorityLost, never hang",
        plan=_blackout_plan,
        expect_completion=False),
)}


def get_campaign(name: str) -> Campaign:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise CampaignError(
            f"unknown campaign {name!r} (known: {known})") from None
