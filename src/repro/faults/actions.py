"""Typed fault actions.

Each action is a frozen dataclass describing *what* to do to the cluster;
*when* is a trigger's business (:mod:`repro.faults.plan`) and *doing it*
goes through the :class:`~repro.faults.plan.FaultInjector`, which resolves
symbolic targets, applies the mechanism, logs the action, and schedules
the automatic revert of windowed actions (``duration=...``).

Target selection: actions that name no explicit node pick one at fire
time via ``pick``:

* ``"random"`` — uniformly among schedulable nodes (seeded stream
  ``faults.pick`` — deterministic per engine seed);
* ``"app-host"`` — the highest node currently hosting a rank of
  ``app_id`` (requires a Starfish system and the app to exist);
* ``"spare"`` — the highest schedulable node hosting *no* rank of
  ``app_id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import CampaignError


@dataclass(frozen=True)
class FaultAction:
    """Base class; subclasses define ``name`` and :meth:`apply`."""

    name = "fault"

    def apply(self, inj) -> Dict[str, object]:
        """Execute against ``inj`` (a FaultInjector); returns log detail."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class CrashNode(FaultAction):
    """Fail-stop a workstation (NICs detach, hosted processes die)."""

    node: Optional[str] = None
    pick: str = "random"
    app_id: Optional[str] = None
    cause: str = "fault-campaign"

    name = "crash-node"

    def apply(self, inj) -> Dict[str, object]:
        nid = inj.resolve_node(self.node, self.pick, self.app_id)
        hosts_app = (self.app_id is not None
                     and nid in inj.app_nodes(self.app_id))
        inj.cluster.crash_node(nid, cause=self.cause)
        inj.note_crash(nid)
        detail: Dict[str, object] = {"node": nid}
        if self.app_id is not None:
            detail["hosts_app"] = hosts_app
        return detail


@dataclass(frozen=True)
class RecoverNode(FaultAction):
    """Bring a crashed node back (re-attach NICs; reboot its daemon when
    the injector is attached to a Starfish system)."""

    node: Optional[str] = None        # None = most recently crashed

    name = "recover-node"

    def apply(self, inj) -> Dict[str, object]:
        nid = self.node if self.node is not None else inj.pop_crashed()
        if nid is None:
            raise CampaignError("RecoverNode: no crashed node to recover")
        if inj.starfish is not None:
            inj.starfish.recover_node(nid)
        else:
            inj.cluster.recover_node(nid)
        return {"node": nid}


@dataclass(frozen=True)
class Partition(FaultAction):
    """Split BOTH fabrics (a switch failure).

    Either give explicit ``groups`` (iterables of node ids; unlisted
    nodes form one implicit extra group) or ``isolate`` one node (an id
    or a ``pick`` spec) from everything else.  With ``duration`` the
    partition heals itself after that many simulated seconds.
    """

    groups: Optional[Tuple[Tuple[str, ...], ...]] = None
    isolate: Optional[str] = None
    app_id: Optional[str] = None
    duration: Optional[float] = None

    name = "partition"

    def __post_init__(self):
        if (self.groups is None) == (self.isolate is None):
            raise ValueError("Partition: give exactly one of groups/isolate")
        if self.groups is not None and not isinstance(self.groups, tuple):
            object.__setattr__(
                self, "groups", tuple(tuple(g) for g in self.groups))

    def apply(self, inj) -> Dict[str, object]:
        if self.isolate is not None:
            if self.isolate in inj.cluster.nodes:
                nid = self.isolate
            else:
                nid = inj.resolve_node(None, self.isolate, self.app_id)
            rest = tuple(sorted(n for n in inj.cluster.nodes if n != nid))
            groups: Tuple[Tuple[str, ...], ...] = ((nid,), rest)
        else:
            groups = self.groups
        for fabric in (inj.cluster.ethernet, inj.cluster.myrinet):
            fabric.set_partition(*groups)
        inj.partition_depth += 1
        if self.duration is not None:
            inj.schedule_revert(self.duration, Heal())
        return {"groups": "|".join(",".join(g) for g in groups)}


@dataclass(frozen=True)
class Heal(FaultAction):
    """Remove any partition from both fabrics."""

    name = "heal"

    def apply(self, inj) -> Dict[str, object]:
        for fabric in (inj.cluster.ethernet, inj.cluster.myrinet):
            fabric.clear_partition()
        inj.partition_depth = max(0, inj.partition_depth - 1)
        return {}


@dataclass(frozen=True)
class FrameLossWindow(FaultAction):
    """Silent frame loss on a fabric for a bounded window.

    Defaults to the Ethernet control path, which is loss-tolerant (ARQ
    connections; retransmitting GCS sublayer).  The Myrinet data path
    models hardware the paper treats as reliable — injecting loss there
    stalls MPI traffic, so only do it deliberately.  ``duration=None``
    means "until further notice" (the legacy builder ``loss_prob``).
    """

    prob: float = 0.05
    duration: Optional[float] = None
    fabric: str = "tcp-ethernet"      # "tcp-ethernet" | "bip-myrinet" | "both"

    name = "frame-loss"

    def apply(self, inj) -> Dict[str, object]:
        fabrics = {"tcp-ethernet": [inj.cluster.ethernet],
                   "bip-myrinet": [inj.cluster.myrinet],
                   "both": [inj.cluster.ethernet, inj.cluster.myrinet]}
        try:
            targets = fabrics[self.fabric]
        except KeyError:
            raise CampaignError(
                f"FrameLossWindow: unknown fabric {self.fabric!r}") from None
        restores = [(f, f.set_loss(self.prob)) for f in targets]
        inj.loss_depth += 1
        if self.duration is not None:
            inj.schedule_revert(self.duration, _LossRestore(
                pairs=tuple((f.spec.name, prev) for f, prev in restores)))
        return {"fabric": self.fabric, "prob": self.prob}


@dataclass(frozen=True)
class _LossRestore(FaultAction):
    """Internal revert of a FrameLossWindow."""

    pairs: Tuple[Tuple[str, float], ...] = ()

    name = "frame-loss-end"

    def apply(self, inj) -> Dict[str, object]:
        by_name = {"tcp-ethernet": inj.cluster.ethernet,
                   "bip-myrinet": inj.cluster.myrinet}
        for fname, prev in self.pairs:
            by_name[fname].set_loss(prev)
        inj.loss_depth = max(0, inj.loss_depth - 1)
        return {"fabric": "+".join(f for f, _ in self.pairs)}


@dataclass(frozen=True)
class DiskSlowdown(FaultAction):
    """Degrade a node's disk bandwidth by ``factor`` for ``duration``."""

    factor: float = 4.0
    duration: Optional[float] = None
    node: Optional[str] = None        # None = every up node

    name = "disk-slowdown"

    def apply(self, inj) -> Dict[str, object]:
        if self.factor <= 0:
            raise CampaignError("DiskSlowdown: factor must be > 0")
        nodes = ([self.node] if self.node is not None
                 else sorted(n.node_id for n in inj.cluster.up_nodes()))
        saved = []
        for nid in nodes:
            disk = inj.cluster.node(nid).disk
            saved.append((nid, disk.write_bandwidth, disk.read_bandwidth))
            disk.write_bandwidth /= self.factor
            disk.read_bandwidth /= self.factor
        if self.duration is not None:
            inj.schedule_revert(self.duration,
                                _DiskRestore(saved=tuple(saved)))
        return {"nodes": ",".join(nodes), "factor": self.factor}


@dataclass(frozen=True)
class _DiskRestore(FaultAction):
    """Internal revert of a DiskSlowdown."""

    saved: Tuple[Tuple[str, float, float], ...] = ()

    name = "disk-slowdown-end"

    def apply(self, inj) -> Dict[str, object]:
        for nid, wbw, rbw in self.saved:
            if nid in inj.cluster.nodes:
                disk = inj.cluster.node(nid).disk
                disk.write_bandwidth = wbw
                disk.read_bandwidth = rbw
        return {"nodes": ",".join(n for n, _, _ in self.saved)}


@dataclass(frozen=True)
class DaemonPause(FaultAction):
    """Freeze one node's Starfish daemon (GC-pause / scheduler stall
    model): its group member neither receives nor sends protocol traffic
    for ``duration``, so the group suspects and excludes it; on resume it
    rejoins via the gossip merge path.  Requires a Starfish system.
    """

    duration: float = 1.0
    node: Optional[str] = None
    pick: str = "random"
    app_id: Optional[str] = None

    name = "daemon-pause"

    def apply(self, inj) -> Dict[str, object]:
        if inj.starfish is None:
            raise CampaignError("DaemonPause needs a StarfishCluster target")
        nid = inj.resolve_node(self.node, self.pick, self.app_id)
        daemon = inj.starfish.daemons.get(nid)
        if daemon is None:
            raise CampaignError(f"DaemonPause: no daemon on {nid!r}")
        daemon.gm.paused = True
        inj.paused_nodes.add(nid)
        inj.schedule_revert(self.duration, _DaemonResume(node=nid))
        return {"node": nid, "duration": self.duration}


@dataclass(frozen=True)
class _DaemonResume(FaultAction):
    """Internal revert of a DaemonPause."""

    node: str = ""

    name = "daemon-resume"

    def apply(self, inj) -> Dict[str, object]:
        daemon = inj.starfish.daemons.get(self.node)
        if daemon is not None:
            daemon.gm.paused = False
        inj.paused_nodes.discard(self.node)
        return {"node": self.node}
