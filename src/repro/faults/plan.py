"""Fault plans: triggers + actions, scheduled through one injector.

A :class:`FaultPlan` is an ordered list of ``(trigger, action)`` steps.
Triggers expand to absolute virtual times when the plan is applied;
:class:`Randomly` draws its times from the engine's seeded RNG streams,
so the whole schedule — and therefore the whole campaign — is a pure
function of the engine seed.

The :class:`FaultInjector` is the single execution point: it resolves
symbolic targets, applies the mechanism, appends to a deterministic
action log (byte-identical across same-seed runs), bumps the
``faults.injected`` counter and emits a ``fault.inject`` event per
action through ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import CampaignError
from repro.faults.actions import FaultAction
from repro.obs.registry import get_registry

# ---------------------------------------------------------------------------
# triggers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class At:
    """Fire once at an absolute virtual time (campaign-relative when the
    plan is applied with an offset)."""

    time: float

    def times(self, engine) -> Tuple[float, ...]:
        return (self.time,)


@dataclass(frozen=True)
class Every:
    """Fire ``count`` times, ``period`` apart, starting at ``start``."""

    period: float
    count: int
    start: float = 0.0

    def times(self, engine) -> Tuple[float, ...]:
        return tuple(self.start + i * self.period for i in range(self.count))


@dataclass(frozen=True)
class Randomly:
    """``count`` seeded-uniform times in ``[start, end)``.

    Drawn from ``engine.rng.stream(stream)`` when the plan is applied —
    same seed, same schedule.
    """

    count: int
    start: float
    end: float
    stream: str = "faults.times"

    def times(self, engine) -> Tuple[float, ...]:
        rng = engine.rng.stream(self.stream)
        span = self.end - self.start
        return tuple(sorted(self.start + span * float(u)
                            for u in rng.random(self.count)))


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------


class FaultInjector:
    """Owns all fault injection against one cluster.

    Obtained via ``cluster.faults`` / ``sf.faults`` (one per cluster, so
    the action log is complete) — not constructed directly.
    """

    def __init__(self, cluster, starfish=None):
        self.cluster = cluster
        self.engine = cluster.engine
        self.starfish = starfish
        #: Deterministic fire log: (virtual time, action name, detail).
        self.log: List[Tuple[float, str, Dict[str, Any]]] = []
        #: Currently-open partition windows (invariant checkers skip view
        #: agreement while a partition is active).
        self.partition_depth = 0
        #: Currently-open frame-loss windows.
        self.loss_depth = 0
        self.paused_nodes: Set[str] = set()
        #: Absolute times of every scheduled (not yet necessarily fired)
        #: action, including windowed reverts as they get scheduled.  The
        #: campaign runner uses this to place its convergence points.
        self.scheduled: List[float] = []
        self._crashed: List[str] = []
        self._registry = get_registry(self.engine)

    # -- scheduling --------------------------------------------------------

    def at(self, time: float, action: FaultAction) -> "FaultInjector":
        """Schedule ``action`` at absolute virtual ``time`` (chainable)."""
        time = max(time, self.engine.now)
        delay = time - self.engine.now
        self.scheduled.append(time)
        ev = self.engine.timeout(delay, name=f"fault:{action.name}")
        ev.callbacks.append(lambda _e: self.fire(action))
        return self

    def fire(self, action: FaultAction) -> Dict[str, Any]:
        """Execute ``action`` now; log it; return its detail dict."""
        detail = action.apply(self)
        self._log(action.name, detail)
        return detail

    def schedule_revert(self, delay: float, action: FaultAction) -> None:
        """Used by windowed actions to schedule their own end."""
        self.at(self.engine.now + delay, action)

    # -- log & telemetry ---------------------------------------------------

    def _log(self, name: str, detail: Dict[str, Any]) -> None:
        self.log.append((self.engine.now, name, dict(detail)))
        self._registry.counter(
            "faults.injected", action=name,
            help="fault actions fired, by action type").inc()
        self._registry.events.emit(self.engine.now, "fault.inject",
                                   action=name, **detail)

    def log_lines(self) -> List[str]:
        """The action log as stable text lines (same seed = same bytes)."""
        out = []
        for t, name, detail in self.log:
            fields = " ".join(f"{k}={detail[k]}" for k in sorted(detail))
            out.append(f"t={t:.9f} {name}" + (f" {fields}" if fields else ""))
        return out

    # -- target resolution -------------------------------------------------

    def app_nodes(self, app_id: str) -> Set[str]:
        """Nodes currently hosting ranks of ``app_id`` (empty if unknown)."""
        if self.starfish is None:
            return set()
        for daemon in self.starfish.live_daemons():
            record = daemon.registry.maybe(app_id)
            if record is not None:
                return set(record.placement.values())
        return set()

    def resolve_node(self, node: Optional[str], pick: str,
                     app_id: Optional[str]) -> str:
        if node is not None:
            if node not in self.cluster.nodes:
                raise CampaignError(f"unknown node {node!r}")
            return node
        candidates = sorted(n.node_id for n in self.cluster.schedulable_nodes())
        if not candidates:
            raise CampaignError("no schedulable node to target")
        if pick == "random":
            rng = self.engine.rng.stream("faults.pick")
            return candidates[int(rng.integers(len(candidates)))]
        if pick in ("app-host", "spare"):
            if app_id is None:
                raise CampaignError(f"pick={pick!r} needs app_id")
            hosting = self.app_nodes(app_id)
            pool = [n for n in candidates
                    if (n in hosting) == (pick == "app-host")]
            if not pool:
                raise CampaignError(
                    f"pick={pick!r}: no matching node for app {app_id!r} "
                    f"(hosting={sorted(hosting)})")
            return pool[-1]
        raise CampaignError(f"unknown pick spec {pick!r}")

    def note_crash(self, node_id: str) -> None:
        self._crashed.append(node_id)

    def pop_crashed(self) -> Optional[str]:
        return self._crashed.pop() if self._crashed else None

    def __repr__(self) -> str:
        return (f"<FaultInjector fired={len(self.log)} "
                f"partitions={self.partition_depth} loss={self.loss_depth}>")


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


class FaultPlan:
    """A declarative schedule of fault actions."""

    def __init__(self, steps: Optional[List[Tuple[Any, FaultAction]]] = None):
        self.steps: List[Tuple[Any, FaultAction]] = list(steps or [])

    # builder helpers (each returns self for chaining)

    def add(self, trigger, action: FaultAction) -> "FaultPlan":
        self.steps.append((trigger, action))
        return self

    def at(self, time: float, action: FaultAction) -> "FaultPlan":
        return self.add(At(time), action)

    def every(self, period: float, count: int, action: FaultAction,
              start: float = 0.0) -> "FaultPlan":
        return self.add(Every(period=period, count=count, start=start), action)

    def randomly(self, count: int, start: float, end: float,
                 action: FaultAction,
                 stream: str = "faults.times") -> "FaultPlan":
        return self.add(Randomly(count=count, start=start, end=end,
                                 stream=stream), action)

    # execution

    def apply_to(self, target, offset: float = 0.0) -> FaultInjector:
        """Schedule every step onto ``target`` (a ``Cluster`` or a
        ``StarfishCluster``); returns the target's injector.

        ``offset`` shifts all trigger times (campaign-relative plans).
        NOTE: trigger times are expanded *now*; Randomly draws from the
        engine RNG at this point.
        """
        inj = target.faults
        for trigger, action in self.steps:
            for t in trigger.times(inj.engine):
                inj.at(offset + t, action)
        return inj

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.steps)} steps>"
