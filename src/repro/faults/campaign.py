"""The campaign runner: workload + fault plan + invariant checks.

A campaign run is ReStore-style scripted failure replay:

1. (optionally) run the *same* workload on a fault-free cluster built
   from the same :class:`~repro.cluster.spec.ClusterSpec` — the golden
   run — and record its per-rank results;
2. build a fresh cluster, submit the workload, apply the
   :class:`~repro.faults.plan.FaultPlan`;
3. after every convergence point (each fault action plus a settle
   grace), run the non-final invariant checkers;
4. drive the workload to its end, drain any open fault windows, settle,
   and run the full checker suite (including the golden-run comparison);
5. emit a JSON-serializable :class:`CampaignReport` whose content is a
   pure function of the campaign + seed (no wall-clock, no process-
   global identifiers) — two same-seed runs produce identical bytes.

If the plan pushes the system past what the protocols absorb (e.g. a
blackout kills every daemon), the run degrades *gracefully*: a typed
:class:`~repro.errors.StarfishError` subclass is recorded (or raised
with ``raise_on_error=True``), never a hang.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.policies import FaultPolicy
from repro.errors import CampaignError, ReproError, StarfishError
from repro.faults.invariants import ALL_CHECKERS


@dataclass
class CampaignContext:
    """What invariant checkers get to look at."""

    sf: Any                       # StarfishCluster
    handle: Any                   # AppHandle
    spec: Any                     # AppSpec of the workload
    injector: Any                 # FaultInjector
    golden: Optional[Dict[int, Any]] = None
    phase: str = "mid"            # "mid" | "final"

    @property
    def policy_value(self) -> str:
        return FaultPolicy.of(self.spec.ft_policy).value

    @property
    def app_was_hit(self) -> bool:
        """Did any crash land on a node hosting a rank of the app?"""
        return any(name == "crash-node" and detail.get("hosts_app")
                   for _t, name, detail in self.injector.log)


@dataclass
class CampaignReport:
    """JSON-serializable outcome of one campaign run."""

    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def status(self) -> str:
        return self.data.get("status", "unknown")

    @property
    def violations(self) -> List[Dict[str, Any]]:
        return [c for c in self.data.get("checks", []) if c["violations"]]

    @property
    def ok(self) -> bool:
        return self.status == "completed" and not self.violations

    def to_json(self) -> str:
        return json.dumps(self.data, sort_keys=True, indent=2,
                          default=repr) + "\n"

    def summary(self) -> str:
        d = self.data
        lines = [f"campaign {d['campaign']!r} seed={d['seed']} "
                 f"protocol={d['protocol']} policy={d['policy']} "
                 f"-> {d['status']}"]
        if d.get("error"):
            lines.append(f"  error: {d['error']['type']}: "
                         f"{d['error']['message']}")
        lines.append(f"  actions fired: {len(d.get('actions', []))}, "
                     f"checks: {len(d.get('checks', []))}, "
                     f"violations: {len(self.violations)}")
        for c in self.violations:
            for v in c["violations"]:
                lines.append(f"  VIOLATION [{c['checker']} @t={c['time']}] "
                             f"{v}")
        return "\n".join(lines)


class CampaignRunner:
    """Drive one named campaign against one protocol/policy pair."""

    def __init__(self, campaign, *, seed: int = 0,
                 protocol: Optional[str] = "stop-and-sync",
                 policy: Any = FaultPolicy.RESTART,
                 nodes: Optional[int] = None,
                 checkers=None,
                 cluster_spec=None,
                 scheduler: Optional[str] = None,
                 compare_golden: bool = True,
                 app_id: str = "campaign",
                 settle_grace: float = 1.5,
                 settle_timeout: float = 20.0,
                 workload_timeout: float = 240.0,
                 watchdog=None):
        from repro.faults.campaigns import get_campaign
        self.campaign = (get_campaign(campaign)
                         if isinstance(campaign, str) else campaign)
        self.seed = seed
        self.protocol = protocol
        self.policy = FaultPolicy.of(policy)
        self.nodes = nodes if nodes is not None else self.campaign.nodes
        # Checker precedence: explicit arg > campaign suite > defaults.
        if checkers is None:
            checkers = getattr(self.campaign, "checkers", None) \
                or ALL_CHECKERS
        self.checkers = tuple(checkers)
        #: Overrides the campaign's base ClusterSpec (e.g. the k=1 guard
        #: re-runs a replicated campaign without its replication factor).
        self.cluster_spec = cluster_spec
        #: Engine scheduler overlay (``"heap"``/``"calendar"``/``None``
        #: = keep the base spec's choice).  Dispatch is byte-identical
        #: across schedulers, so reports and goldens are unaffected.
        self.scheduler = scheduler
        self.compare_golden = compare_golden
        self.app_id = app_id
        self.settle_grace = settle_grace
        self.settle_timeout = settle_timeout
        self.workload_timeout = workload_timeout
        #: Optional liveness watchdog ``(sf, handle, exc) -> dict``: called
        #: when a run aborts with a typed error, its JSON-able diagnosis
        #: rides the report (and the exception, as ``exc.diagnosis``).
        #: The ``repro check`` harness passes
        #: :func:`repro.check.watchdog.diagnose_hang`.
        self.watchdog = watchdog

    # -- pieces ------------------------------------------------------------

    def _cluster_spec(self):
        from repro.cluster.spec import ClusterSpec
        base = self.cluster_spec or self.campaign.cluster_spec \
            or ClusterSpec()
        spec = base.with_(nodes=self.nodes, seed=self.seed)
        if self.scheduler is not None:
            spec = spec.with_(scheduler=self.scheduler)
        return spec

    def _build(self):
        from repro.core.starfish import StarfishCluster
        return StarfishCluster.build(spec=self._cluster_spec())

    def _golden_results(self) -> Dict[int, Any]:
        sf = self._build()
        handle = sf.submit(self.campaign.workload(self.protocol, self.policy,
                                                  self.nodes),
                           app_id=self.app_id)
        return sf.run_to_completion(handle, timeout=self.workload_timeout)

    def _drive_workload(self, sf, handle, deadline: float) -> None:
        """Advance until the app reaches a terminal state (DONE counts,
        and so does a *surfaced* failure under the kill policy); raise
        typed errors instead of spinning when it never will."""
        from repro.errors import MajorityLost, UnknownApplication
        while sf.engine.now < deadline:
            if not sf.live_daemons():
                raise MajorityLost(
                    f"all {len(sf.daemons)} daemons are dead; "
                    f"app {handle.app_id!r} can never finish")
            try:
                if handle.finished:
                    return
            except UnknownApplication:
                pass
            sf.engine.run(until=sf.engine.now + 0.5)
        raise CampaignError(
            f"workload {handle.app_id!r} did not reach a terminal state "
            f"within {self.workload_timeout}s of virtual time")

    def _converge_and_check(self, ctx, checks: List[Dict[str, Any]],
                            phase: str) -> None:
        sf, inj = ctx.sf, ctx.injector
        quiescent = (inj.partition_depth == 0 and not inj.paused_nodes
                     and sf.live_daemons())
        if quiescent:
            try:
                sf.settle(timeout=self.settle_timeout)
            except StarfishError as exc:
                checks.append({"time": round(sf.engine.now, 9),
                               "phase": phase, "checker": "convergence",
                               "violations": [f"{type(exc).__name__}: {exc}"]})
        ctx.phase = phase
        for checker in self.checkers:
            if checker.final_only and phase != "final":
                continue
            violations = checker.check(ctx)
            checks.append({"time": round(sf.engine.now, 9), "phase": phase,
                           "checker": checker.name,
                           "violations": list(violations)})

    # -- the run -----------------------------------------------------------

    def run(self, raise_on_error: bool = True) -> CampaignReport:
        golden = self._golden_results() if self.compare_golden else None

        sf = self._build()
        inj = sf.faults
        registry = sf.engine.metrics
        registry.events.emit(sf.engine.now, "campaign.start",
                             campaign=self.campaign.name, seed=self.seed)
        workload = self.campaign.workload(self.protocol, self.policy,
                                          self.nodes)
        handle = sf.submit(workload, app_id=self.app_id)
        plan = self.campaign.plan(self.app_id, self.nodes)
        plan.apply_to(sf, offset=sf.engine.now)

        ctx = CampaignContext(sf=sf, handle=handle, spec=workload,
                              injector=inj, golden=golden)
        checks: List[Dict[str, Any]] = []
        status, error = "completed", None
        deadline = sf.engine.now + self.workload_timeout
        try:
            # Convergence point after every action (reverts included).
            while True:
                future = sorted(t for t in inj.scheduled
                                if t > sf.engine.now + 1e-9)
                if not future:
                    break
                sf.engine.run(until=future[0] + 1e-9)
                sf.engine.run(until=sf.engine.now + self.settle_grace)
                self._converge_and_check(ctx, checks, phase="mid")
            self._drive_workload(sf, handle, deadline)
            # Close any still-open windows scheduled after app completion.
            tail = [t for t in inj.scheduled if t > sf.engine.now]
            if tail:
                sf.engine.run(until=max(tail) + self.settle_grace)
            self._converge_and_check(ctx, checks, phase="final")
        except ReproError as exc:
            status = "aborted"
            error = {"type": type(exc).__name__, "message": str(exc)}
            if self.watchdog is not None:
                diagnosis = self.watchdog(sf, handle, exc)
                error["diagnosis"] = diagnosis
                exc.diagnosis = diagnosis
            if raise_on_error:
                raise

        report = self._report(sf, ctx, checks, status, error)
        n_viol = sum(len(c["violations"]) for c in checks)
        registry.counter("campaign.runs",
                         outcome="green" if (status == "completed"
                                             and n_viol == 0) else "red",
                         help="campaign runs by outcome").inc()
        registry.events.emit(sf.engine.now, "campaign.end",
                             campaign=self.campaign.name, status=status,
                             violations=n_viol)
        return report

    # -- report ------------------------------------------------------------

    def _report(self, sf, ctx, checks, status, error) -> CampaignReport:
        from repro.errors import UnknownApplication
        reg = sf.engine.metrics
        try:
            record = ctx.handle._record()
            results = {str(r): record.results[r]
                       for r in sorted(record.results)}
            app_status = record.status.value
            restarts = record.restarts
        except UnknownApplication:
            results, app_status, restarts = {}, "unknown", None
        # Whitelisted, label-stable metric series only: anything keyed by
        # process-global identifiers (pipe labels, incarnation numbers)
        # would break the same-seed byte-identity guarantee.
        series = {
            "net.frames_dropped": reg.group_by("net.frames_dropped",
                                               "fabric"),
            "net.frames_sent": reg.group_by("net.frames_sent", "fabric"),
            "gcs.views": reg.group_by("gcs.views", "node"),
            "faults.injected": reg.group_by("faults.injected", "action"),
            "daemon.restarts": {ctx.handle.app_id:
                                reg.sum("daemon.restarts",
                                        app=ctx.handle.app_id)},
        }
        restart_events = [
            {"time": round(ev.time, 9), **ev.field_dict}
            for ev in reg.events.records("daemon.restart")]
        data = {
            "campaign": self.campaign.name,
            "seed": self.seed,
            "nodes": self.nodes,
            "protocol": self.protocol,
            "policy": self.policy.value,
            "status": status,
            "error": error,
            "app": {"id": ctx.handle.app_id, "status": app_status,
                    "restarts": restarts, "results": results},
            "golden": ({str(r): ctx.golden[r] for r in sorted(ctx.golden)}
                       if ctx.golden is not None else None),
            "actions": ctx.injector.log_lines(),
            "checks": checks,
            "series": series,
            "restart_events": restart_events,
            "engine": {"final_time": round(sf.engine.now, 9),
                       "events_processed": sf.engine.events_processed},
        }
        # Only present under the repro.check harness: adding the key
        # unconditionally would change the determinism goldens' bytes.
        spec = self._cluster_spec()
        if getattr(spec, "perturb_seed", None) is not None:
            data["perturbation"] = {"seed": spec.perturb_seed,
                                    "jitter": spec.delivery_jitter}
        return CampaignReport(data=data)
