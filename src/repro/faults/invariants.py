"""Pluggable invariant checkers for fault campaigns.

A checker is a tiny object with a ``name``, a ``final_only`` flag and a
``check(ctx)`` method returning a list of violation strings (empty =
green).  ``ctx`` is the :class:`~repro.faults.campaign.CampaignContext`
(duck-typed here to keep this module import-light): it carries the
Starfish system, the submitted handle/spec, the injector, the golden-run
results and the current phase (``"mid"`` after each convergence point,
``"final"`` after the workload finished).

Checkers never raise on a violated property — they *report*; the runner
aggregates and decides (``repro chaos`` exits non-zero, the bench
asserts all-green).
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import RecoveryLineError, UnknownApplication


class InvariantChecker:
    """Base class; subclasses set ``name`` and implement :meth:`check`."""

    name = "invariant"
    #: Only meaningful after the workload finished (e.g. result equality).
    final_only = False

    def check(self, ctx) -> List[str]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ViewAgreement(InvariantChecker):
    """Virtual synchrony: all live daemons share one view whose member
    set is exactly the live daemon set.

    Skipped while a partition or a daemon pause is open — disagreement
    is then the *correct* behaviour (primary-partition-less GCS)."""

    name = "view-agreement"

    def check(self, ctx) -> List[str]:
        inj = ctx.injector
        if inj.partition_depth > 0 or inj.paused_nodes:
            return []
        live = ctx.sf.live_daemons()
        if not live:
            return ["no live daemons"]
        views = {tuple(d.gm.view.members) if d.gm.view else None
                 for d in live}
        if None in views:
            stuck = sorted(d.node.node_id for d in live if d.gm.view is None)
            return [f"daemons without a view: {','.join(stuck)}"]
        if len(views) > 1:
            return [f"{len(views)} distinct views among live daemons"]
        member_nodes = {m.node for m in views.pop()}
        live_nodes = {d.node.node_id for d in live}
        if member_nodes != live_nodes:
            return [f"view covers {sorted(member_nodes)} but live daemons "
                    f"are {sorted(live_nodes)}"]
        return []


class RecoveryLineConsistent(InvariantChecker):
    """The checkpoint store can always answer 'where would a restart go'
    without contradiction: the latest restorable version is committed and
    complete (every rank has a record at it)."""

    name = "recovery-line"

    def check(self, ctx) -> List[str]:
        protocol = ctx.spec.checkpoint.protocol
        if protocol is None:
            return []
        store = ctx.sf.store
        app_id = ctx.handle.app_id
        ranks = range(ctx.spec.nprocs)
        try:
            version = store.latest_restorable(app_id, ranks)
        except RecoveryLineError as exc:
            return [f"latest_restorable raised: {exc}"]
        if version is None:
            return []       # nothing restorable yet (or volatile lost) — legal
        out = []
        if version not in store.committed_versions(app_id):
            out.append(f"restorable version {version} is not committed")
        missing = [r for r in ranks if not store.has(app_id, r, version)]
        if missing:
            out.append(f"restorable version {version} missing ranks "
                       f"{missing}")
        return out


class NoLostResult(InvariantChecker):
    """Fault-policy-aware result check against the fault-free golden run.

    * ``restart``: the app must finish with exactly the golden results;
    * ``view-notify``: every rank that reported must match its golden
      value (survivor subset semantics), and someone must have reported;
    * ``kill``: if a crash hit a node hosting the app, the failure must
      have surfaced cleanly (FAILED/KILLED status, no hang); otherwise
      the app is unaffected and must match the golden run.
    """

    name = "no-lost-result"
    final_only = True

    def check(self, ctx) -> List[str]:
        if ctx.golden is None:
            return []
        try:
            record = ctx.handle._record()
        except UnknownApplication:
            return [f"app {ctx.handle.app_id} unknown to every live daemon"]
        status = record.status.value
        results = dict(record.results)
        policy = ctx.policy_value          # "kill"|"view-notify"|"restart"

        if policy == "kill":
            if ctx.app_was_hit:
                if status not in ("failed", "killed"):
                    return [f"kill policy after a hit: status {status!r}, "
                            "expected failed/killed"]
                return []
            # not hit: fall through to exact-match semantics
            policy = "restart"

        if policy == "restart":
            if status != "done":
                return [f"status {status!r}, expected done"]
            if results != ctx.golden:
                return [f"results diverge from golden run: got "
                        f"{_summ(results)}, want {_summ(ctx.golden)}"]
            return []

        # view-notify: survivors must agree with golden, losses allowed.
        if status != "done":
            return [f"status {status!r}, expected done"]
        if not results:
            return ["no rank reported a result"]
        bad = {r: v for r, v in results.items()
               if r in ctx.golden and v != ctx.golden[r]}
        if bad:
            return [f"surviving ranks diverge from golden run: {_summ(bad)}"]
        return []


class CheckpointSurvivability(InvariantChecker):
    """The replicated store's availability contract: while at most
    ``k - 1`` nodes are down, the latest committed recovery line must
    still be restorable — crashing any k-1 replica holders between a
    commit and the restart may never lose the line.

    Vacuous for the legacy idealized store (no ``k``: global stable
    storage can't lose copies) and whenever >= k nodes are down at
    check time (beyond the contract; ``latest_restorable`` falling back
    is then the *correct* behaviour, which the k=1 guard test relies
    on).  ``k=None`` reads the store's configured factor.
    """

    name = "checkpoint-survivability"

    def __init__(self, k=None):
        self.k = k

    def check(self, ctx) -> List[str]:
        from repro.cluster.node import NodeState
        store = ctx.sf.store
        store_k = getattr(store, "k", None)
        if store_k is None:
            return []                      # legacy single-copy store
        k = self.k if self.k is not None else store_k
        app_id = ctx.handle.app_id
        committed = store.latest_committed(app_id)
        if committed is None:
            return []                      # nothing committed yet
        down = [nid for nid, node in sorted(ctx.sf.cluster.nodes.items())
                if node.state is NodeState.DOWN]
        if len(down) >= k:
            return []                      # beyond the k-1 contract
        out = []
        restorable = store.latest_restorable(app_id,
                                             range(ctx.spec.nprocs))
        if restorable != committed:
            out.append(f"committed version {committed} not restorable with "
                       f"{len(down)} node(s) down ({','.join(down) or '-'}): "
                       f"k={k}, latest_restorable={restorable}")
        # Point-in-time reads miss losses that a restart has since papered
        # over; the store logs those at the membership change itself.  The
        # log is scanned once per run, at the final check, so a breach is
        # reported exactly once (the checker instance carries no state).
        if getattr(ctx, "phase", "final") == "final":
            for breach in getattr(store, "breaches", ()):
                if breach["app_id"] != app_id or len(breach["down"]) >= k:
                    continue
                out.append(
                    f"committed version {breach['committed']} not "
                    f"restorable at t={breach['time']:.3f} with "
                    f"{len(breach['down'])} node(s) down "
                    f"({','.join(breach['down']) or '-'}): k={k}, "
                    f"latest_restorable={breach['restorable']}")
        return out


class MetricsSane(InvariantChecker):
    """Telemetry self-consistency: every collected value is finite,
    frame drops never exceed frames sent, every live daemon installed at
    least one view, and restarts only happen under the restart policy."""

    name = "metrics-sane"

    def check(self, ctx) -> List[str]:
        sf = ctx.sf
        out: List[str] = []
        for name, value in sf.engine.metrics.collect().items():
            if not math.isfinite(value):
                out.append(f"non-finite metric {name}")
        for fabric in (sf.cluster.ethernet, sf.cluster.myrinet):
            if fabric.frames_dropped > fabric.frames_sent:
                out.append(f"{fabric.spec.name}: dropped "
                           f"{fabric.frames_dropped} > sent "
                           f"{fabric.frames_sent}")
        for daemon in sf.live_daemons():
            if daemon.gm.view is not None and \
                    int(daemon.gm._m["views"].value) < 1:
                out.append(f"{daemon.node.node_id}: has a view but zero "
                           "gcs.views increments")
        try:
            restarts = ctx.handle.restarts
        except UnknownApplication:
            restarts = None
        if restarts is not None and restarts < 0:
            out.append(f"negative restart count {restarts}")
        if (restarts and ctx.policy_value != "restart"):
            out.append(f"{restarts} restarts under policy "
                       f"{ctx.policy_value!r}")
        return out


def _summ(results) -> str:
    return "{" + ", ".join(f"{r}: {results[r]!r}"
                           for r in sorted(results)) + "}"


#: The default checker suite, in run order.
ALL_CHECKERS = (ViewAgreement(), RecoveryLineConsistent(), MetricsSane(),
                NoLostResult())
