"""Deterministic fault-campaign engine (the one fault-injection surface).

The paper's evaluation method — and this repo's (ReStore-style) way of
stressing every FT-policy x C/R-protocol combination — is a *scripted*
failure schedule replayed against a workload, with invariants checked
after every recovery.  This package provides exactly that:

* typed fault actions (:class:`CrashNode`, :class:`RecoverNode`,
  :class:`Partition`, :class:`Heal`, :class:`FrameLossWindow`,
  :class:`DiskSlowdown`, :class:`DaemonPause`);
* virtual-time triggers (:class:`At`, :class:`Every`, :class:`Randomly` —
  the random one draws from the engine's seeded RNG streams, so a
  campaign is a pure function of its seed);
* a :class:`FaultPlan` that schedules actions onto a cluster through one
  :class:`FaultInjector`, which keeps a deterministic action log and
  emits ``fault.*`` telemetry through ``repro.obs``;
* pluggable invariant checkers (:mod:`repro.faults.invariants`);
* a :class:`CampaignRunner` that drives a workload under a plan,
  compares against a fault-free *golden run*, and produces a
  JSON-serializable :class:`CampaignReport`;
* a registry of named campaigns (:data:`CAMPAIGNS`, ``repro chaos``).

Quickstart::

    from repro.faults import At, CrashNode, FaultPlan
    plan = FaultPlan().at(5.0, CrashNode("n2"))
    plan.apply_to(sf)                      # sf = StarfishCluster.build(...)
    sf.run_to_completion(handle)

These actions are the *only* fault-injection surface: the pre-PR-2
scheduling entry points (``crash_node_at`` and friends, builder
``loss_prob`` kwargs) are gone.  Ambient frame loss is configured with
``ClusterSpec(loss_prob=...)``, which fires an open-ended
:class:`FrameLossWindow` through the injector.
"""

from repro.faults.actions import (CrashNode, DaemonPause, DiskSlowdown,
                                  FaultAction, FrameLossWindow, Heal,
                                  Partition, RecoverNode)
from repro.faults.campaign import CampaignReport, CampaignRunner
from repro.faults.campaigns import CAMPAIGNS, Campaign, get_campaign
from repro.faults.invariants import (ALL_CHECKERS, CheckpointSurvivability,
                                     InvariantChecker, MetricsSane,
                                     NoLostResult, RecoveryLineConsistent,
                                     ViewAgreement)
from repro.faults.plan import At, Every, FaultInjector, FaultPlan, Randomly

__all__ = [
    "ALL_CHECKERS",
    "At",
    "CAMPAIGNS",
    "Campaign",
    "CampaignReport",
    "CampaignRunner",
    "CheckpointSurvivability",
    "CrashNode",
    "DaemonPause",
    "DiskSlowdown",
    "Every",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FrameLossWindow",
    "Heal",
    "InvariantChecker",
    "MetricsSane",
    "NoLostResult",
    "Partition",
    "RecoveryLineConsistent",
    "Randomly",
    "ViewAgreement",
    "get_campaign",
]
