"""Starfish — fault-tolerant dynamic MPI programs on clusters of workstations.

A full reproduction of Agbaria & Friedman's Starfish system (HPDC 1999) as a
Python library.  The cluster, its networks (TCP/IP over Ethernet and
BIP/Myrinet) and its disks are deterministic discrete-event models; the
Starfish system itself — daemons in an Ensemble-style process group,
lightweight per-application groups, the object-bus application runtime, the
MPI-2 module with Starfish's fault-tolerance extensions, and the
checkpoint/restart protocols (coordinated and uncoordinated, homogeneous and
heterogeneous) — is implemented in full above that substrate.

Quickstart::

    from repro import StarfishCluster, AppSpec
    from repro.apps import MonteCarloPi

    cluster = StarfishCluster.build(nodes=4)
    result = cluster.run(AppSpec(program=MonteCarloPi, nprocs=4,
                                 params={"shots": 40_000}))
    print(result.value)

See ``examples/`` for fault injection, protocol comparison, heterogeneous
migration, and dynamic repartitioning scenarios.
"""

from repro._version import __version__

# Re-exported lazily to keep `import repro` cheap and avoid import cycles
# during partial builds; the full public surface lives in repro.core.
_LAZY = {
    "StarfishCluster": "repro.core.starfish",
    "AppHandle": "repro.core.starfish",
    "AppSpec": "repro.core.appspec",
    "StarfishProgram": "repro.core.program",
    "FaultPolicy": "repro.core.policies",
    "CheckpointConfig": "repro.core.appspec",
    "ClusterMetrics": "repro.core.metrics",
    "ClusterSpec": "repro.cluster.spec",
    "Engine": "repro.sim.engine",
    "FaultPlan": "repro.faults",
    "CampaignRunner": "repro.faults",
}


def __getattr__(name):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(mod), name)


def __dir__():
    return sorted(list(globals()) + list(_LAZY))
