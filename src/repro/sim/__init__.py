"""Deterministic discrete-event simulation kernel (system S1).

This is the substrate everything else in the Starfish reproduction runs on:
daemons, application processes, network devices and disks are all simulated
processes written as Python generators that ``yield`` *events* to the
:class:`~repro.sim.engine.Engine`.

The kernel is deliberately SimPy-flavoured (processes, timeouts, interrupts,
stores) but is implemented from scratch, fully deterministic (ties in the
event queue are broken by insertion order), and instrumented with a tracing
hook used by the Figure 6 layer-overhead benchmark.

Quick example::

    from repro.sim import Engine

    eng = Engine()

    def pinger(eng, ch):
        yield eng.timeout(1.0)
        ch.put("ping")

    def ponger(eng, ch):
        msg = yield ch.get()
        return msg, eng.now

    eng.process(pinger(eng, ch := __import__("repro.sim", fromlist=["Channel"]).Channel(eng)))
    p = eng.process(ponger(eng, ch))
    eng.run()
    assert p.value == ("ping", 1.0)
"""

from repro.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.engine import Engine, NORMAL, URGENT
from repro.sim.events import AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.process import Process
from repro.sim.channel import Channel, PriorityChannel
from repro.sim.resources import Resource
from repro.sim.rng import RngStreams
from repro.sim.sched import SCHEDULERS, CalendarQueue
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Channel",
    "Condition",
    "Engine",
    "Event",
    "Interrupt",
    "NORMAL",
    "PriorityChannel",
    "Process",
    "Resource",
    "RngStreams",
    "SCHEDULERS",
    "SimulationError",
    "StopSimulation",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "URGENT",
]
