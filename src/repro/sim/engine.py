"""The discrete-event engine.

A single :class:`Engine` owns the virtual clock and the event queue.  The
queue orders events by ``(time, priority, sequence)`` where the sequence
number is a global insertion counter — two events scheduled for the same
instant with the same priority are always processed in the order they were
scheduled, which makes every simulation in this repository fully
deterministic and reproducible.

Hot-path layout: the heap entries are bare ``(time, priority, seq, event)``
tuples, event triggering pushes them through the engine's pre-bound
``_push`` callable (see :mod:`repro.sim.events`), and :meth:`Engine.run`
inlines the per-event work of :meth:`Engine.step` with the queue, clock,
and tracer bound to locals — the tracer branch is hoisted out of the loop
entirely by selecting the traced or untraced loop body once per
:meth:`run` call.  :meth:`step` remains the single-event reference
implementation; both must dispatch events identically.

The future event list itself is pluggable (``scheduler=`` / the
``ClusterSpec.scheduler`` field): ``"heap"`` (default) keeps the single
binary heap and the inlined PR-3 fast loops; ``"calendar"`` swaps in the
amortized-O(1) :class:`~repro.sim.sched.CalendarQueue`, whose dispatch
order is byte-identical by construction (``(time, priority, seq)`` total
order preserved inside buckets).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heappop, heappush
from typing import Any, Generator, Optional

from repro.errors import SimulationError, StopSimulation
from repro.obs.registry import MetricsRegistry
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.sched import _REWIDTH_POPS, SCHEDULERS, CalendarQueue
from repro.sim.trace import Tracer

#: Priority for ordinary events.
NORMAL = 1
#: Priority for events that must run before ordinary ones at the same time.
URGENT = 0


class Engine:
    """Deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Master seed for the per-subsystem random streams (see
        :class:`~repro.sim.rng.RngStreams`).
    trace:
        When true, every processed event is recorded by a
        :class:`~repro.sim.trace.Tracer` (used by the Figure 6 bench).
    telemetry:
        When true (default) the engine carries an enabled
        :class:`~repro.obs.registry.MetricsRegistry` that every subsystem
        emits instruments into; when false the registry hands out no-op
        instruments (the zero-cost-ish ablation path).
    scheduler:
        Future-event-list implementation: ``"heap"`` (default, the
        reference binary heap) or ``"calendar"`` (the amortized-O(1)
        :class:`~repro.sim.sched.CalendarQueue`; dispatch order is
        byte-identical).
    """

    __slots__ = ("_now", "_queue", "_seq", "active_process", "rng",
                 "tracer", "_nprocessed", "metrics", "_perturb",
                 "_tie_pending", "_sched", "_push", "scheduler")

    def __init__(self, seed: int = 0, trace: bool = False,
                 telemetry: bool = True, scheduler: str = "heap"):
        if scheduler not in SCHEDULERS:
            raise ValueError(f"Engine.scheduler must be one of "
                             f"{SCHEDULERS}, got {scheduler!r}")
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self.scheduler = scheduler
        if scheduler == "calendar":
            self._sched: Optional[CalendarQueue] = CalendarQueue()
            # C-level push, same cost as the heap's bound heappush: the
            # entry lands on the staging list and is folded into the
            # buckets (in push order — byte-identical heaps) by the
            # dispatch loop or the queue's own drain.
            self._push = self._sched._staging.append
        else:
            self._sched = None
            self._push = partial(heappush, self._queue)
        self.active_process: Optional[Process] = None
        self.rng = RngStreams(seed)
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self._nprocessed = 0
        self.metrics = MetricsRegistry(enabled=telemetry)
        # Schedule perturbation (repro.check): when installed, same-instant
        # same-priority event runs are dispatched in a seeded shuffled
        # order instead of insertion order.  ``None`` keeps the untouched
        # deterministic fast path (byte-identical to pre-perturbation
        # engines).  ``_tie_pending`` holds the already-shuffled remainder
        # of the current tie group.
        self._perturb = None
        self._tie_pending: deque = deque()
        # Live engine internals surface as sampled gauges: no per-event
        # registry work on the hot path, always-current at collect time.
        self.metrics.gauge_fn("sim.events_processed",
                              lambda: self._nprocessed)
        self.metrics.gauge_fn(
            "sim.queue_depth",
            lambda: (len(self._queue) if self._sched is None
                     else len(self._sched)) + len(self._tie_pending))
        self.metrics.gauge_fn(
            "sim.trace.events_dropped",
            lambda: self.tracer.events_dropped if self.tracer else 0)
        if self._sched is not None:
            sched = self._sched
            self.metrics.gauge_fn("sim.sched.buckets",
                                  lambda: sched.nbuckets)
            self.metrics.gauge_fn("sim.sched.occupancy",
                                  lambda: len(sched))
            self.metrics.gauge_fn("sim.sched.width", lambda: sched.width)
            self.metrics.gauge_fn("sim.sched.resizes",
                                  lambda: sched.resizes)
            self.metrics.gauge_fn("sim.sched.direct_searches",
                                  lambda: sched.direct_searches)

    @classmethod
    def from_spec(cls, spec) -> "Engine":
        """Build an engine from a :class:`~repro.cluster.spec.ClusterSpec`.

        Duck-typed on the kernel-relevant fields (``seed``, ``trace``,
        ``telemetry``, and the optional ``perturb_seed`` /
        ``delivery_jitter`` pair) so the sim layer does not import the
        cluster layer.
        """
        eng = cls(seed=spec.seed, trace=spec.trace,
                  telemetry=spec.telemetry,
                  scheduler=getattr(spec, "scheduler", "heap"))
        perturb_seed = getattr(spec, "perturb_seed", None)
        if perturb_seed is not None:
            from repro.check.perturb import SchedulePerturbation
            eng.set_perturbation(SchedulePerturbation(
                perturb_seed,
                jitter=getattr(spec, "delivery_jitter", 0.0)))
        return eng

    def set_perturbation(self, perturb) -> None:
        """Install (or clear, with ``None``) a schedule perturbation.

        ``perturb`` must provide ``shuffle_ties(entries)`` (in-place
        shuffle of a list of same-``(time, priority)`` heap entries) and a
        ``delivery_jitter`` float attribute read by the network layer; see
        :class:`repro.check.perturb.SchedulePerturbation`.  Installing one
        mid-group (``_tie_pending`` non-empty) is refused — order of the
        already-shuffled remainder would be ambiguous.
        """
        if self._tie_pending:
            raise SimulationError(
                "cannot change perturbation with a tie group in flight")
        self._perturb = perturb

    # -- clock & queue ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (a work measure)."""
        return self._nprocessed

    def _enqueue(self, event: Event, priority: Optional[int],
                 delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        self._push((self._now + delay,
                    NORMAL if priority is None else priority,
                    seq, event))

    # -- factories ---------------------------------------------------------

    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                name: Optional[str] = None) -> Timeout:
        """Create an event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a simulated process; returns it."""
        return Process(self, generator, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    # -- execution ---------------------------------------------------------

    def _pop_perturbed(self):
        """Pop the next heap entry under an installed perturbation.

        A run of entries tying on ``(time, priority)`` at the heap head is
        drained as one group, shuffled by the perturbation's seeded RNG,
        and dispatched from ``_tie_pending``.  Events scheduled *while* the
        group dispatches form later groups of their own, so every shuffled
        schedule is still causally valid; URGENT never mixes with NORMAL
        (unequal priority ends the group).
        """
        pending = self._tie_pending
        if pending:
            return pending.popleft()
        sched = self._sched
        if sched is None:
            queue = self._queue
            entry = heappop(queue)
            if queue and queue[0][0] == entry[0] \
                    and queue[0][1] == entry[1]:
                group = [entry]
                when, prio = entry[0], entry[1]
                while queue and queue[0][0] == when \
                        and queue[0][1] == prio:
                    group.append(heappop(queue))
                self._perturb.shuffle_ties(group)
                pending.extend(group)
                return pending.popleft()
            return entry
        entry = sched.pop()
        key = (entry[0], entry[1])
        if sched.peek_key() == key:
            group = [entry]
            while sched.peek_key() == key:
                group.append(sched.pop())
            self._perturb.shuffle_ties(group)
            pending.extend(group)
            return pending.popleft()
        return entry

    def step(self) -> None:
        """Process exactly one event; raise
        :class:`~repro.errors.SimulationError` if the queue is empty.

        Reference implementation of event dispatch — the inlined loop in
        :meth:`run` must stay behaviorally identical to this.
        """
        sched = self._sched
        if self._perturb is not None:
            empty = (not self._queue if sched is None else not sched)
            if empty and not self._tie_pending:
                raise SimulationError("event queue is empty")
            when, _prio, _seq, event = self._pop_perturbed()
        elif sched is not None:
            entry = sched.pop()
            if entry is None:
                raise SimulationError("event queue is empty")
            when, _prio, _seq, event = entry
        elif not self._queue:
            raise SimulationError("event queue is empty")
        else:
            when, _prio, _seq, event = heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went back in time")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        self._nprocessed += 1
        if self.tracer is not None:
            self.tracer.record(when, event)
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # A failure nobody was waiting on: surface it loudly.
            exc = event.value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        is processed; its value is returned — a failed event re-raises).

        The tracer is sampled once on entry: assigning ``engine.tracer``
        takes effect on the next :meth:`run` call, not mid-loop.
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            def _halt(ev: Event) -> None:
                if not ev.ok:
                    ev.defuse()
                raise StopSimulation(ev)
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
            until.callbacks.append(_halt)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})")

        if self._perturb is not None:
            return self._run_perturbed(until, stop_at)
        if self._sched is not None:
            return self._run_calendar(until, stop_at)

        queue = self._queue
        pop = heappop
        tracer = self.tracer
        record = tracer.record if tracer is not None else None
        nprocessed = self._nprocessed
        try:
            # Two copies of the dispatch loop: the run-to-event/drain case
            # (no deadline) skips the per-event deadline peek entirely.
            if stop_at is None:
                while queue:
                    when, _prio, _seq, event = pop(queue)
                    if when < self._now:
                        raise SimulationError("event queue went back in time")
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    nprocessed += 1
                    if record is not None:
                        record(when, event)
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc
            else:
                while queue:
                    if queue[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    when, _prio, _seq, event = pop(queue)
                    if when < self._now:
                        raise SimulationError("event queue went back in time")
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    nprocessed += 1
                    if record is not None:
                        record(when, event)
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc
        except StopSimulation as stop:
            ev: Event = stop.value
            if not ev.ok:
                raise ev.value from None
            return ev.value
        finally:
            self._nprocessed = nprocessed
        if isinstance(until, Event):
            raise SimulationError(
                f"simulation ran dry before {until!r} triggered")
        if stop_at is not None:
            self._now = stop_at
        return None

    def _run_calendar(self, until: Any, stop_at: Optional[float]) -> Any:
        """The :meth:`run` loop over a :class:`CalendarQueue`.

        Identical epilogue semantics to the inlined heap loops.  Like the
        heap loops inline ``heappop``, this one inlines the calendar's
        whole per-event cycle — staging drain, day-walk, pop (the bodies
        of ``CalendarQueue._drain`` / ``pop`` / ``pop_until``) — because
        even one Python call per event is a measurable tax at bench
        scale.  The buckets/mask/width locals are cached and re-read
        only when the queue's resize ``_version`` moves.

        Every ``_REWIDTH_POPS`` pops the day array is rebuilt so the
        bucket width tracks the *current* schedule density (Brown's
        queue only adapts on occupancy resizes; a long steady-state
        phase would otherwise keep the boot-time width forever).  The
        rebuild is a pure layout change keyed off the pop counter, so
        it is deterministic and invisible to dispatch order.
        """
        sched = self._sched
        tracer = self.tracer
        record = tracer.record if tracer is not None else None
        nprocessed = self._nprocessed
        pops = 0
        try:
            staging = sched._staging
            version = sched._version
            buckets = sched._buckets
            mask = sched._mask
            inv_w = sched._inv_width
            if stop_at is None:
                while True:
                    if version != sched._version:
                        version = sched._version
                        buckets = sched._buckets
                        mask = sched._mask
                        inv_w = sched._inv_width
                    if staging:
                        for entry in staging:
                            heappush(buckets[int(entry[0] * inv_w) & mask],
                                     entry)
                        count = sched._count + len(staging)
                        sched._count = count
                        staging.clear()
                        if count > sched._grow_at:
                            sched._resize()
                            continue
                    else:
                        count = sched._count
                    if not count:
                        break
                    day = sched._epoch
                    remaining = mask + 2
                    while remaining:
                        bucket = buckets[day & mask]
                        if bucket and int(bucket[0][0] * inv_w) <= day:
                            break
                        day += 1
                        remaining -= 1
                    else:
                        sched.direct_searches += 1
                        bucket = None
                        for b in buckets:
                            if b and (bucket is None or b[0] < bucket[0]):
                                bucket = b
                    entry = heappop(bucket)
                    when = entry[0]
                    sched._last = when
                    sched._epoch = int(when * inv_w)
                    sched._count = count - 1
                    pops += 1
                    if count - 1 < sched._shrink_at or \
                            pops >= _REWIDTH_POPS:
                        sched._resize()
                        pops = 0
                    event = entry[3]
                    if when < self._now:
                        raise SimulationError("event queue went back in time")
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    nprocessed += 1
                    if record is not None:
                        record(when, event)
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc
            else:
                while True:
                    if version != sched._version:
                        version = sched._version
                        buckets = sched._buckets
                        mask = sched._mask
                        inv_w = sched._inv_width
                    if staging:
                        for entry in staging:
                            heappush(buckets[int(entry[0] * inv_w) & mask],
                                     entry)
                        count = sched._count + len(staging)
                        sched._count = count
                        staging.clear()
                        if count > sched._grow_at:
                            sched._resize()
                            continue
                    else:
                        count = sched._count
                    if not count:
                        break
                    day = sched._epoch
                    remaining = mask + 2
                    while remaining:
                        bucket = buckets[day & mask]
                        if bucket and int(bucket[0][0] * inv_w) <= day:
                            break
                        day += 1
                        remaining -= 1
                    else:
                        sched.direct_searches += 1
                        bucket = None
                        for b in buckets:
                            if b and (bucket is None or b[0] < bucket[0]):
                                bucket = b
                    if bucket[0][0] > stop_at:
                        break
                    entry = heappop(bucket)
                    when = entry[0]
                    sched._last = when
                    sched._epoch = int(when * inv_w)
                    sched._count = count - 1
                    pops += 1
                    if count - 1 < sched._shrink_at or \
                            pops >= _REWIDTH_POPS:
                        sched._resize()
                        pops = 0
                    event = entry[3]
                    if when < self._now:
                        raise SimulationError("event queue went back in time")
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    nprocessed += 1
                    if record is not None:
                        record(when, event)
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc
        except StopSimulation as stop:
            ev: Event = stop.value
            if not ev.ok:
                raise ev.value from None
            return ev.value
        finally:
            self._nprocessed = nprocessed
        if isinstance(until, Event):
            raise SimulationError(
                f"simulation ran dry before {until!r} triggered")
        if stop_at is not None:
            self._now = stop_at
        return None

    def _run_perturbed(self, until: Any, stop_at: Optional[float]) -> Any:
        """The :meth:`run` loop under an installed perturbation.

        Same epilogue semantics as the fast loops; dispatch goes through
        :meth:`_pop_perturbed`.  A ``StopSimulation`` mid-group is safe:
        the shuffled remainder stays parked in ``_tie_pending`` and the
        next call (or :meth:`step`) continues from it.
        """
        queue = self._queue
        sched = self._sched
        pending = self._tie_pending
        try:
            while (queue if sched is None else sched) or pending:
                if stop_at is not None:
                    if pending:
                        nxt = pending[0][0]
                    elif sched is None:
                        nxt = queue[0][0]
                    else:
                        nxt = sched.peek_time()
                    if nxt > stop_at:
                        self._now = stop_at
                        return None
                when, _prio, _seq, event = self._pop_perturbed()
                if when < self._now:
                    raise SimulationError("event queue went back in time")
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                self._nprocessed += 1
                if self.tracer is not None:
                    self.tracer.record(when, event)
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            ev: Event = stop.value
            if not ev.ok:
                raise ev.value from None
            return ev.value
        if isinstance(until, Event):
            raise SimulationError(
                f"simulation ran dry before {until!r} triggered")
        if stop_at is not None:
            self._now = stop_at
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._tie_pending:
            return self._tie_pending[0][0]
        if self._sched is not None:
            return self._sched.peek_time()
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        queued = (len(self._queue) if self._sched is None
                  else len(self._sched)) + len(self._tie_pending)
        return (f"<Engine t={self._now:.9g} queued={queued} "
                f"processed={self._nprocessed} sched={self.scheduler}>")
