"""The discrete-event engine.

A single :class:`Engine` owns the virtual clock and the event queue.  The
queue orders events by ``(time, priority, sequence)`` where the sequence
number is a global insertion counter — two events scheduled for the same
instant with the same priority are always processed in the order they were
scheduled, which makes every simulation in this repository fully
deterministic and reproducible.

Hot-path layout: the heap entries are bare ``(time, priority, seq, event)``
tuples, event triggering pushes them directly (see
:mod:`repro.sim.events`), and :meth:`Engine.run` inlines the per-event work
of :meth:`Engine.step` with the queue, clock, and tracer bound to locals —
the tracer branch is hoisted out of the loop entirely by selecting the
traced or untraced loop body once per :meth:`run` call.  :meth:`step`
remains the single-event reference implementation; both must dispatch
events identically.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Optional

from repro.errors import SimulationError, StopSimulation
from repro.obs.registry import MetricsRegistry
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

#: Priority for ordinary events.
NORMAL = 1
#: Priority for events that must run before ordinary ones at the same time.
URGENT = 0


class Engine:
    """Deterministic discrete-event simulation engine.

    Parameters
    ----------
    seed:
        Master seed for the per-subsystem random streams (see
        :class:`~repro.sim.rng.RngStreams`).
    trace:
        When true, every processed event is recorded by a
        :class:`~repro.sim.trace.Tracer` (used by the Figure 6 bench).
    telemetry:
        When true (default) the engine carries an enabled
        :class:`~repro.obs.registry.MetricsRegistry` that every subsystem
        emits instruments into; when false the registry hands out no-op
        instruments (the zero-cost-ish ablation path).
    """

    __slots__ = ("_now", "_queue", "_seq", "active_process", "rng",
                 "tracer", "_nprocessed", "metrics")

    def __init__(self, seed: int = 0, trace: bool = False,
                 telemetry: bool = True):
        self._now: float = 0.0
        self._queue: list = []
        self._seq: int = 0
        self.active_process: Optional[Process] = None
        self.rng = RngStreams(seed)
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self._nprocessed = 0
        self.metrics = MetricsRegistry(enabled=telemetry)
        # Live engine internals surface as sampled gauges: no per-event
        # registry work on the hot path, always-current at collect time.
        self.metrics.gauge_fn("sim.events_processed",
                              lambda: self._nprocessed)
        self.metrics.gauge_fn("sim.queue_depth", lambda: len(self._queue))
        self.metrics.gauge_fn(
            "sim.trace.events_dropped",
            lambda: self.tracer.events_dropped if self.tracer else 0)

    @classmethod
    def from_spec(cls, spec) -> "Engine":
        """Build an engine from a :class:`~repro.cluster.spec.ClusterSpec`.

        Duck-typed on the kernel-relevant fields (``seed``, ``trace``,
        ``telemetry``) so the sim layer does not import the cluster layer.
        """
        return cls(seed=spec.seed, trace=spec.trace, telemetry=spec.telemetry)

    # -- clock & queue ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (a work measure)."""
        return self._nprocessed

    def _enqueue(self, event: Event, priority: Optional[int],
                 delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._queue,
                 (self._now + delay,
                  NORMAL if priority is None else priority,
                  seq, event))

    # -- factories ---------------------------------------------------------

    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                name: Optional[str] = None) -> Timeout:
        """Create an event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a simulated process; returns it."""
        return Process(self, generator, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event; raise
        :class:`~repro.errors.SimulationError` if the queue is empty.

        Reference implementation of event dispatch — the inlined loop in
        :meth:`run` must stay behaviorally identical to this.
        """
        if not self._queue:
            raise SimulationError("event queue is empty")
        when, _prio, _seq, event = heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went back in time")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        self._nprocessed += 1
        if self.tracer is not None:
            self.tracer.record(when, event)
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # A failure nobody was waiting on: surface it loudly.
            exc = event.value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        is processed; its value is returned — a failed event re-raises).

        The tracer is sampled once on entry: assigning ``engine.tracer``
        takes effect on the next :meth:`run` call, not mid-loop.
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            def _halt(ev: Event) -> None:
                if not ev.ok:
                    ev.defuse()
                raise StopSimulation(ev)
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
            until.callbacks.append(_halt)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})")

        queue = self._queue
        pop = heappop
        tracer = self.tracer
        record = tracer.record if tracer is not None else None
        nprocessed = self._nprocessed
        try:
            # Two copies of the dispatch loop: the run-to-event/drain case
            # (no deadline) skips the per-event deadline peek entirely.
            if stop_at is None:
                while queue:
                    when, _prio, _seq, event = pop(queue)
                    if when < self._now:
                        raise SimulationError("event queue went back in time")
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    nprocessed += 1
                    if record is not None:
                        record(when, event)
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc
            else:
                while queue:
                    if queue[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    when, _prio, _seq, event = pop(queue)
                    if when < self._now:
                        raise SimulationError("event queue went back in time")
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    nprocessed += 1
                    if record is not None:
                        record(when, event)
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc
        except StopSimulation as stop:
            ev: Event = stop.value
            if not ev.ok:
                raise ev.value from None
            return ev.value
        finally:
            self._nprocessed = nprocessed
        if isinstance(until, Event):
            raise SimulationError(
                f"simulation ran dry before {until!r} triggered")
        if stop_at is not None:
            self._now = stop_at
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:
        return (f"<Engine t={self._now:.9g} queued={len(self._queue)} "
                f"processed={self._nprocessed}>")
