"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with an optional value.  Simulated
processes wait for events by ``yield``-ing them; the engine resumes the
process when the event is *processed* (its callbacks run).

Events go through three states:

``pending``    created but not yet triggered;
``triggered``  scheduled on the engine's queue with a value or an exception;
``processed``  callbacks have run (waiting processes resumed).

Hot-path note: triggering an event builds the ``(time, priority, seq,
event)`` queue entry inline and hands it to the engine's pre-bound
``_push`` callable instead of calling through ``Engine._enqueue`` —
events are created and triggered once per simulated hop, so the extra
call and the ``triggered`` property lookups measurably tax large
simulations.  ``_push`` is ``heappush`` partial-bound to the queue list
under the default heap scheduler and ``CalendarQueue.push`` under the
calendar scheduler; the entry layout and the ``(time, priority, seq)``
total order are part of the engine's contract and must match
:mod:`repro.sim.engine`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError

#: Sentinel for "no value yet".
_PENDING = object()

#: Priority for ordinary events (the public name is ``engine.NORMAL``;
#: duplicated here because the engine module imports this one).
_NORMAL = 1


class Event:
    """A one-shot occurrence that simulated processes can wait on.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.sim.engine.Engine`.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("engine", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, engine, name: Optional[str] = None):
        self.engine = engine
        self.name = name
        #: Callbacks run when the event is processed; ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # A failed event whose exception was delivered somewhere (a waiting
        # process, a condition) is "defused"; undefused failures crash the
        # engine at processing time so errors are never silently dropped.
        self._defused = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception and is queued."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or its exception)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, priority: Optional[int] = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        engine = self.engine
        engine._seq = seq = engine._seq + 1
        engine._push((engine._now,
                      _NORMAL if priority is None else priority, seq, self))
        return self

    def fail(self, exc: BaseException, priority: Optional[int] = None) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the event;
        if nobody waits, the engine raises it at processing time.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        engine = self.engine
        engine._seq = seq = engine._seq + 1
        engine._push((engine._now,
                      _NORMAL if priority is None else priority, seq, self))
        return self

    def trigger_from(self, other: "Event") -> None:
        """Copy the outcome of an already-triggered event onto this one."""
        if other.ok:
            self.succeed(other.value)
        else:
            other.defuse()
            self.fail(other.value)

    def defuse(self) -> None:
        """Mark a failure as handled so the engine does not re-raise it."""
        self._defused = True

    # -- composition ---------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.engine, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.engine, [self, other])

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time in the future.

    The constructor is fully inlined (no ``super().__init__`` /
    ``_enqueue`` calls): timeouts are the most-allocated object in any
    simulation, one per modelled latency charge.
    """

    __slots__ = ("delay",)

    def __init__(self, engine, delay: float, value: Any = None,
                 name: Optional[str] = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.engine = engine
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        engine._seq = seq = engine._seq + 1
        engine._push((engine._now + delay, _NORMAL, seq, self))


class Condition(Event):
    """An event that triggers when ``evaluate(events, n_done)`` is true.

    Used through the :class:`AnyOf` / :class:`AllOf` subclasses (also
    reachable with ``ev1 | ev2`` and ``ev1 & ev2``).  The condition's value
    is an ordered dict of the *triggered* constituent events to their values,
    so a waiting process can tell which events fired.
    """

    __slots__ = ("events", "_evaluate", "_done", "_fired")

    def __init__(self, engine, evaluate: Callable[[List[Event], int], bool],
                 events: Iterable[Event], name: Optional[str] = None):
        # Inlined Event.__init__: one condition per awaited step event in
        # the runtime scheduler makes this a hot constructor.
        self.engine = engine
        self.name = name
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.events = events = list(events)
        self._evaluate = evaluate
        self._done = 0
        self._fired = set()
        for ev in events:
            if ev.engine is not engine:
                raise SimulationError("condition mixes events of two engines")

        # Immediately-satisfiable conditions (e.g. AllOf([]) or AnyOf with an
        # already-processed event) must still go through the queue for
        # deterministic ordering.
        if not events:
            if evaluate(events, 0):
                self.succeed(self._collect())
            return
        on_event = self._on_event
        for ev in events:
            cbs = ev.callbacks
            if cbs is None:
                on_event(ev)
            else:
                cbs.append(on_event)

    def _collect(self):
        # Only events whose processing we have *observed* count as fired:
        # a Timeout is "triggered" from birth but has not happened yet.
        return {ev: ev.value for ev in self.events if ev in self._fired}

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # Someone else already resolved the condition; do not let the
                # late failure crash the engine — propagate is impossible.
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._fired.add(event)
        self._done += 1
        if self._evaluate(self.events, self._done):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as one constituent event succeeds."""

    __slots__ = ()

    def __init__(self, engine, events: Iterable[Event], name=None):
        super().__init__(engine, lambda evs, n: n > 0 or not evs, events,
                         name=name)


class AllOf(Condition):
    """Triggers once every constituent event has succeeded."""

    __slots__ = ()

    def __init__(self, engine, events: Iterable[Event], name=None):
        super().__init__(engine, lambda evs, n: n >= len(evs), events,
                         name=name)
