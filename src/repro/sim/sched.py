"""Pluggable future-event-list schedulers.

The engine's contract is a total order on ``(time, priority, seq)`` heap
entries (see :mod:`repro.sim.engine`); *how* the pending set is stored is
an implementation choice behind that contract:

``heap``
    the reference implementation — a single binary heap (``heapq``),
    O(log n) per operation.  The engine keeps its PR-3 inlined fast
    path for this scheduler; it is the default everywhere.

``calendar``
    a Brown-style **calendar queue** [Brown 1988]: a circular day-array
    of bucket "days" keyed by event time, giving amortized O(1) enqueue
    and dequeue independent of the pending-set size.  Buckets are tiny
    binary heaps of full ``(time, priority, seq, event)`` entries, so
    the dispatch order — including same-instant priority and insertion
    tie-breaks — is **byte-identical** to the heap scheduler; the
    determinism goldens are the gate, not a regeneration.

Calendar mechanics
------------------

An entry with time ``t`` lives in bucket ``int(t / width) % nbuckets``.
Dequeue walks absolute day numbers upward from the last-popped day
(``epoch``): a bucket's head entry is due iff its own day number is the
day being examined — heads belonging to a later "year" (a full wrap of
the day array) stay put.  If a whole year of days turns up empty, the
queue falls back to a direct scan for the minimum head (counted in
``direct_searches``; rare once the width matches the schedule density).

The queue resizes itself when the pending count grows past twice the
day count or shrinks below a quarter of it.  Each resize re-estimates
the bucket width from the head of the schedule the way Brown's paper
does: take the first ~25 pending entries, average their inter-event
gaps, drop outlier gaps (>= 2x the average) and use 3x the refined
average — the width that puts roughly one due event in each day.  All
of it is a pure function of the pending entries, so two same-seed runs
resize identically (determinism holds through resizes).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple

#: Valid ``ClusterSpec.scheduler`` / ``Engine(scheduler=...)`` names
#: (mirrored by :data:`repro.cluster.spec.SCHEDULERS`, sync-tested).
SCHEDULERS = ("heap", "calendar")

#: Smallest day-array ever used (shrinks stop here).
MIN_BUCKETS = 16

#: How many head entries the resize width estimate samples.
_SAMPLE = 25

#: Fallback bucket width when the schedule gives no usable gap sample
#: (e.g. every pending event at the same instant).
_DEFAULT_WIDTH = 1e-3

#: Rebuild the day array every this many pops so the width tracks the
#: current schedule density even when the pending count is steady
#: (occupancy resizes never fire then and Brown's estimate would stay
#: frozen at its boot-time value).  Pop-counter keyed, so deterministic.
_REWIDTH_POPS = 8192


class CalendarQueue:
    """Amortized-O(1) future event list with heap-identical ordering.

    The public surface is exactly what :class:`~repro.sim.engine.Engine`
    needs: :meth:`push`, :meth:`pop`, :meth:`pop_until`,
    :meth:`peek_time`, :meth:`peek_key` and ``len()``.  Entries are the
    engine's ``(time, priority, seq, event)`` tuples and come back in
    strictly non-decreasing ``(time, priority, seq)`` order.
    """

    __slots__ = ("_buckets", "_mask", "_width", "_inv_width", "_epoch",
                 "_last", "_count", "_grow_at", "_shrink_at", "_version",
                 "_staging", "resizes", "direct_searches")

    def __init__(self, width: float = _DEFAULT_WIDTH,
                 nbuckets: int = MIN_BUCKETS):
        if width <= 0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two, "
                             f"got {nbuckets}")
        self._buckets: List[list] = [[] for _ in range(nbuckets)]
        self._mask = nbuckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        # The queue's floor: every queued entry's time is >= the time of
        # the last popped entry (the engine pushes at t >= now), so the
        # day of that time is always a safe scan start.  Only pops (and
        # resizes, which re-derive it from ``_last``) may advance the
        # epoch: a peek that jumped it forward would skip over days that
        # later same-run pushes can still land on.
        self._epoch = 0
        self._last = 0.0
        self._count = 0
        # Bumped by every resize; lets the engine's inlined dispatch
        # loop cache the buckets/mask/width locals between events.
        self._version = 0
        # Pushes land here as a C-level ``list.append`` (the engine
        # binds ``_push`` straight to ``_staging.append`` — the only
        # way a push costs no Python frame) and are folded into the
        # buckets, in push order, before the next dequeue/peek.
        self._staging: List[tuple] = []
        self._grow_at = 2 * nbuckets
        self._shrink_at = 0 if nbuckets <= MIN_BUCKETS else nbuckets // 4
        #: Telemetry: day-array rebuilds / full-scan fallbacks so far.
        self.resizes = 0
        self.direct_searches = 0

    # -- properties ------------------------------------------------------

    @property
    def nbuckets(self) -> int:
        return self._mask + 1

    @property
    def width(self) -> float:
        return self._width

    def __len__(self) -> int:
        return self._count + len(self._staging)

    def __bool__(self) -> bool:
        return bool(self._count or self._staging)

    # -- core operations -------------------------------------------------

    def push(self, entry: tuple) -> None:
        """Enqueue one ``(time, priority, seq, event)`` entry."""
        self._staging.append(entry)

    def _drain(self) -> None:
        """Fold staged pushes into the buckets, in push order.

        Must run before any dequeue/peek/resize so the bucket walk sees
        the whole pending set.  Draining in push order replays exactly
        the ``heappush`` sequence direct pushes would have done, so the
        bucket heaps (and dispatch order) are byte-identical.
        """
        staged = self._staging
        if not staged:
            return
        buckets = self._buckets
        mask = self._mask
        inv_w = self._inv_width
        for entry in staged:
            heappush(buckets[int(entry[0] * inv_w) & mask], entry)
        self._count += len(staged)
        staged.clear()
        if self._count > self._grow_at:
            self._resize()

    def _find(self) -> Optional[list]:
        """The bucket holding the globally-minimal entry (``None`` when
        empty).  Pure scan — never advances ``epoch`` (see ``__init__``:
        a peek must not skip days future pushes can still land on)."""
        if self._staging:
            self._drain()
        if not self._count:
            return None
        buckets = self._buckets
        mask = self._mask
        inv_w = self._inv_width
        day = self._epoch
        remaining = mask + 2          # one full year, then give up
        while remaining:
            bucket = buckets[day & mask]
            if bucket and int(bucket[0][0] * inv_w) <= day:
                return bucket
            day += 1
            remaining -= 1
        # A whole year of empty days: the next event is at least one
        # wrap away.  Scan every bucket head for the global minimum.
        self.direct_searches += 1
        best = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        return best

    def pop(self) -> Optional[tuple]:
        """Dequeue and return the minimal entry, or ``None`` when empty.

        Body inlines :meth:`_find` — this is the engine's per-event hot
        path and the extra call measurably taxes large sweeps.
        """
        if self._staging:
            self._drain()
        count = self._count
        if not count:
            return None
        buckets = self._buckets
        mask = self._mask
        inv_w = self._inv_width
        day = self._epoch
        remaining = mask + 2
        while remaining:
            bucket = buckets[day & mask]
            if bucket and int(bucket[0][0] * inv_w) <= day:
                break
            day += 1
            remaining -= 1
        else:
            self.direct_searches += 1
            bucket = None
            for b in buckets:
                if b and (bucket is None or b[0] < bucket[0]):
                    bucket = b
        entry = heappop(bucket)
        self._last = t = entry[0]
        self._epoch = int(t * inv_w)
        self._count = count - 1
        if count - 1 < self._shrink_at:
            self._resize()
        return entry

    def pop_until(self, limit: float) -> Optional[tuple]:
        """Dequeue the minimal entry if its time is ``<= limit``; return
        ``None`` (leaving the entry queued, epoch untouched) otherwise
        or when empty."""
        bucket = self._find()
        if bucket is None or bucket[0][0] > limit:
            return None
        entry = heappop(bucket)
        self._last = t = entry[0]
        self._epoch = int(t * self._inv_width)
        self._count -= 1
        if self._count < self._shrink_at:
            self._resize()
        return entry

    def peek_time(self) -> float:
        """Time of the minimal entry, or ``inf`` when empty."""
        bucket = self._find()
        return bucket[0][0] if bucket is not None else float("inf")

    def peek_key(self) -> Optional[Tuple[float, int]]:
        """``(time, priority)`` of the minimal entry (``None`` if empty)."""
        bucket = self._find()
        return (bucket[0][0], bucket[0][1]) if bucket is not None else None

    # -- resizing --------------------------------------------------------

    def _estimate_width(self, entries: List[tuple]) -> float:
        """Brown's width rule over the (sorted) head of the schedule.

        The gaps are the *nonzero* time differences within the first
        ``_SAMPLE`` entries.  Zero gaps are skipped (bulk-synchronous
        workloads park dozens of same-instant ties at the schedule head,
        and a zero gap says nothing about spacing) but the sample stays
        confined to the first raw entries on purpose: the width must
        match the density of what is dequeued *soon*, and ranging
        further for distinct times would average in far-future timer
        bands (heartbeats seconds out) and fatten the width by orders
        of magnitude.  No usable gap in the sample keeps the old width —
        a later resize sees a fresh sample.
        """
        gaps = [b[0] - a[0]
                for a, b in zip(entries, entries[1:_SAMPLE])
                if b[0] > a[0]]
        if not gaps:
            return self._width
        avg = sum(gaps) / len(gaps)
        refined = [g for g in gaps if g < 2.0 * avg]
        ravg = (sum(refined) / len(refined)) if refined else 0.0
        return 3.0 * (ravg if ravg > 0.0 else avg)

    def _resize(self) -> None:
        """Rebuild the day array sized to the pending count, with a
        freshly estimated bucket width."""
        entries: List[tuple] = []
        for bucket in self._buckets:
            entries.extend(bucket)
        entries.sort()
        self.resizes += 1
        self._version += 1
        nbuckets = MIN_BUCKETS
        while nbuckets < len(entries):
            nbuckets <<= 1
        width = self._estimate_width(entries)
        self._width = width
        self._inv_width = inv_w = 1.0 / width
        self._mask = mask = nbuckets - 1
        self._grow_at = 2 * nbuckets
        self._shrink_at = 0 if nbuckets <= MIN_BUCKETS else nbuckets // 4
        self._buckets = buckets = [[] for _ in range(nbuckets)]
        # Ascending inserts keep every bucket a valid heap with no
        # sifting; appending directly would break ties pushed later.
        for entry in entries:
            heappush(buckets[int(entry[0] * inv_w) & mask], entry)
        # Re-derive the epoch from the floor, not from the minimum entry:
        # pushes after the resize may land anywhere in [_last, min entry).
        self._epoch = int(self._last * inv_w)

    def __repr__(self) -> str:
        return (f"<CalendarQueue n={self._count} days={self._mask + 1} "
                f"width={self._width:.3g} resizes={self.resizes} "
                f"searches={self.direct_searches}>")
