"""Named, independently-seeded random streams.

Every stochastic subsystem (failure injection, heartbeat jitter, workload
generators) draws from its own named stream so that adding randomness to one
subsystem never perturbs another — a standard reproducibility discipline in
parallel-systems simulators.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngStreams:
    """A family of :class:`numpy.random.Generator` objects keyed by name.

    The stream named ``s`` under master seed ``m`` is seeded with
    ``sha256(f"{m}:{s}")`` so streams are stable across runs and across
    unrelated code changes.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            gen = np.random.default_rng(int.from_bytes(digest[:8], "little"))
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return (f"<RngStreams seed={self.master_seed} "
                f"streams={sorted(self._streams)}>")
