"""FIFO channels (stores) for inter-process communication inside a node.

Channels are unbounded, asynchronous message queues: ``put`` never blocks,
``get`` returns an event that fires when an item is available.  They model
intra-node queues — e.g. the polling thread's received-message queue, the
object-bus event queue, and the per-connection delivery queues — where the
cost of the hop is accounted for by the *network* model, not the queue.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event


class _GetEvent(Event):
    """A channel get.

    Carries a back-reference to its channel so that an item handed to a
    getter whose process is interrupted *in the same instant* — after
    ``put()`` succeeded this event but before its dispatch — can be
    salvaged instead of vanishing with the defused event (see
    ``Process._deliver_interrupt``).  ``priority`` is the heap priority
    the item was put with, so a :class:`PriorityChannel` can re-queue a
    salvaged item into the right priority class.
    """

    __slots__ = ("channel", "priority")

    def __init__(self, engine, channel, name: Optional[str] = None):
        # Inlined Event.__init__ — one get per delivered message.
        self.engine = engine
        self.name = name
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.channel = channel
        self.priority = 0

    def salvage(self) -> None:
        """Hand the undelivered item back to the channel."""
        self.channel._redeliver(self._value, self.priority)


class Channel:
    """Unbounded FIFO queue with event-based ``get``.

    Items put while getters wait are handed to the oldest waiting getter.
    ``close()`` fails all pending and future gets with ``exc`` — used to
    model a peer crashing.

    Get events only carry a name while the engine traces — one channel get
    per delivered message makes the f-string a hot-path allocation.
    """

    __slots__ = ("engine", "name", "_items", "_getters", "_closed")

    def __init__(self, engine, name: Optional[str] = None):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed: Optional[BaseException] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed is not None

    def put(self, item: Any) -> None:
        """Enqueue ``item`` (never blocks)."""
        if self._closed is not None:
            raise SimulationError(f"put() on closed channel {self.name!r}")
        while self._getters:
            getter = self._getters.popleft()
            # A pending get whose process was interrupted is detached and
            # pre-defused (see Process._deliver_interrupt) — handing it the
            # item would silently swallow it.  Skip to the next live getter.
            if getter._value is _PENDING and not getter._defused:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = _GetEvent(self.engine, self,
                       name=f"get:{self.name}"
                       if self.engine.tracer is not None else None)
        if self._items:
            ev.succeed(self._items.popleft())
        elif self._closed is not None:
            ev.fail(self._closed)
        else:
            self._getters.append(ev)
        return ev

    def _redeliver(self, item: Any, priority: int) -> None:
        """Re-route an item whose getter abandoned it mid-instant.

        The item was already removed from the queue and handed to a get
        event that will never run — it is still live, so it goes to the
        next waiting getter, or back to the *head* of the queue (it was
        the oldest item).  A closed channel re-queues too: items present
        before the close drain first, per :meth:`close` semantics.
        """
        while self._getters:
            getter = self._getters.popleft()
            if getter._value is _PENDING and not getter._defused:
                getter.succeed(item)
                return
        self._items.appendleft(item)

    def get_nowait(self) -> Tuple[bool, Any]:
        """Non-blocking probe: ``(True, item)`` or ``(False, None)``.

        Items queued before a close drain first; once a closed channel is
        empty the close exception is raised, exactly like :meth:`get` —
        otherwise a polling loop would spin on ``(False, None)`` forever
        against a crashed peer's queue.
        """
        if self._items:
            return True, self._items.popleft()
        if self._closed is not None:
            raise self._closed
        return False, None

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (used by checkpoint protocols)."""
        return list(self._items)

    def drain(self) -> List[Any]:
        """Remove and return all queued items."""
        items = list(self._items)
        self._items.clear()
        return items

    def close(self, exc: BaseException) -> None:
        """Fail all pending and future ``get``s with ``exc``.

        Close is deliberate, so the failures are pre-defused: a getter
        whose process was already interrupted (and detached) must not
        crash the engine as an unhandled failure.
        """
        if self._closed is not None:
            return
        self._closed = exc
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(exc)
                getter.defuse()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self._items)} queued"
        return f"<Channel {self.name!r} {state}>"


class PriorityChannel(Channel):
    """A channel delivering the lowest ``(priority, fifo)`` item first.

    Items are put as ``put(item, priority=...)``; ties preserve FIFO order.
    Used by the application-process scheduler, where Starfish control events
    (checkpoint requests, view changes) outrank background work.
    """

    __slots__ = ("_heap", "_counter", "_reclaim_seq")

    #: Salvaged items re-enter the heap with counters below this base so
    #: they sort ahead of every normally-put item in their priority class
    #: (they are the oldest of that class); see :meth:`_redeliver`.
    _RECLAIM_BASE = -(2 ** 60)

    def __init__(self, engine, name: Optional[str] = None):
        super().__init__(engine, name=name)
        self._heap: List[Tuple[int, int, Any]] = []
        self._counter = 0
        self._reclaim_seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: int = 0) -> None:
        if self._closed is not None:
            raise SimulationError(f"put() on closed channel {self.name!r}")
        while self._getters:
            getter = self._getters.popleft()
            # Same guard as Channel.put: an interrupted getter is detached
            # and pre-defused; handing it the item would silently swallow a
            # control event (checkpoint request, view change).
            if getter._value is _PENDING and not getter._defused:
                getter.priority = priority
                getter.succeed(item)
                return
        self._counter += 1
        heappush(self._heap, (priority, self._counter, item))

    def get(self) -> Event:
        ev = _GetEvent(self.engine, self,
                       name=f"get:{self.name}"
                       if self.engine.tracer is not None else None)
        if self._heap:
            prio, _seq, item = heappop(self._heap)
            ev.priority = prio
            ev.succeed(item)
        elif self._closed is not None:
            ev.fail(self._closed)
        else:
            self._getters.append(ev)
        return ev

    def _redeliver(self, item: Any, priority: int) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter._value is _PENDING and not getter._defused:
                getter.priority = priority
                getter.succeed(item)
                return
        # Back to the front of its priority class: it was the oldest
        # item of that class when put() handed it out.
        self._reclaim_seq += 1
        heappush(self._heap,
                 (priority, self._RECLAIM_BASE + self._reclaim_seq, item))

    def get_nowait(self) -> Tuple[bool, Any]:
        if self._heap:
            return True, heappop(self._heap)[2]
        if self._closed is not None:
            raise self._closed
        return False, None

    def peek_all(self) -> List[Any]:
        return [item for _p, _c, item in sorted(self._heap)]

    def drain(self) -> List[Any]:
        items = self.peek_all()
        self._heap.clear()
        return items
