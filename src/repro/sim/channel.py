"""FIFO channels (stores) for inter-process communication inside a node.

Channels are unbounded, asynchronous message queues: ``put`` never blocks,
``get`` returns an event that fires when an item is available.  They model
intra-node queues — e.g. the polling thread's received-message queue, the
object-bus event queue, and the per-connection delivery queues — where the
cost of the hop is accounted for by the *network* model, not the queue.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event


class Channel:
    """Unbounded FIFO queue with event-based ``get``.

    Items put while getters wait are handed to the oldest waiting getter.
    ``close()`` fails all pending and future gets with ``exc`` — used to
    model a peer crashing.

    Get events only carry a name while the engine traces — one channel get
    per delivered message makes the f-string a hot-path allocation.
    """

    __slots__ = ("engine", "name", "_items", "_getters", "_closed")

    def __init__(self, engine, name: Optional[str] = None):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed: Optional[BaseException] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed is not None

    def put(self, item: Any) -> None:
        """Enqueue ``item`` (never blocks)."""
        if self._closed is not None:
            raise SimulationError(f"put() on closed channel {self.name!r}")
        while self._getters:
            getter = self._getters.popleft()
            # A pending get whose process was interrupted is detached and
            # pre-defused (see Process._deliver_interrupt) — handing it the
            # item would silently swallow it.  Skip to the next live getter.
            if getter._value is _PENDING and not getter._defused:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.engine,
                   name=f"get:{self.name}"
                   if self.engine.tracer is not None else None)
        if self._items:
            ev.succeed(self._items.popleft())
        elif self._closed is not None:
            ev.fail(self._closed)
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Tuple[bool, Any]:
        """Non-blocking probe: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (used by checkpoint protocols)."""
        return list(self._items)

    def drain(self) -> List[Any]:
        """Remove and return all queued items."""
        items = list(self._items)
        self._items.clear()
        return items

    def close(self, exc: BaseException) -> None:
        """Fail all pending and future ``get``s with ``exc``.

        Close is deliberate, so the failures are pre-defused: a getter
        whose process was already interrupted (and detached) must not
        crash the engine as an unhandled failure.
        """
        if self._closed is not None:
            return
        self._closed = exc
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(exc)
                getter.defuse()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self._items)} queued"
        return f"<Channel {self.name!r} {state}>"


class PriorityChannel(Channel):
    """A channel delivering the lowest ``(priority, fifo)`` item first.

    Items are put as ``put(item, priority=...)``; ties preserve FIFO order.
    Used by the application-process scheduler, where Starfish control events
    (checkpoint requests, view changes) outrank background work.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self, engine, name: Optional[str] = None):
        super().__init__(engine, name=name)
        self._heap: List[Tuple[int, int, Any]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: int = 0) -> None:
        if self._closed is not None:
            raise SimulationError(f"put() on closed channel {self.name!r}")
        while self._getters:
            getter = self._getters.popleft()
            if getter._value is _PENDING:
                getter.succeed(item)
                return
        self._counter += 1
        heappush(self._heap, (priority, self._counter, item))

    def get(self) -> Event:
        ev = Event(self.engine,
                   name=f"get:{self.name}"
                   if self.engine.tracer is not None else None)
        if self._heap:
            ev.succeed(heappop(self._heap)[2])
        elif self._closed is not None:
            ev.fail(self._closed)
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Tuple[bool, Any]:
        if self._heap:
            return True, heappop(self._heap)[2]
        return False, None

    def peek_all(self) -> List[Any]:
        return [item for _p, _c, item in sorted(self._heap)]

    def drain(self) -> List[Any]:
        items = self.peek_all()
        self._heap.clear()
        return items
