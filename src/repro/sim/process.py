"""Simulated processes.

A process wraps a Python generator.  Each time the generator yields an
:class:`~repro.sim.events.Event`, the process suspends until that event is
processed; the event's value is sent back into the generator (or its
exception thrown into it).  When the generator returns, the process's own
event succeeds with the return value, so processes compose: one process can
``yield`` another to wait for its completion.

Hot-path note: ``generator.send`` / ``generator.throw`` are bound once at
construction, and the helper events a process creates (start/bounce/
interrupt) only carry a name when the engine is tracing — names exist for
traces and ``repr`` only, and the f-strings are a measurable cost at
millions of resumptions.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Optional

from repro.errors import Interrupt, SimulationError
from repro.sim.events import _PENDING, Event


class Process(Event):
    """A running simulated process (also an event: fires on termination)."""

    __slots__ = ("generator", "_send", "_throw", "_target", "_interrupts")

    def __init__(self, engine, generator: GeneratorType,
                 name: Optional[str] = None):
        if generator.__class__ is not GeneratorType:
            raise SimulationError(
                f"Process needs a generator, got {generator!r} — did you "
                "forget to call the process function?")
        # Inlined Event.__init__ (one process per isend makes this hot).
        self.engine = engine
        self.name = name or generator.__name__
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.generator = generator
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process is currently waiting on (None when ready).
        self._interrupts: list = []
        # Kick the process off via an immediately-succeeding event so that
        # it starts inside the engine loop, in deterministic order.
        start = Event(engine,
                      name=f"start:{self.name}"
                      if engine.tracer is not None else None)
        start.callbacks.append(self._resume)
        start.succeed()
        self._target = start

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The interrupt is delivered via the queue (never synchronously), so
        the interrupter keeps running first.  Interrupting a terminated
        process is an error; interrupting a process twice before it handles
        the first interrupt delivers both, in order.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        if self is self.engine.active_process:
            raise SimulationError("a process cannot interrupt itself")
        hit = Event(self.engine,
                    name=f"interrupt:{self.name}"
                    if self.engine.tracer is not None else None)
        self._interrupts.append(cause)
        hit.callbacks.append(self._deliver_interrupt)
        hit.succeed()

    def _deliver_interrupt(self, _event: Event) -> None:
        if self.triggered or not self._interrupts:
            return
        cause = self._interrupts.pop(0)
        target = self._target
        if target is not None and not target.processed:
            # Detach from whatever we were waiting for; a later failure of
            # the abandoned event must not crash the engine as unhandled.
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            target.defuse()
            if target._ok:
                # The abandoned event already *succeeded* — a channel put()
                # handed it an item in this same instant, and defusing it
                # would silently swallow that item.  Events that carry live
                # cargo expose salvage() to give it back to their source
                # (see channel._GetEvent).
                salvage = getattr(target, "salvage", None)
                if salvage is not None:
                    salvage()
        self._target = None
        self._step(throw=Interrupt(cause))

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(send=event._value)
        else:
            event._defused = True
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None):
        engine = self.engine
        prev = engine.active_process
        engine.active_process = self
        try:
            if throw is not None:
                target = self._throw(throw)
            else:
                target = self._send(send)
        except StopIteration as stop:
            engine.active_process = prev
            self.succeed(stop.value)
            return
        except BaseException as exc:
            engine.active_process = prev
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        engine.active_process = prev

        if not isinstance(target, Event):
            msg = (f"process {self.name!r} yielded {target!r}; processes may "
                   "only yield events (did you mean 'yield from'?)")
            self._step(throw=SimulationError(msg))
            return
        if target.engine is not engine:
            self._step(throw=SimulationError(
                f"process {self.name!r} yielded an event of another engine"))
            return
        callbacks = target.callbacks
        if callbacks is None:
            # Already over: resume immediately but through the queue, to
            # keep scheduling deterministic.
            bounce = Event(engine,
                           name=f"bounce:{self.name}"
                           if engine.tracer is not None else None)
            bounce.callbacks.append(self._resume)
            bounce.trigger_from(target)
            self._target = bounce
        else:
            callbacks.append(self._resume)
            self._target = target

    def __repr__(self) -> str:
        state = "dead" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
