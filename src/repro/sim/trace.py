"""Event tracing.

The tracer records ``(time, event-name, event-type)`` triples for every
processed event.  The Figure 6 benchmark uses a higher-level span API —
:meth:`Tracer.span_start` / :meth:`Tracer.span_end` — to time how long a
message spends inside each software layer (application, MPI, VNI, driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""
    time: float
    kind: str
    name: Optional[str]


@dataclass
class Span:
    """A named interval of simulated time, with free-form attributes."""
    layer: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.layer!r} still open")
        return self.end - self.start


class Tracer:
    """Collects event records and layer spans."""

    def __init__(self, keep_events: bool = True):
        self.keep_events = keep_events
        self.events: List[TraceRecord] = []
        self.spans: List[Span] = []
        self._open: Dict[Tuple[str, Any], Span] = {}

    # -- raw event tracing ------------------------------------------------

    def record(self, time: float, event: Any) -> None:
        if self.keep_events:
            self.events.append(TraceRecord(
                time, type(event).__name__, getattr(event, "name", None)))

    # -- layer spans (Figure 6) -------------------------------------------

    def span_start(self, layer: str, key: Any, now: float, **attrs) -> None:
        """Open a span for message ``key`` inside ``layer``."""
        self._open[(layer, key)] = Span(layer, now, attrs=dict(attrs))

    def span_end(self, layer: str, key: Any, now: float) -> Optional[Span]:
        """Close the span; returns it (or ``None`` if it was never opened)."""
        span = self._open.pop((layer, key), None)
        if span is not None:
            span.end = now
            self.spans.append(span)
        return span

    def spans_by_layer(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.layer, []).append(span)
        return out

    def clear(self) -> None:
        self.events.clear()
        self.spans.clear()
        self._open.clear()
