"""Event tracing.

The tracer records ``(time, event-name, event-type)`` triples for every
processed event.  The Figure 6 benchmark uses a higher-level span API —
:meth:`Tracer.span_start` / :meth:`Tracer.span_end` — to time how long a
message spends inside each software layer (application, MPI, VNI, driver).

Memory is bounded: event records live in a ring buffer (``max_events``,
default 100k) — once full, the oldest records rotate out and
:attr:`Tracer.events_dropped` counts the loss.  Spans that are opened but
never closed are *leaks*; they are never silently discarded —
:meth:`Tracer.open_spans` lists them and :meth:`Tracer.clear` returns
them.  Chrome ``trace_event`` export over the collected spans/records
lives in :func:`repro.obs.export.chrome_trace`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Default ring-buffer capacity for raw event records.
DEFAULT_MAX_EVENTS = 100_000


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""
    time: float
    kind: str
    name: Optional[str]


@dataclass
class Span:
    """A named interval of simulated time, with free-form attributes."""
    layer: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.layer!r} still open")
        return self.end - self.start


class Tracer:
    """Collects event records and layer spans."""

    def __init__(self, keep_events: bool = True,
                 max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1 (got {max_events})")
        self.keep_events = keep_events
        self.max_events = max_events
        self._events: deque = deque(maxlen=max_events)
        self._recorded = 0
        self.spans: List[Span] = []
        self._open: Dict[Tuple[str, Any], Span] = {}

    # -- raw event tracing ------------------------------------------------

    @property
    def events(self) -> List[TraceRecord]:
        """Retained records, oldest first (ring-buffer view)."""
        return list(self._events)

    @property
    def events_dropped(self) -> int:
        """Records lost to ring-buffer rotation."""
        return self._recorded - len(self._events)

    def record(self, time: float, event: Any) -> None:
        if self.keep_events:
            self._events.append(TraceRecord(
                time, type(event).__name__, getattr(event, "name", None)))
            self._recorded += 1

    # -- layer spans (Figure 6) -------------------------------------------

    def span_start(self, layer: str, key: Any, now: float, **attrs) -> None:
        """Open a span for message ``key`` inside ``layer``."""
        self._open[(layer, key)] = Span(layer, now, attrs=dict(attrs))

    def span_end(self, layer: str, key: Any, now: float) -> Optional[Span]:
        """Close the span; returns it (or ``None`` if it was never opened —
        leaked opens stay visible through :meth:`open_spans`)."""
        span = self._open.pop((layer, key), None)
        if span is not None:
            span.end = now
            self.spans.append(span)
        return span

    def open_spans(self) -> List[Span]:
        """Spans started but not yet ended (in start order) — a non-empty
        result after a workload finishes means someone leaked a span."""
        return sorted(self._open.values(), key=lambda s: s.start)

    def spans_by_layer(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.layer, []).append(span)
        return out

    def clear(self) -> List[Span]:
        """Drop all records and spans; *returns* the still-open spans that
        were discarded so leaks surface instead of vanishing."""
        leaked = self.open_spans()
        self._events.clear()
        self._recorded = 0
        self.spans.clear()
        self._open.clear()
        return leaked
