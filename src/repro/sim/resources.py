"""Capacity-limited resources.

A :class:`Resource` models mutual exclusion / limited parallelism — most
importantly the per-node IDE disk in the checkpoint model, where concurrent
checkpoint writers on the same node queue up behind each other (this is the
source of the multi-node slowdown visible in Figures 3 and 4).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.sim.events import Event


class Resource:
    """A resource with ``capacity`` slots, granted FIFO.

    Usage inside a process::

        req = disk.request()
        yield req
        try:
            yield eng.timeout(write_time)
        finally:
            disk.release(req)
    """

    __slots__ = ("engine", "capacity", "name", "_in_use", "_waiting",
                 "_granted")

    def __init__(self, engine, capacity: int = 1, name: Optional[str] = None):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Event] = deque()
        self._granted: set = set()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires once a slot is granted."""
        ev = Event(self.engine,
                   name=f"req:{self.name}"
                   if self.engine.tracer is not None else None)
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted.add(ev)
            ev.succeed(ev)
        else:
            self._waiting.append(ev)
        return ev

    def release(self, req: Event) -> None:
        """Release the slot granted to ``req``."""
        if req in self._granted:
            self._granted.remove(req)
            self._in_use -= 1
        elif req in self._waiting:
            # Released before it was granted (holder got interrupted).
            self._waiting.remove(req)
            return
        else:
            raise SimulationError(f"release of unknown request on {self.name!r}")
        while self._waiting and self._in_use < self.capacity:
            nxt = self._waiting.popleft()
            if nxt.triggered:
                continue
            self._in_use += 1
            self._granted.add(nxt)
            nxt.succeed(nxt)

    def __repr__(self) -> str:
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
                f"(+{len(self._waiting)} waiting)>")
