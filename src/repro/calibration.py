"""Calibration constants fit to the paper's reported measurements.

Every number in this module is traceable to a specific sentence, figure, or
table of Agbaria & Friedman's Starfish paper (see DESIGN.md §6).  The rest
of the library never hard-codes device timings — it imports them from here,
so re-calibrating to different hardware means editing exactly one file.

Units: seconds and bytes unless stated otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

KB = 1024
MB = 1024 * 1024
US = 1e-6  # one microsecond, in seconds
MS = 1e-3


# ---------------------------------------------------------------------------
# Figure 5 / Figure 6 — network transports
# ---------------------------------------------------------------------------
#
# The paper reports a 1-byte application-level round trip of 86 us over
# BIP/Myrinet and 552 us over TCP/IP, growing linearly with size, and states
# (Fig. 6) that the time spent in each software layer is independent of the
# message size because messages are never copied.  We therefore model a
# one-way message time as
#
#     sum(per-layer fixed costs) + size / wire_bandwidth
#
# and split the fixed budget across the layers of Figure 1's stack:
# application handoff, MPI module, VNI, network driver (user-level for BIP;
# syscall + kernel stack for TCP), and the wire/switch itself.

@dataclass(frozen=True)
class LayerCosts:
    """Fixed per-message one-way costs, per software layer (seconds)."""
    app_send: float
    mpi_send: float
    vni_send: float
    driver_send: float
    wire: float
    driver_recv: float
    vni_recv: float
    mpi_recv: float
    app_recv: float

    @property
    def one_way_fixed(self) -> float:
        return (self.app_send + self.mpi_send + self.vni_send
                + self.driver_send + self.wire + self.driver_recv
                + self.vni_recv + self.mpi_recv + self.app_recv)

    def as_dict(self) -> Dict[str, float]:
        return {
            "app_send": self.app_send, "mpi_send": self.mpi_send,
            "vni_send": self.vni_send, "driver_send": self.driver_send,
            "wire": self.wire, "driver_recv": self.driver_recv,
            "vni_recv": self.vni_recv, "mpi_recv": self.mpi_recv,
            "app_recv": self.app_recv,
        }


#: Effective application-level wire bandwidth (bytes/second).  These set the
#: linear slope of Figure 5; the paper only asserts linear growth, so we use
#: era-appropriate values: ~100 Mb/s switched Ethernet with protocol
#: overhead, and BIP/Myrinet as measured for byte-code era prototypes.
TCP_BANDWIDTH = 8.0 * MB
BIP_BANDWIDTH = 30.0 * MB

#: Fixed header the MPI layer prepends to every data message.  The paper's
#: application-level measurements include header serialization, so the wire
#: layer constants below are reduced by the header's wire time to keep the
#: 1-byte anchors exact.
DATA_HEADER = 48

#: BIP over Myrinet: user-level network interface, kernel bypassed.
#: Fixed one-way total + header wire time = 43 us => 1-byte RTT ~ 86 us.
BIP_LAYERS = LayerCosts(
    app_send=2 * US, mpi_send=5 * US, vni_send=4 * US, driver_send=4 * US,
    wire=13 * US - DATA_HEADER / BIP_BANDWIDTH,
    driver_recv=4 * US, vni_recv=4 * US, mpi_recv=5 * US, app_recv=2 * US,
)

#: TCP/IP over Ethernet: driver cost dominated by syscalls and the kernel
#: protocol stack.  Fixed one-way total + header = 276 us => 552 us RTT.
TCP_LAYERS = LayerCosts(
    app_send=2 * US, mpi_send=5 * US, vni_send=4 * US, driver_send=105 * US,
    wire=27 * US - DATA_HEADER / TCP_BANDWIDTH,
    driver_recv=120 * US, vni_recv=4 * US, mpi_recv=5 * US, app_recv=4 * US,
)

#: Paper anchor points used by tests (RTT for a 1-byte ping).
RTT_1BYTE_BIP = 86 * US
RTT_1BYTE_TCP = 552 * US


def one_way_time(layers: LayerCosts, bandwidth: float, nbytes: int) -> float:
    """Predicted app-level one-way latency for an ``nbytes`` payload."""
    return layers.one_way_fixed + (nbytes + DATA_HEADER) / bandwidth


# ---------------------------------------------------------------------------
# Local (intra-node) costs
# ---------------------------------------------------------------------------

#: Hop over the local daemon<->application-process TCP connection.
LOCAL_TCP_HOP = 60 * US
#: Posting and dispatching one event on the object bus.
BUS_DISPATCH = 3 * US
#: Polling thread wake-up period when idle.
POLL_PERIOD = 20 * US
#: Receive-side overhead when the polling thread is DISABLED and a blocking
#: receive must enter the kernel itself (ablation bench §2.2.1).
BLOCKING_RECV_SYSCALL = 130 * US
#: Per-member processing inside Ensemble for one totally-ordered multicast.
ENSEMBLE_PER_MEMBER = 15 * US
#: Fixed cost of one Ensemble multicast round (sequencer processing).
ENSEMBLE_ROUND_BASE = 180 * US
#: Heartbeat period / failure-suspicion timeout of the failure detector.
HEARTBEAT_PERIOD = 50 * MS
SUSPECT_TIMEOUT = 200 * MS


# ---------------------------------------------------------------------------
# Figures 3 and 4 — checkpoint timing model
# ---------------------------------------------------------------------------
#
# Figure 3 (native, process-level dumps through the IDE disk):
#   632 KB empty image: 0.104061 s (1 node), 0.131898 s (2), 0.149219 s (4);
#   largest file 135 MB.  Writing dominates; the node-count growth is the
#   stop-and-sync barrier + stable-storage commit, which we calibrate as a
#   residual interpolated through the paper's anchors (log2 piecewise).
#
# Figure 4 (VM-level, portable serialization, buffered writes):
#   260 KB empty image: 0.0077 s (1), 0.0205 s (2), 0.052 s (4);
#   largest file 96 MB for the same application whose native file is 135 MB
#   (the VM image is not saved and the encoding is more compact).

#: Size of an empty *native* checkpoint: the process image of the Starfish
#: run-time inside the application process (the daemon's state is never
#: saved — see §5 of the paper).
NATIVE_EMPTY_IMAGE = 632 * KB
#: Size of an empty *VM-level* checkpoint (no VM image, headers dropped).
VM_EMPTY_IMAGE = 260 * KB
#: Portable encoding of application payload relative to its native size:
#: (96 MB - 260 KB) / (135 MB - 632 KB).
VM_PAYLOAD_FACTOR = (96.0 * 1e6 - 260 * KB) / (135.0 * 1e6 - 632 * KB)

#: Effective synchronous dump bandwidth of the era's IDE disk (native path).
NATIVE_DISK_BANDWIDTH = 6.5 * MB
#: Effective serialize-and-buffered-write bandwidth of the VM-level path.
VM_DUMP_BANDWIDTH = 34.0 * MB

#: Paper anchors: total stop-and-sync checkpoint time for the *empty*
#: program, keyed by number of nodes.
FIG3_ANCHORS: Dict[int, float] = {1: 0.104061, 2: 0.131898, 4: 0.149219}
FIG4_ANCHORS: Dict[int, float] = {1: 0.0077, 2: 0.0205, 4: 0.052}


def _residuals(anchors: Dict[int, float], empty_image: int,
               bandwidth: float) -> Dict[int, float]:
    """Barrier/commit residual per node count: anchor minus pure write time."""
    write = empty_image / bandwidth
    return {n: t - write for n, t in anchors.items()}


def sync_residual(nodes: int, anchors: Dict[int, float], empty_image: int,
                  bandwidth: float) -> float:
    """Stop-and-sync barrier + commit cost for ``nodes`` participants.

    Piecewise-linear in log2(nodes) through the paper's 1/2/4-node anchors,
    extrapolating the last segment's slope beyond 4 nodes.  This captures a
    tree-structured barrier whose depth grows with log(n) while matching the
    published points exactly.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    res = _residuals(anchors, empty_image, bandwidth)
    xs = sorted(res)                     # [1, 2, 4]
    lx = math.log2(nodes)
    pts: Sequence[Tuple[float, float]] = [(math.log2(n), res[n]) for n in xs]
    # Before the first anchor (impossible: nodes >= 1 = first anchor).
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        if lx <= x1:
            return y0 + (y1 - y0) * (lx - x0) / (x1 - x0)
    # Extrapolate beyond the last anchor.
    (x0, y0), (x1, y1) = pts[-2], pts[-1]
    return y1 + (y1 - y0) * (lx - x1) / (x1 - x0)


#: Simulated cost of the stop-and-sync message rounds themselves (begin /
#: counts / done / commit through the lightweight group), measured on this
#: substrate.  The commit-barrier residual deducts it so the *total*
#: simulated checkpoint time matches the paper's anchors rather than
#: paying the rounds twice.
PROTOCOL_ROUND_ANCHORS: Dict[int, float] = {1: 0.0004, 2: 0.0030, 4: 0.0044}


def protocol_round_estimate(nodes: int) -> float:
    """Log2-interpolated stop-and-sync round cost for ``nodes`` members."""
    xs = sorted(PROTOCOL_ROUND_ANCHORS)
    lx = math.log2(max(1, nodes))
    pts = [(math.log2(n), PROTOCOL_ROUND_ANCHORS[n]) for n in xs]
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        if lx <= x1:
            return y0 + (y1 - y0) * (lx - x0) / (x1 - x0)
    (x0, y0), (x1, y1) = pts[-2], pts[-1]
    return y1 + (y1 - y0) * (lx - x1) / (x1 - x0)


def native_checkpoint_time(payload_bytes: int, nodes: int) -> float:
    """Predicted Figure-3 stop-and-sync time (per-node payload, n nodes)."""
    write = (NATIVE_EMPTY_IMAGE + payload_bytes) / NATIVE_DISK_BANDWIDTH
    return write + sync_residual(nodes, FIG3_ANCHORS, NATIVE_EMPTY_IMAGE,
                                 NATIVE_DISK_BANDWIDTH)


def vm_checkpoint_time(native_payload_bytes: int, nodes: int) -> float:
    """Predicted Figure-4 time for the same application payload."""
    encoded = VM_PAYLOAD_FACTOR * native_payload_bytes
    write = (VM_EMPTY_IMAGE + encoded) / VM_DUMP_BANDWIDTH
    return write + sync_residual(nodes, FIG4_ANCHORS, VM_EMPTY_IMAGE,
                                 VM_DUMP_BANDWIDTH)


#: Extra cost of *restoring* a heterogeneous checkpoint on a machine whose
#: representation differs from the source: per-byte conversion cost.
HETERO_CONVERT_BANDWIDTH = 25.0 * MB

#: Disk read bandwidth during restart.
DISK_READ_BANDWIDTH = 9.0 * MB

#: Fixed process spawn / exec cost on a daemon.
SPAWN_COST = 35 * MS
#: Fixed cost of rebuilding the runtime on restart before state is loaded.
RESTART_BASE = 20 * MS
