"""Upcalls delivered to lightweight-group subscribers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.gcs.endpoint import EndpointId


class LwgEvent:
    """Base class of lightweight-group upcalls."""


@dataclass(frozen=True)
class LwgView(LwgEvent):
    """The lightweight group's membership changed."""

    app_id: str
    members: Tuple[EndpointId, ...]
    joined: Tuple[EndpointId, ...]
    left: Tuple[EndpointId, ...]


@dataclass(frozen=True)
class LwgCast(LwgEvent):
    """A totally-ordered multicast within the lightweight group."""

    app_id: str
    source: EndpointId
    payload: Any
    kind: str = "coordination"


@dataclass(frozen=True)
class LwgP2p(LwgEvent):
    """A direct message between two members of the lightweight group."""

    app_id: str
    source: EndpointId
    payload: Any
    kind: str = "coordination"
