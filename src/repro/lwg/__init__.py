"""Lightweight groups (system S5), after Guo & Rodrigues' dynamic
light-weight groups — the mechanism Starfish uses to scope per-application
membership and coordination without paying for one full process group per
application.

Design (paper §2.1):

* Lightweight-group **membership operations** (create / join / leave) are
  rare, so they ride the *main* Starfish group's totally-ordered multicast —
  every daemon therefore has an identical replica of every lightweight
  group's member list, and main-group view changes (node failures) shrink
  all lightweight groups consistently and locally, with no extra protocol.
* Lightweight-group **data messages** (coordination and C/R traffic of one
  application) are frequent, so they travel point-to-point: the lightweight
  group's coordinator sequences them and relays them only to that group's
  members — the efficiency argument for lightweight groups.

The ablation benchmark ``bench_ablation_lwg`` compares this against the
naive "one full process group per application" design.
"""

from repro.lwg.manager import LwgManager
from repro.lwg.events import LwgCast, LwgEvent, LwgView

__all__ = ["LwgCast", "LwgEvent", "LwgManager", "LwgView"]
