"""The lightweight membership module.

One :class:`LwgManager` runs inside every daemon, layered on that daemon's
main-group :class:`~repro.gcs.member.GroupMember`.  The daemon's event loop
feeds every main-group upcall through :meth:`LwgManager.on_main_event`; the
manager consumes the ones that belong to the lightweight layer and returns
``True`` for them.

Protocol envelopes on the main group:

* membership ops (total-order casts): ``("lwg-op", op, app_id, endpoint)``
  with op in {create, join, leave, destroy}; *create* carries the initial
  member tuple instead of one endpoint;
* data (point-to-point): ``("lwg-data", app_id, origin, lseq, payload,
  kind)`` to the group's sequencer and ``("lwg-ord", app_id, gseq, origin,
  lseq, payload, kind)`` from the sequencer to members.

Because membership ops are totally ordered, every daemon holds an identical
replica of every group's member list, and a main-group view change shrinks
all lightweight groups locally and consistently — no extra agreement
protocol, which is the entire point of lightweight groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import NotMember
from repro.gcs.endpoint import EndpointId
from repro.gcs.events import CastEvent, GcsEvent, P2pEvent, ViewEvent
from repro.gcs.member import GroupMember
from repro.lwg.events import LwgCast, LwgP2p, LwgView
from repro.sim.channel import Channel


@dataclass
class _LwgState:
    """Replicated (per daemon) state of one lightweight group."""

    app_id: str
    members: Tuple[EndpointId, ...] = ()
    #: Ordering epoch: bumped by every membership change.  Membership ops
    #: are totally ordered, so every replica counts the same changes and
    #: the epochs agree — which lets an ``lwg-ord`` receiver tell whether
    #: a gseq belongs to its current numbering or to one it has not
    #: applied yet (direct sends from the sequencer are NOT ordered
    #: against the main group's total order, so both happen).
    epoch: int = 0
    # -- sequencer side (only used by the current coordinator) --
    next_gseq: int = 0
    seen_keys: Set[Tuple[EndpointId, int]] = field(default_factory=set)
    #: Data from origins whose membership op we have not applied yet;
    #: re-sequenced at the membership change that admits them.
    stash: List[tuple] = field(default_factory=list)
    # -- member side --
    next_deliver: int = 0
    ooo: Dict[int, tuple] = field(default_factory=dict)
    #: Ordered messages from a future epoch, replayed once we catch up:
    #: epoch -> gseq -> delivery item.
    future: Dict[int, Dict[int, tuple]] = field(default_factory=dict)
    delivered_keys: Set[Tuple[EndpointId, int]] = field(default_factory=set)

    @property
    def coordinator(self) -> Optional[EndpointId]:
        return min(self.members) if self.members else None

    def reset_ordering(self) -> None:
        self.epoch += 1
        self.next_gseq = 0
        self.seen_keys = set()
        self.next_deliver = 0
        self.ooo = {}
        # delivered_keys survives: dedup across re-sends spanning a change.
        # future survives too: it may hold this very epoch's messages.


class LwgManager:
    """Lightweight membership + lightweight endpoints' message fan-out."""

    def __init__(self, engine, gm: GroupMember):
        self.engine = engine
        self.gm = gm
        self.groups: Dict[str, _LwgState] = {}
        #: Local subscribers: app_id -> channel of LwgEvent.
        self._subs: Dict[str, Channel] = {}
        #: Our un-sequenced data messages per group: app -> {lseq: (payload, kind, size)}
        self._pending: Dict[str, Dict[int, tuple]] = {}
        self._next_lseq: Dict[str, int] = {}
        #: Protocol traffic for groups we hold no replica of (yet): a
        #: joining daemon can receive ops/data/ords BEFORE it absorbs the
        #: state blob — the blob rides the ViewMsg from the view
        #: coordinator while these are direct sends and casts from other
        #: members, and nothing orders the two.  Parked in arrival order
        #: and replayed when the replica materializes.
        self._orphans: Dict[str, List[tuple]] = {}
        self.stats = {"casts": 0, "delivered": 0, "relayed": 0}

    @property
    def endpoint(self) -> EndpointId:
        return self.gm.endpoint

    # ------------------------------------------------------------------
    # subscriptions (the lightweight *endpoint* side)
    # ------------------------------------------------------------------

    def subscribe(self, app_id: str) -> Channel:
        """Channel on which this daemon receives the group's upcalls."""
        ch = self._subs.get(app_id)
        if ch is None:
            ch = Channel(self.engine, name=f"lwg:{app_id}@{self.endpoint}")
            self._subs[app_id] = ch
        return ch

    def unsubscribe(self, app_id: str) -> None:
        self._subs.pop(app_id, None)

    def members(self, app_id: str) -> Tuple[EndpointId, ...]:
        state = self.groups.get(app_id)
        return state.members if state else ()

    # ------------------------------------------------------------------
    # state transfer (piggybacks on the daemon's main-group join blob)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Tuple[Tuple[EndpointId, ...], int]]:
        """Replicated membership (+ ordering epoch) of every group, for
        the state blob.

        A daemon booted after a group's *create* cast has no replica of
        that group, so without this transfer it would silently drop every
        subsequent ``lwg-op`` naming it (``_apply_op`` has nothing to
        apply the op *to*) and never learn its own membership.
        """
        return {app_id: (state.members, state.epoch)
                for app_id, state in self.groups.items()}

    def absorb(self, groups: Dict[str, Tuple[Tuple[EndpointId, ...], int]]
               ) -> None:
        """Adopt group replicas when joining the main group.

        The snapshot is taken by the view-change coordinator *before* its
        own lwg layer applies that view, so it may still list endpoints
        the new view declared dead; filter against the view we are joining
        under so our replica matches what the old daemons converge to —
        and when the filter drops someone, count the epoch bump the old
        replicas will apply for that same view, so the numbering agrees.
        Ordering counters start at zero — safe, because any op that makes
        us a member resets them on every replica (``_change_members``).
        """
        alive = (set(self.gm.view.members)
                 if self.gm.view is not None else None)
        for app_id, (members, epoch) in groups.items():
            if app_id in self.groups:
                continue
            filtered = tuple(members)
            if alive is not None:
                filtered = tuple(m for m in members if m in alive)
            if filtered != tuple(members):
                epoch += 1
            self.groups[app_id] = _LwgState(app_id=app_id, members=filtered,
                                            epoch=epoch)
            self._replay_orphans(app_id)

    def _park_orphan(self, app_id: str, payload: tuple) -> None:
        self._orphans.setdefault(app_id, []).append(payload)

    def _replay_orphans(self, app_id: str) -> None:
        """Re-dispatch traffic that arrived before the group's replica
        existed here; every handler re-checks its own preconditions."""
        for payload in self._orphans.pop(app_id, []):
            tag = payload[0]
            if tag == "lwg-op":
                self._apply_op(payload)
            elif tag == "lwg-data":
                self._sequence(payload)
            elif tag == "lwg-ord":
                self._receive_ordered(payload)

    # ------------------------------------------------------------------
    # membership operations (ride the main group's total order)
    # ------------------------------------------------------------------

    def create(self, app_id: str, members) -> None:
        """Create a lightweight group spanning ``members`` (daemons)."""
        self.gm.cast(("lwg-op", "create", app_id, tuple(sorted(members))))

    def join(self, app_id: str, member: Optional[EndpointId] = None) -> None:
        self.gm.cast(("lwg-op", "join", app_id, member or self.endpoint))

    def leave(self, app_id: str, member: Optional[EndpointId] = None) -> None:
        """Terminate (our or ``member``'s) membership in the group."""
        self.gm.cast(("lwg-op", "leave", app_id, member or self.endpoint))

    def destroy(self, app_id: str) -> None:
        self.gm.cast(("lwg-op", "destroy", app_id, None))

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def cast(self, app_id: str, payload: Any, kind: str = "coordination",
             size: int = 256) -> None:
        """Totally-ordered multicast within the lightweight group."""
        state = self.groups.get(app_id)
        if state is None or self.endpoint not in state.members:
            raise NotMember(f"{self.endpoint} is not in lwg {app_id!r}")
        lseq = self._next_lseq.get(app_id, 0)
        self._next_lseq[app_id] = lseq + 1
        self._pending.setdefault(app_id, {})[lseq] = (payload, kind, size)
        self.stats["casts"] += 1
        self._send_data(app_id, state, lseq, payload, kind, size)

    def send(self, app_id: str, dest: EndpointId, payload: Any,
             kind: str = "coordination", size: int = 256) -> None:
        """Direct message to one member of the lightweight group."""
        self.gm.send(dest, ("lwg-p2p", app_id, payload, kind), size=size,
                     kind=kind)

    def _send_data(self, app_id, state, lseq, payload, kind, size) -> None:
        coord = state.coordinator
        if coord is None:
            return  # group empty; pending is re-sent on membership change
        self.gm.send(coord, ("lwg-data", app_id, self.endpoint, lseq,
                             payload, kind), size=size, kind=kind)

    # ------------------------------------------------------------------
    # main-group event intake
    # ------------------------------------------------------------------

    def on_main_event(self, ev: GcsEvent) -> bool:
        """Feed a main-group upcall through the lightweight layer.

        Returns ``True`` if the event was consumed here (pure lwg traffic);
        main-group view changes return ``False`` so the daemon can also act
        on them, but their lwg side effects are applied.
        """
        if isinstance(ev, ViewEvent):
            self._apply_main_view(ev)
            return False
        if isinstance(ev, CastEvent):
            payload = ev.payload
            if isinstance(payload, tuple) and payload and payload[0] == "lwg-op":
                self._apply_op(payload)
                return True
            return False
        if isinstance(ev, P2pEvent):
            payload = ev.payload
            if not (isinstance(payload, tuple) and payload):
                return False
            tag = payload[0]
            if tag == "lwg-data":
                self._sequence(payload)
                return True
            if tag == "lwg-ord":
                self._receive_ordered(payload)
                return True
            if tag == "lwg-p2p":
                _, app_id, inner, kind = payload
                self._emit(app_id, LwgP2p(app_id=app_id, source=ev.source,
                                          payload=inner, kind=kind))
                return True
            return False
        return False

    # -- membership mechanics ----------------------------------------------

    def _apply_op(self, payload: tuple) -> None:
        _, op, app_id, arg = payload
        state = self.groups.get(app_id)
        if op == "create":
            if state is not None:
                return  # duplicate create (e.g. re-cast after view change)
            state = _LwgState(app_id=app_id, members=tuple(sorted(arg)))
            self.groups[app_id] = state
            self._emit(app_id, LwgView(app_id=app_id, members=state.members,
                                       joined=state.members, left=()))
            self._replay_orphans(app_id)
            return
        if state is None:
            if op == "destroy":
                self._orphans.pop(app_id, None)
            else:
                self._park_orphan(app_id, payload)
            return
        if op == "destroy":
            del self.groups[app_id]
            self._orphans.pop(app_id, None)
            self._emit(app_id, LwgView(app_id=app_id, members=(),
                                       joined=(), left=state.members))
            return
        old = state.members
        if op == "join" and arg not in old:
            new = tuple(sorted(old + (arg,)))
        elif op == "leave" and arg in old:
            new = tuple(m for m in old if m != arg)
        else:
            return
        self._change_members(state, new)

    def _apply_main_view(self, ev: ViewEvent) -> None:
        alive = set(ev.view.members)
        for state in list(self.groups.values()):
            new = tuple(m for m in state.members if m in alive)
            if new != state.members:
                self._change_members(state, new)

    def _change_members(self, state: _LwgState, new: Tuple[EndpointId, ...]):
        old = state.members
        state.members = new
        state.reset_ordering()
        joined = tuple(sorted(set(new) - set(old)))
        left = tuple(sorted(set(old) - set(new)))
        self._emit(state.app_id, LwgView(app_id=state.app_id, members=new,
                                         joined=joined, left=left))
        # Re-drive our own unordered messages through the new coordinator.
        if self.endpoint in new:
            for lseq, (payload, kind, size) in sorted(
                    self._pending.get(state.app_id, {}).items()):
                self._send_data(state.app_id, state, lseq, payload, kind, size)
        # Replay ordered messages that arrived under this (then-future)
        # epoch before the change itself did.
        if self.endpoint in new:
            for gseq, item in sorted(state.future.pop(state.epoch,
                                                      {}).items()):
                self._ingest(state, gseq, item)
        else:
            state.future.clear()
        # Re-sequence parked data whose origin this change just admitted
        # (coordinator side; _sequence re-checks every condition).
        if state.coordinator == self.endpoint and state.stash:
            parked, state.stash = state.stash, []
            for payload in parked:
                self._sequence(payload)

    # -- data mechanics ---------------------------------------------------------

    def _sequence(self, payload: tuple) -> None:
        """Coordinator role: order one data message and relay it."""
        _, app_id, origin, lseq, inner, kind = payload
        state = self.groups.get(app_id)
        if state is None:
            self._park_orphan(app_id, payload)
            return
        if state.coordinator != self.endpoint:
            return  # stale coordinator view at sender; it will re-send
        if origin not in state.members:
            # The origin applied its (totally-ordered) join before we
            # did and is already casting.  Dropping would lose the
            # message for good — the origin only re-drives its pending
            # on ITS next membership change.  Park it; the join op that
            # admits the origin re-sequences it (``_change_members``).
            state.stash.append(payload)
            return
        key = (origin, lseq)
        if key in state.seen_keys:
            return
        state.seen_keys.add(key)
        gseq = state.next_gseq
        state.next_gseq += 1
        self.stats["relayed"] += 1
        out = ("lwg-ord", app_id, state.epoch, gseq, origin, lseq, inner,
               kind)
        for m in state.members:
            if m == self.endpoint:
                self._receive_ordered(out)
            else:
                self.gm.send(m, out, size=256, kind=kind)

    def _receive_ordered(self, payload: tuple) -> None:
        _, app_id, epoch, gseq, origin, lseq, inner, kind = payload
        state = self.groups.get(app_id)
        if state is None:
            self._park_orphan(app_id, payload)
            return
        if epoch > state.epoch:
            # Sequenced under a membership change we have not applied
            # yet (the sequencer's direct send raced the main group's
            # total order).  Deliverable only after that change resets
            # our numbering — park it for the replay in
            # ``_change_members``; dropping it would wedge the stream
            # at a gseq hole nobody will ever fill.
            state.future.setdefault(epoch, {})[gseq] = (origin, lseq,
                                                        inner, kind)
            return
        if epoch < state.epoch or self.endpoint not in state.members:
            # Stale epoch: the change that obsoleted it re-drove every
            # origin's unacknowledged casts, and ``delivered_keys``
            # dedups whatever did land before the reset.
            return
        self._ingest(state, gseq, (origin, lseq, inner, kind))

    def _ingest(self, state: _LwgState, gseq: int, item: tuple) -> None:
        if gseq == state.next_deliver:
            self._deliver(state, item)
            state.next_deliver += 1
            while state.next_deliver in state.ooo:
                self._deliver(state, state.ooo.pop(state.next_deliver))
                state.next_deliver += 1
        elif gseq > state.next_deliver:
            state.ooo[gseq] = item

    def _deliver(self, state: _LwgState, item: tuple) -> None:
        origin, lseq, inner, kind = item
        key = (origin, lseq)
        if key in state.delivered_keys:
            return  # duplicate from a re-send across a membership change
        state.delivered_keys.add(key)
        if origin == self.endpoint:
            self._pending.get(state.app_id, {}).pop(lseq, None)
        self.stats["delivered"] += 1
        self._emit(state.app_id, LwgCast(app_id=state.app_id, source=origin,
                                         payload=inner, kind=kind))

    def _emit(self, app_id: str, event) -> None:
        ch = self._subs.get(app_id)
        if ch is not None and not ch.closed:
            ch.put(event)

    def __repr__(self) -> str:
        return (f"<LwgManager {self.endpoint} groups={sorted(self.groups)} "
                f"stats={self.stats}>")
