"""Read-side exporters over the registry and the tracer.

* :func:`flatten` — one flat ``{"name{k=v}": value}`` dict (tests,
  ad-hoc asserts);
* :func:`to_text` — aligned ``name{labels} value`` lines (``repro
  metrics``);
* :func:`to_prometheus` — Prometheus text exposition format
  (``repro metrics --format prom``), histograms as cumulative
  ``_bucket{le=...}`` series;
* :func:`chrome_trace` — Chrome ``trace_event`` JSON (load in
  ``chrome://tracing`` / Perfetto) built from
  :class:`~repro.sim.trace.Tracer` spans and records plus the structured
  event log (``repro trace --chrome``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.instruments import Histogram

#: Simulated seconds -> trace_event microseconds.
_US = 1e6


def _flat_key(name: str, labels, extra: str = "") -> str:
    pairs = [f"{k}={v}" for k, v in labels]
    if extra:
        pairs.append(extra)
    return name + ("{" + ",".join(pairs) + "}" if pairs else "")


def flatten(registry) -> Dict[str, float]:
    """Every series as one flat dict; histograms contribute ``_count``,
    ``_sum``, and cumulative ``_bucket{le=...}`` entries."""
    out: Dict[str, float] = {}
    for inst in registry.instruments():
        if isinstance(inst, Histogram):
            out[_flat_key(inst.name + "_count", inst.labels)] = inst.count
            out[_flat_key(inst.name + "_sum", inst.labels)] = inst.sum
            for bound, n in inst.bucket_counts().items():
                out[_flat_key(inst.name + "_bucket", inst.labels,
                              extra=f"le={_bound_str(bound)}")] = n
        else:
            out[_flat_key(inst.name, inst.labels)] = inst.value
    for name, labels, value in registry.sampled_gauges():
        out[_flat_key(name, labels)] = value
    return out


def _bound_str(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:g}"


def to_text(registry) -> str:
    """Human-oriented flat listing, sorted by series name."""
    flat = flatten(registry)
    if not flat:
        return "(no metrics recorded)"
    width = max(len(k) for k in flat)
    return "\n".join(f"{k:<{width}}  {v:g}" for k, v in sorted(flat.items()))


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels, extra: str = "") -> str:
    pairs = [f'{_prom_name(k)}="{v}"' for k, v in labels]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(registry) -> str:
    """Prometheus text exposition format (v0.0.4)."""
    lines: List[str] = []
    typed: set = set()

    def declare(name: str, kind: str, help: str) -> None:
        if name in typed:
            return
        typed.add(name)
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")

    for inst in registry.instruments():
        pname = _prom_name(inst.name)
        if isinstance(inst, Histogram):
            declare(pname, "histogram", inst.help)
            for bound, n in inst.bucket_counts().items():
                lines.append(f"{pname}_bucket"
                             f"{_prom_labels(inst.labels, extra=_le(bound))}"
                             f" {n}")
            lines.append(f"{pname}_sum{_prom_labels(inst.labels)}"
                         f" {inst.sum:g}")
            lines.append(f"{pname}_count{_prom_labels(inst.labels)}"
                         f" {inst.count}")
        else:
            declare(pname, inst.kind, inst.help)
            lines.append(f"{pname}{_prom_labels(inst.labels)}"
                         f" {inst.value:g}")
    for name, labels, value in registry.sampled_gauges():
        pname = _prom_name(name)
        declare(pname, "gauge", "")
        lines.append(f"{pname}{_prom_labels(labels)} {value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def _le(bound: float) -> str:
    return f'le="{_bound_str(bound)}"'


def chrome_trace(tracer, event_log=None,
                 max_records: Optional[int] = None) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document.

    * Closed tracer spans become complete (``"ph": "X"``) events on one
      track per layer;
    * still-open spans become begin (``"ph": "B"``) events, visibly
      unterminated in the viewer;
    * raw engine :class:`~repro.sim.trace.TraceRecord` entries (capped at
      ``max_records``, newest kept) and structured
      :class:`~repro.obs.events.ObsEvent` records become instant
      (``"ph": "i"``) events.

    Timestamps are simulated microseconds.  The result is
    ``json.dump``-able and loads in ``chrome://tracing`` / Perfetto.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append({"name": "thread_name", "ph": "M", "pid": 0,
                           "tid": tids[track],
                           "args": {"name": track}})
        return tids[track]

    if tracer is not None:
        for span in tracer.spans:
            events.append({
                "name": span.layer, "cat": "span", "ph": "X", "pid": 0,
                "tid": tid(span.layer), "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "args": dict(span.attrs)})
        for span in tracer.open_spans():
            events.append({
                "name": span.layer, "cat": "span", "ph": "B", "pid": 0,
                "tid": tid(span.layer), "ts": span.start * _US,
                "args": dict(span.attrs)})
        records = list(tracer.events)
        if max_records is not None and len(records) > max_records:
            records = records[-max_records:]
        for rec in records:
            events.append({
                "name": rec.name or rec.kind, "cat": rec.kind, "ph": "i",
                "pid": 0, "tid": tid("engine"), "ts": rec.time * _US,
                "s": "t"})
    if event_log is not None:
        for ev in event_log.records():
            events.append({
                "name": ev.name, "cat": "obs", "ph": "i", "pid": 0,
                "tid": tid("events"), "ts": ev.time * _US, "s": "g",
                "args": ev.field_dict})
    events.sort(key=lambda e: (e.get("ts", -1.0), e["tid"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
