"""Unified observability substrate.

Every subsystem in this repository — simulation engine, fabrics, NIC
driver, VNI, MPI, checkpoint storage and protocols, group communication,
daemons — emits its telemetry through one per-engine
:class:`~repro.obs.registry.MetricsRegistry` of typed instruments
(:class:`~repro.obs.instruments.Counter`,
:class:`~repro.obs.instruments.Gauge`,
:class:`~repro.obs.instruments.Histogram`), plus a bounded structured
:class:`~repro.obs.events.EventLog`.

Metric names are hierarchical dotted paths with label sets, e.g.
``net.frames_sent{fabric="bip-myrinet", kind="data"}`` — see DESIGN.md's
"Observability" section for the naming scheme.

Read sides: :func:`~repro.obs.export.flatten` (flat dict),
:func:`~repro.obs.export.to_text` / :func:`~repro.obs.export.to_prometheus`
(text formats, ``repro metrics``), and
:func:`~repro.obs.export.chrome_trace` (Chrome ``trace_event`` JSON built
from :class:`~repro.sim.trace.Tracer` spans, ``repro trace --chrome``).

Telemetry is on by default and zero-cost-ish when disabled: a registry
built with ``enabled=False`` hands out shared no-op instruments
(``bench_ablation_telemetry.py`` quantifies the difference).
"""

from repro.obs.events import EventLog, ObsEvent
from repro.obs.export import (chrome_trace, flatten, to_prometheus,
                              to_text)
from repro.obs.instruments import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                                   Histogram, NULL_COUNTER, NULL_GAUGE,
                                   NULL_HISTOGRAM)
from repro.obs.registry import (NULL_REGISTRY, MetricsRegistry, RegistryView,
                                get_registry)

__all__ = [
    "Counter", "Gauge", "Histogram", "DEFAULT_LATENCY_BUCKETS",
    "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
    "MetricsRegistry", "NULL_REGISTRY", "RegistryView", "get_registry",
    "EventLog", "ObsEvent",
    "flatten", "to_text", "to_prometheus", "chrome_trace",
]
