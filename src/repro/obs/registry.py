"""The per-engine metrics registry.

One :class:`MetricsRegistry` lives on every simulation
:class:`~repro.sim.engine.Engine` (``engine.metrics``); subsystems obtain
instruments by hierarchical name plus label set::

    frames = registry.counter("net.frames_sent",
                              fabric="bip-myrinet", kind="data")
    frames.inc()

``counter``/``gauge``/``histogram`` are get-or-create: the same
``(name, labels)`` always returns the same instrument object, so hot paths
fetch their handles once at construction time and pay only an attribute
bump per event afterwards.  Aggregation happens on the read side
(:meth:`sum`, :meth:`group_by`, :meth:`series`) — writers never maintain
roll-ups.

A registry built with ``enabled=False`` hands out shared no-op
instruments and an inert event log: the zero-cost-ish telemetry-off path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EventLog, NullEventLog
from repro.obs.instruments import (Counter, Gauge, Histogram, Instrument,
                                   LabelPairs, NULL_COUNTER, NULL_GAUGE,
                                   NULL_HISTOGRAM)


class MetricsRegistry:
    """Owns every instrument of one engine, keyed by (name, labels)."""

    def __init__(self, enabled: bool = True,
                 event_log_capacity: int = 10_000):
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelPairs], Instrument] = {}
        #: Lazily-evaluated gauges: (name, labels) -> zero-arg callable.
        #: Bridges live values (engine event count, queue depths) into the
        #: exporters with zero hot-path cost.
        self._gauge_fns: Dict[Tuple[str, LabelPairs], Callable[[], float]] \
            = {}
        self.events: EventLog = (EventLog(event_log_capacity) if enabled
                                 else NullEventLog())

    # ------------------------------------------------------------------
    # instrument creation (get-or-create)
    # ------------------------------------------------------------------

    @staticmethod
    def _label_key(labels: Dict[str, Any]) -> LabelPairs:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get_or_create(self, cls, name: str, labels: Dict[str, Any],
                       help: str, **kwargs) -> Instrument:
        key = (name, self._label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, labels=key[1], help=help, **kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls) or type(inst) is not cls:
            raise TypeError(f"metric {name}{dict(key[1])} already registered "
                            f"as {inst.kind}, requested {cls.kind}")
        return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get_or_create(Histogram, name, labels, help,
                                   buckets=buckets)

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 **labels: Any) -> None:
        """Register a lazily-read gauge (sampled at collect time)."""
        if not self.enabled:
            return
        self._gauge_fns[(name, self._label_key(labels))] = fn

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        return self._instruments.get((name, self._label_key(labels)))

    def value(self, name: str, **labels: Any) -> float:
        """Value of one counter/gauge series (0 if never written)."""
        inst = self.get(name, **labels)
        return inst.value if inst is not None else 0

    def series(self, name: str,
               **where: Any) -> List[Tuple[Dict[str, str], Instrument]]:
        """All series of ``name`` whose labels match the ``where`` filter."""
        want = {k: str(v) for k, v in where.items()}
        out = []
        for (n, _labels), inst in sorted(self._instruments.items()):
            if n != name:
                continue
            ld = inst.label_dict
            if all(ld.get(k) == v for k, v in want.items()):
                out.append((ld, inst))
        return out

    def sum(self, name: str, **where: Any) -> float:
        """Total over matching counter/gauge series."""
        return sum(inst.value for _labels, inst in self.series(name, **where))

    def group_by(self, name: str, label: str,
                 **where: Any) -> Dict[str, float]:
        """Per-label-value totals over matching counter/gauge series."""
        out: Dict[str, float] = {}
        for labels, inst in self.series(name, **where):
            key = labels.get(label, "")
            out[key] = out.get(key, 0) + inst.value
        return out

    def instruments(self) -> List[Instrument]:
        """Every registered instrument, sorted by (name, labels)."""
        return [inst for _key, inst in sorted(self._instruments.items())]

    def sampled_gauges(self) -> List[Tuple[str, LabelPairs, float]]:
        """Evaluate every ``gauge_fn`` now."""
        return [(name, labels, float(fn()))
                for (name, labels), fn in sorted(self._gauge_fns.items())]

    def view(self, **labels: Any) -> "RegistryView":
        """A read-only slice: only series whose labels include ``labels``.

        The view quacks like a registry to every exporter
        (``instruments()`` / ``sampled_gauges()`` / ``collect()``), so
        ``to_prometheus(registry.view(tenant="acme"))`` renders one
        tenant's series without copying anything.
        """
        return RegistryView(self, labels)

    def collect(self) -> Dict[str, float]:
        """Flat snapshot of every series (see :func:`repro.obs.flatten`)."""
        from repro.obs.export import flatten
        return flatten(self)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument and clear the event log (series and
        ``gauge_fn`` registrations survive)."""
        for inst in self._instruments.values():
            inst.reset()
        self.events.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<MetricsRegistry {state} series={len(self._instruments)} "
                f"events={len(self.events)}>")


class RegistryView:
    """A label-filtered, read-only facade over a :class:`MetricsRegistry`.

    Exposes exactly the surface the exporters consume — so per-tenant /
    per-node metric endpoints (``/metrics?tenant=...`` in
    :mod:`repro.fleet.http`) are a filter, not a second registry.
    """

    def __init__(self, registry: MetricsRegistry, want: Dict[str, Any]):
        self._registry = registry
        self._want = {k: str(v) for k, v in want.items()}

    def _match(self, label_dict: Dict[str, str]) -> bool:
        return all(label_dict.get(k) == v for k, v in self._want.items())

    def instruments(self) -> List[Instrument]:
        return [inst for inst in self._registry.instruments()
                if self._match(inst.label_dict)]

    def sampled_gauges(self) -> List[Tuple[str, LabelPairs, float]]:
        return [(name, labels, v)
                for name, labels, v in self._registry.sampled_gauges()
                if self._match(dict(labels))]

    def collect(self) -> Dict[str, float]:
        from repro.obs.export import flatten
        return flatten(self)

    def __repr__(self) -> str:
        return f"<RegistryView {self._want} of {self._registry!r}>"


#: Shared disabled registry: the fallback for engines (or test doubles)
#: that never attached one.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def get_registry(engine: Any) -> MetricsRegistry:
    """The engine's registry, or the shared no-op one."""
    reg = getattr(engine, "metrics", None)
    return reg if reg is not None else NULL_REGISTRY
