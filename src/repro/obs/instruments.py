"""Typed metric instruments.

Three instrument kinds, modelled on the usual time-series vocabulary:

* :class:`Counter` — monotonically non-decreasing count (frames sent,
  checkpoints written);
* :class:`Gauge` — a value that can go both ways (queue depth, nodes up);
* :class:`Histogram` — a distribution over *fixed* buckets (latencies),
  tracking per-bucket counts plus count/sum/min/max.

An instrument is identified by ``(name, labels)`` where ``labels`` is a
sorted tuple of ``(key, value)`` string pairs; instances are created and
owned by a :class:`~repro.obs.registry.MetricsRegistry`.  Each class has a
no-op twin (`NULL_COUNTER` et al.) handed out by disabled registries so
instrumented hot paths cost one no-op method call when telemetry is off.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default fixed buckets for latency histograms (seconds): a 1-2-5 decade
#: ladder from 1 us to 10 s.  The last implicit bucket is +inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    base * 10.0 ** exp
    for exp in range(-6, 2)
    for base in (1.0, 2.0, 5.0))


class Instrument:
    """Base: identity (name + labels) and reset."""

    kind = "abstract"

    def __init__(self, name: str, labels: LabelPairs = (), help: str = ""):
        self.name = name
        self.labels = tuple(labels)
        self.help = help

    @property
    def key(self) -> Tuple[str, LabelPairs]:
        return (self.name, self.labels)

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def reset(self) -> None:
        raise NotImplementedError

    def _label_str(self) -> str:
        if not self.labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}{self._label_str()}>"


class Counter(Instrument):
    """Monotonic counter; ``inc`` only accepts non-negative increments."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self._value += n

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0


class Gauge(Instrument):
    """Point-in-time value; settable, incrementable, decrementable."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, v: float) -> None:
        self._value = v

    def inc(self, n: float = 1) -> None:
        self._value += n

    def dec(self, n: float = 1) -> None:
        self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram(Instrument):
    """Fixed-bucket distribution.

    ``buckets`` are the upper bounds (inclusive) of the finite buckets, in
    ascending order; one extra overflow bucket (+inf) is implicit.  An
    observation lands in the first bucket whose bound is >= the value.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelPairs = (), help: str = "",
                 buckets: Optional[Sequence[float]] = None):
        super().__init__(name, labels, help)
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_LATENCY_BUCKETS)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name}: buckets must be strictly "
                             f"ascending, got {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, v: float) -> None:
        self._counts[bisect_left(self.bounds, v)] += 1
        self._count += 1
        self._sum += v
        if self._min is None or v < self._min:
            self._min = v
        if self._max is None or v > self._max:
            self._max = v

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    def bucket_counts(self) -> Dict[float, int]:
        """Cumulative counts per upper bound (Prometheus ``le`` style),
        including the terminal ``inf`` bucket."""
        out: Dict[float, int] = {}
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            out[bound] = running
        out[float("inf")] = running + self._counts[-1]
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            if running >= target:
                return bound
        return self._max if self._max is not None else float("inf")

    def reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None


# ---------------------------------------------------------------------------
# no-op twins (telemetry disabled)
# ---------------------------------------------------------------------------

class NullCounter(Counter):
    """Shared do-nothing counter; every read is zero."""

    def inc(self, n: float = 1) -> None:
        pass


class NullGauge(Gauge):
    def set(self, v: float) -> None:
        pass

    def inc(self, n: float = 1) -> None:
        pass

    def dec(self, n: float = 1) -> None:
        pass


class NullHistogram(Histogram):
    def observe(self, v: float) -> None:
        pass


NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_HISTOGRAM = NullHistogram("null", buckets=(1.0,))
