"""Bounded structured event log.

Counters answer "how many"; the event log answers "what happened when":
view installations, application restarts, checkpoint commits, node
crashes.  It is a ring buffer — old events fall off the back once
``capacity`` is reached (the drop count is kept), so a long-running
simulation cannot grow it without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ObsEvent:
    """One structured event: a simulated timestamp, a dotted name, and a
    sorted tuple of ``(key, value)`` fields."""

    time: float
    name: str
    fields: Tuple[Tuple[str, Any], ...] = ()
    #: Global emission index (0-based, monotone across the whole log).
    #: Incremental consumers cursor on this instead of list positions:
    #: once the ring rotates, positions shift under the reader but the
    #: seq of a given event never changes.  ``-1`` = not from a log.
    seq: int = -1

    @property
    def field_dict(self) -> Dict[str, Any]:
        return dict(self.fields)


class EventLog:
    """Ring buffer of :class:`ObsEvent` records."""

    def __init__(self, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError(f"event log capacity must be >= 1 "
                             f"(got {capacity})")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._emitted = 0

    def emit(self, time: float, name: str, **fields: Any) -> ObsEvent:
        event = ObsEvent(time=time, name=name,
                         fields=tuple(sorted(fields.items())),
                         seq=self._emitted)
        self._events.append(event)
        self._emitted += 1
        return event

    def records(self, name: Optional[str] = None) -> List[ObsEvent]:
        """Retained events in emission order, optionally filtered by
        (prefix of the) dotted name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events
                if e.name == name or e.name.startswith(name + ".")]

    @property
    def emitted(self) -> int:
        """Total events ever emitted (including rotated-out ones)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events lost to ring-buffer rotation."""
        return self._emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._emitted = 0


class NullEventLog(EventLog):
    """Do-nothing twin for disabled registries."""

    def __init__(self):
        super().__init__(capacity=1)

    def emit(self, time: float, name: str, **fields: Any) -> ObsEvent:
        return ObsEvent(time=time, name=name)
