"""Fleet traffic generator — many short-lived client applications.

The paper's clusters are shared: long-running MPI jobs coexist with a
churn of small client submissions arriving at the daemons.  The
workloads above (:class:`~repro.apps.jacobi.Jacobi1D` etc.) exercise a
*single* application's data path; this module exercises the *control*
path — admission, placement, startup, teardown — by pumping a stream of
short-lived jobs through the :class:`~repro.fleet.FleetController`.

It is also the event-list scheduler's adversarial regime: every arrival
plants a fresh burst of near-term timers while long-horizon heartbeat
timers sit parked far ahead, exactly the mixed-density schedule the
calendar queue's width estimation has to cope with (DESIGN.md §19).

Two pieces:

* :class:`ShortTask` — a minimal program (a few compute steps, no
  communication) whose whole life is dominated by startup/teardown;
* :class:`TrafficGenerator` — an engine process that submits ``jobs``
  :class:`ShortTask` instances with seeded-random sizes and
  exponential-ish inter-arrival times, through a controller.

Everything is seeded, so a traffic run is as deterministic as any other
workload in the repo.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.appspec import AppSpec
from repro.core.program import ProgramContext, StarfishProgram


class ShortTask(StarfishProgram):
    """A job that barely outlives its own admission.

    Parameters
    ----------
    steps : int
        Compute steps (default 3).
    step_time : float
        Simulated seconds per step (default 0.02).
    """

    def setup(self, ctx: ProgramContext) -> None:
        self.state.update(steps=int(ctx.params.get("steps", 3)), done=0)

    def step(self, ctx: ProgramContext):
        yield from ctx.sleep(float(ctx.params.get("step_time", 0.02)))
        self.state["done"] += 1

    def is_done(self, ctx: ProgramContext) -> bool:
        return self.state["done"] >= self.state["steps"]

    def finalize(self, ctx: ProgramContext):
        return self.state["done"]


class TrafficGenerator:
    """Submit a seeded stream of :class:`ShortTask` jobs to a controller.

    Parameters
    ----------
    controller : repro.fleet.FleetController
        The fleet control plane to submit through (its engine drives the
        arrival process).
    jobs : int
        Total submissions.
    rate : float
        Mean arrivals per simulated second (exponential inter-arrivals,
        from the generator's own seeded RNG).
    nprocs : tuple
        Inclusive ``(lo, hi)`` bounds for each job's world size.
    steps, step_time :
        Forwarded to :class:`ShortTask` (``steps`` is jittered ±1).
    tenant : str
        Accounting tenant for every submission.
    seed : int
        Generator RNG seed — independent of the cluster seed, same
        convention as the perturbation machinery.
    """

    def __init__(self, controller, jobs: int = 50, rate: float = 5.0,
                 nprocs: tuple = (1, 4), steps: int = 3,
                 step_time: float = 0.02, tenant: str = "traffic",
                 seed: int = 0):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.controller = controller
        self.jobs = jobs
        self.rate = rate
        self.nprocs = nprocs
        self.steps = steps
        self.step_time = step_time
        self.tenant = tenant
        self._rng = np.random.default_rng(seed)
        #: FleetJob records of every submission, in arrival order.
        self.submitted: List = []
        self._proc = controller.engine.process(self._run(),
                                               name="traffic-gen")

    def _run(self):
        engine = self.controller.engine
        lo, hi = self.nprocs
        for _ in range(self.jobs):
            yield engine.timeout(float(
                self._rng.exponential(1.0 / self.rate)))
            spec = AppSpec(
                program=ShortTask,
                nprocs=int(self._rng.integers(lo, hi + 1)),
                params={"steps": max(1, self.steps
                                     + int(self._rng.integers(-1, 2))),
                        "step_time": self.step_time},
                tenant=self.tenant)
            self.submitted.append(self.controller.submit(spec))

    # -- introspection -----------------------------------------------------

    @property
    def all_submitted(self) -> bool:
        return len(self.submitted) >= self.jobs

    @property
    def finished(self) -> int:
        """Submissions that reached a terminal state."""
        return sum(1 for job in self.submitted if job.terminal)

    def drain(self, timeout: float = 600.0) -> int:
        """Run the engine until every job is terminal (or ``timeout``
        simulated seconds pass); returns the finished count."""
        engine = self.controller.engine
        deadline = engine.now + timeout
        while engine.now < deadline:
            if self.all_submitted and not self.controller.pending_work():
                break
            engine.run(until=min(deadline, engine.now + 1.0))
        return self.finished
