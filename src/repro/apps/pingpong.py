"""The paper's round-trip micro-benchmark (§5, Figure 5).

Rank 0 sends a message of each size to rank 1, which echoes it back; the
round trip is timed at the application level and averaged over ``reps``
repetitions — exactly the paper's methodology ("repeatedly a hundred
times to get the average round-trip latency").

Parameters
----------
sizes : list[int]
    Message sizes in bytes (default: 1 B … 64 KB, ×4 steps).
reps : int
    Repetitions per size (default 100, as in the paper).

Result (rank 0): ``{size: average_rtt_seconds}``.
"""

from __future__ import annotations

from repro.core.program import ProgramContext, StarfishProgram

DEFAULT_SIZES = [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536]


class PingPong(StarfishProgram):
    """Two-rank ping-pong latency measurement."""

    def setup(self, ctx: ProgramContext) -> None:
        self.state.update(
            sizes=list(ctx.params.get("sizes", DEFAULT_SIZES)),
            reps=int(ctx.params.get("reps", 100)),
            index=0,
            rtts={},
        )

    def step(self, ctx: ProgramContext):
        size = self.state["sizes"][self.state["index"]]
        reps = self.state["reps"]
        mpi = ctx.mpi
        if mpi.rank == 0:
            total = 0.0
            payload = b"\0" * min(size, 1)   # payload object; size modelled
            for _ in range(reps):
                t0 = ctx.now
                yield from mpi.send(payload, dest=1, tag=1, size=size)
                yield from mpi.recv(source=1, tag=2)
                total += ctx.now - t0
            self.state["rtts"][size] = total / reps
        elif mpi.rank == 1:
            for _ in range(reps):
                msg = yield from mpi.recv(source=0, tag=1)
                yield from mpi.send(msg, dest=0, tag=2, size=size)
        self.state["index"] += 1

    def is_done(self, ctx: ProgramContext) -> bool:
        return self.state["index"] >= len(self.state["sizes"])

    def finalize(self, ctx: ProgramContext):
        if ctx.mpi.rank == 0:
            return dict(self.state["rtts"])
        return None
