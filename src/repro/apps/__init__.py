"""Application library (system S14).

Ready-made :class:`~repro.core.program.StarfishProgram` implementations
covering the paper's motivating workload classes:

* :class:`PingPong` — the §5 round-trip micro-benchmark (Figure 5);
* :class:`MonteCarloPi` — a trivially parallel computation that adapts to
  any world size (the §3.2.2 "repartition on view change" class);
* :class:`Jacobi1D` — a bulk-synchronous stencil with halo exchange (the
  class that needs coordinated checkpointing and rollback);
* :class:`BagOfTasks` — master/worker with task re-queueing on failures
  and optional MPI-2 dynamic spawning;
* :class:`ComputeSleep` — a do-nothing compute loop used by tests and the
  checkpoint-overhead benchmarks;
* :class:`ShortTask` / :class:`TrafficGenerator` — a stream of
  short-lived client jobs pumped through the fleet scheduler (the
  control-path churn workload used by the scaling benchmarks).

``PROGRAMS`` maps the names accepted by the ASCII ``SUBMIT`` command to
these classes.
"""

from repro.apps.pingpong import PingPong
from repro.apps.montecarlo import MonteCarloPi
from repro.apps.jacobi import Jacobi1D
from repro.apps.bagoftasks import BagOfTasks
from repro.apps.computesleep import ComputeSleep
from repro.apps.traffic import ShortTask, TrafficGenerator

#: ASCII-protocol program names.
PROGRAMS = {
    "pingpong": "PingPong",
    "montecarlo": "MonteCarloPi",
    "jacobi": "Jacobi1D",
    "bagoftasks": "BagOfTasks",
    "computesleep": "ComputeSleep",
    "shorttask": "ShortTask",
}

__all__ = ["BagOfTasks", "ComputeSleep", "Jacobi1D", "MonteCarloPi",
           "PROGRAMS", "PingPong", "ShortTask", "TrafficGenerator"]
