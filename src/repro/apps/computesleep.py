"""A plain compute loop (no communication beyond a final reduce).

Used by tests and by the checkpoint-overhead benchmarks: its per-rank
state can be padded to an arbitrary size (``state_bytes``), which is how
the Figure 3/4 payload sweeps are generated.

Parameters
----------
steps : int
    Number of steps (default 10).
step_time : float
    Simulated computation per step, seconds (default 0.01).
state_bytes : int
    Pad ``self.state`` with a float64 array of roughly this many bytes.

Result (all ranks): number of steps executed.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import ProgramContext, StarfishProgram


class ComputeSleep(StarfishProgram):
    """Sleep-based compute kernel with sizeable checkpoint state."""

    def setup(self, ctx: ProgramContext) -> None:
        pad = int(ctx.params.get("state_bytes", 0))
        self.state.update(
            steps=int(ctx.params.get("steps", 10)),
            done=0,
            payload=np.zeros(max(0, pad) // 8, dtype=np.float64),
        )

    def step(self, ctx: ProgramContext):
        yield from ctx.sleep(float(ctx.params.get("step_time", 0.01)))
        self.state["done"] += 1

    def is_done(self, ctx: ProgramContext) -> bool:
        return self.state["done"] >= self.state["steps"]

    def finalize(self, ctx: ProgramContext):
        return self.state["done"]
