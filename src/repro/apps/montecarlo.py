"""Trivially parallel Monte-Carlo estimation of π.

The paper's prime example of an application that benefits from dynamic
view changes: every rank repeatedly computes a local batch and merges via
``allreduce``, so the computation is correct for *any* current world size.
When a node dies under the VIEW_NOTIFY policy (or a new one joins), the
surviving ranks simply keep going — the work partition is implicit in the
step structure, "covering the entire compute space with no duplicates".

Parameters
----------
shots : int
    Target number of samples (global, approximate to the last batch).
chunk : int
    Samples per rank per step (default 1000).
compute_ns_per_shot : float
    Simulated computation cost per sample (default 200 ns).

Result (all ranks): the π estimate.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import ProgramContext, StarfishProgram
from repro.mpi import SUM


class MonteCarloPi(StarfishProgram):
    """π by dart-throwing; adapts to any world size."""

    def setup(self, ctx: ProgramContext) -> None:
        self.state.update(
            shots=int(ctx.params.get("shots", 100_000)),
            chunk=int(ctx.params.get("chunk", 1000)),
            done=0,
            hits=0,
            views_seen=0,
        )

    def step(self, ctx: ProgramContext):
        state = self.state
        m = min(state["chunk"], max(1, state["shots"] - state["done"]))
        # Deterministic but distinct stream per (rank, progress) so replays
        # after restarts/aborted steps resample the same batch.
        rng = np.random.default_rng((ctx.rank + 1) * 1_000_003
                                    + state["done"])
        xy = rng.random((m, 2))
        local_hits = int(np.sum(np.sum(xy * xy, axis=1) <= 1.0))
        ns = float(ctx.params.get("compute_ns_per_shot", 200.0))
        yield from ctx.sleep(m * ns * 1e-9)
        hits, count = yield from ctx.mpi.allreduce((local_hits, m), op=SUM)
        state["hits"] += int(hits)
        state["done"] += int(count)

    def is_done(self, ctx: ProgramContext) -> bool:
        return self.state["done"] >= self.state["shots"]

    def finalize(self, ctx: ProgramContext):
        return 4.0 * self.state["hits"] / max(1, self.state["done"])

    def on_view_change(self, ctx: ProgramContext, info):
        # The partition is implicit, but survivors may be one (aborted)
        # step apart: adopt the most advanced (done, hits) pair so the
        # whole group resumes from one agreed state — the "repartition and
        # continue without interruption" move of paper §3.2.2.
        self.state["views_seen"] += 1
        from repro.mpi import MAXLOC
        _done, owner = yield from ctx.mpi.allreduce(
            (self.state["done"], ctx.mpi.rank), op=MAXLOC)
        done, hits = yield from ctx.mpi.bcast(
            (self.state["done"], self.state["hits"]), root=owner)
        self.state["done"], self.state["hits"] = int(done), int(hits)
