"""Master/worker bag-of-tasks.

Rank 0 is the master; everyone else pulls tasks.  Demonstrates the
dynamic-application features of the paper:

* under ``VIEW_NOTIFY``, the master's ``on_view_change`` re-queues tasks
  that were assigned to lost workers, so the job survives worker deaths
  with no rollback at all;
* with ``grow_after`` set, the master calls the MPI-2 dynamic process
  management downcall (``mpi.spawn``) once that many tasks have finished,
  and newly spawned workers join the pull loop.

Parameters
----------
tasks : int
    Number of tasks (default 32).
task_time : float
    Simulated seconds of computation per task (default 0.02).
grow_after : int
    Spawn ``grow_by`` extra workers after this many completed tasks
    (default: never).
grow_by : int
    How many workers to spawn (default 2).

Result (rank 0): sorted list of completed task ids (each exactly once).
"""

from __future__ import annotations

from repro.core.program import ProgramContext, StarfishProgram
from repro.mpi import ANY_SOURCE

TAG_READY = 1
TAG_TASK = 2
TAG_RESULT = 3
TAG_STOP = 4


class BagOfTasks(StarfishProgram):
    """Pull-model task farm with failure re-queueing and dynamic growth."""

    def setup(self, ctx: ProgramContext) -> None:
        if ctx.rank == 0:
            self.state.update(
                role="master",
                todo=list(range(int(ctx.params.get("tasks", 32)))),
                assigned={},        # str(world_rank) -> task id
                results=[],
                stops_sent=0,
                grew=False,
            )
        else:
            self.state.update(role="worker", stopped=False, computed=0)

    # ------------------------------------------------------------------

    def step(self, ctx: ProgramContext):
        if self.state["role"] == "master":
            yield from self._master_step(ctx)
        else:
            yield from self._worker_step(ctx)

    def _master_step(self, ctx: ProgramContext):
        mpi = ctx.mpi
        state = self.state
        ntasks = int(ctx.params.get("tasks", 32))
        grow_after = int(ctx.params.get("grow_after", -1))
        if (not state["grew"] and grow_after >= 0
                and len(state["results"]) >= grow_after):
            state["grew"] = True
            yield from mpi.spawn(int(ctx.params.get("grow_by", 2)))
            return
        msg, status = yield from mpi.recv(source=ANY_SOURCE,
                                          with_status=True)
        kind = msg[0]
        worker = status.source            # comm rank of the worker
        worker_world = mpi.world.group[worker]
        if kind == "ready":
            # A worker whose step was aborted re-sends "ready"; whatever it
            # held goes back in the bag (results are de-duplicated anyway).
            stale = state["assigned"].pop(str(worker_world), None)
            if stale is not None and \
                    stale not in [t for t, _v in state["results"]]:
                state["todo"].insert(0, stale)
            if state["todo"]:
                task = state["todo"].pop(0)
                state["assigned"][str(worker_world)] = task
                yield from mpi.send(("task", task), dest=worker,
                                    tag=TAG_TASK)
            else:
                yield from mpi.send(("stop",), dest=worker, tag=TAG_TASK)
                state["stops_sent"] += 1
        elif kind == "result":
            _, task, value = msg
            state["assigned"].pop(str(worker_world), None)
            if task not in [t for t, _v in state["results"]]:
                state["results"].append((task, value))

    def _worker_step(self, ctx: ProgramContext):
        mpi = ctx.mpi
        yield from mpi.send(("ready",), dest=0, tag=TAG_READY)
        msg = yield from mpi.recv(source=0, tag=TAG_TASK)
        if msg[0] == "stop":
            self.state["stopped"] = True
            return
        _, task = msg
        yield from ctx.sleep(float(ctx.params.get("task_time", 0.02)))
        self.state["computed"] += 1
        yield from mpi.send(("result", task, task * task), dest=0,
                            tag=TAG_RESULT)

    # ------------------------------------------------------------------

    def is_done(self, ctx: ProgramContext) -> bool:
        if self.state["role"] == "master":
            ntasks = int(ctx.params.get("tasks", 32))
            return (len(self.state["results"]) >= ntasks
                    and self.state["stops_sent"] >= ctx.size - 1)
        return self.state["stopped"]

    def finalize(self, ctx: ProgramContext):
        if self.state["role"] == "master":
            return sorted(t for t, _v in self.state["results"])
        return self.state["computed"]

    # ------------------------------------------------------------------

    def on_view_change(self, ctx: ProgramContext, info) -> None:
        if self.state["role"] != "master":
            return
        # Re-queue tasks that were in the hands of lost workers.
        for dead in info.lost:
            task = self.state["assigned"].pop(str(dead), None)
            if task is not None and \
                    task not in [t for t, _v in self.state["results"]]:
                self.state["todo"].insert(0, task)
        # Stops owed shrink/grow with the world.
        self.state["stops_sent"] = min(self.state["stops_sent"],
                                       ctx.size - 1)
