"""1-D Jacobi relaxation with halo exchange.

The non-trivially-parallel workload class: ranks own contiguous blocks of
a 1-D rod and exchange boundary cells every iteration, so losing a rank
loses part of the domain — this is the class that needs coordinated
checkpointing and the RESTART policy (rollback of everyone to the last
recovery line).

u(0)=1, u(n+1)=0; each step does ``iters_per_step`` Jacobi sweeps.

Parameters
----------
n : int
    Global number of interior cells (default 4096; must divide evenly by
    the world size).
iterations : int
    Total sweeps to run (default 200).
iters_per_step : int
    Sweeps per step / checkpoint granularity (default 10).
compute_ns_per_cell : float
    Simulated per-cell sweep cost (default 10 ns).

Result (rank 0): ``(iterations_done, global_residual)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import ProgramContext, StarfishProgram
from repro.errors import MpiError
from repro.mpi import PROC_NULL, SUM


class Jacobi1D(StarfishProgram):
    """Bulk-synchronous stencil on a 1-D rod."""

    def setup(self, ctx: ProgramContext) -> None:
        n = int(ctx.params.get("n", 4096))
        size = ctx.size
        if n % size != 0:
            raise MpiError(f"n={n} not divisible by {size} ranks")
        local = n // size
        u = np.zeros(local + 2)       # one halo cell on each side
        if ctx.rank == 0:
            u[0] = 1.0                # hot left boundary
        self.state.update(
            n=n,
            u=u,
            iteration=0,
            iterations=int(ctx.params.get("iterations", 200)),
            iters_per_step=int(ctx.params.get("iters_per_step", 10)),
            residual=float("inf"),
        )

    def step(self, ctx: ProgramContext):
        mpi = ctx.mpi
        state = self.state
        u = state["u"].copy()          # mutate state only at step end
        rank, size = mpi.rank, mpi.size
        left = rank - 1 if rank > 0 else PROC_NULL
        right = rank + 1 if rank < size - 1 else PROC_NULL
        sweeps = min(state["iters_per_step"],
                     state["iterations"] - state["iteration"])
        ns = float(ctx.params.get("compute_ns_per_cell", 10.0))
        delta = 0.0
        for _ in range(sweeps):
            # Halo exchange: my right edge -> right's left halo, and back.
            from_left = yield from mpi.sendrecv(
                float(u[-2]), dest=right, source=left,
                sendtag=10, recvtag=10, size=8)
            from_right = yield from mpi.sendrecv(
                float(u[1]), dest=left, source=right,
                sendtag=11, recvtag=11, size=8)
            u[0] = from_left if from_left is not None else \
                (1.0 if rank == 0 else u[0])
            u[-1] = from_right if from_right is not None else 0.0
            new_inner = 0.5 * (u[:-2] + u[2:])
            delta = float(np.max(np.abs(new_inner - u[1:-1])))
            u[1:-1] = new_inner
            yield from ctx.sleep(len(u) * ns * 1e-9)
        residual = yield from mpi.allreduce(delta, op=SUM)
        # Commit the step's results to the checkpointable state.
        state["u"] = u
        state["iteration"] += sweeps
        state["residual"] = residual

    def is_done(self, ctx: ProgramContext) -> bool:
        return self.state["iteration"] >= self.state["iterations"]

    def finalize(self, ctx: ProgramContext):
        total = yield from ctx.mpi.reduce(
            float(np.sum(self.state["u"][1:-1])), op=SUM, root=0)
        if ctx.rank == 0:
            return (self.state["iteration"], self.state["residual"], total)
        return None
