"""Protocol/runtime interface.

A :class:`CrProtocol` instance lives inside *each* application process (one
per rank) as the process's checkpoint/restart module.  It talks to its
peers exclusively through :meth:`CrContext.cast` — checkpoint/restart
messages ride the application's lightweight group through the daemons
(Table 1) — and through MPI control tags for in-band channel markers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple

from repro.check.oracles import WaveOracle
from repro.ckpt.protocols.roles import (CoordinatedLinePlanner,
                                        CoordinatedWaveScheduler,
                                        StateCapturer)
from repro.errors import CheckpointError, Interrupt, OracleViolation
from repro.obs.instruments import (NULL_COUNTER, NULL_HISTOGRAM)
from repro.obs.registry import get_registry
from repro.sim.channel import Channel
from repro.sim.events import Event


class CrContext:
    """What the runtime provides to a checkpoint protocol.

    Subclassed by the Starfish runtime (:mod:`repro.core.runtime`) and by
    the unit-test harness.  All methods that take simulated time are
    process generators.
    """

    engine: Any
    app_id: str
    rank: int
    node: Any            # repro.cluster.Node
    arch: Any            # Architecture
    endpoint: Any        # MpiEndpoint
    checkpointer: Any    # LocalCheckpointer
    store: Any           # CheckpointStore

    def peers(self) -> List[int]:
        """World ranks of all live processes of the app (incl. self)."""
        raise NotImplementedError

    def cast(self, payload: Any) -> None:
        """Totally-ordered C/R multicast to every rank's module (incl. us),
        relayed through the daemons' lightweight group."""
        raise NotImplementedError

    def pause(self, target_step: Optional[int] = None):
        """Process generator: returns once the application is stopped at a
        safe point (no sends can happen until :meth:`resume`).

        ``target_step``: for coordinated protocols, the common step
        boundary every rank must reach before it counts as paused, so the
        checkpointed states are mutually consistent under step-replay
        recovery (see :mod:`repro.core.program`)."""
        raise NotImplementedError

    def resume(self) -> None:
        raise NotImplementedError

    def snapshot_state(self) -> Any:
        """Serializable application + program-runtime state."""
        raise NotImplementedError

    def current_step(self) -> int:
        """The application's completed-step counter (0 if not tracked)."""
        return 0

    def runtime_meta(self) -> dict:
        """Extra runtime state to store alongside the MPI state."""
        return {"steps_completed": self.current_step()}

    def notify_committed(self, version: int) -> None:
        """Upcall: a new recovery line exists (default: ignore)."""

    def restoring(self) -> bool:
        """True while this rank is being restored solo (log-replay mode):
        live traffic must be held back until replay finishes."""
        return False

    def replica_index(self) -> int:
        """This process's copy index under active replication
        (0 = primary; backups never register addresses or report
        results until promoted)."""
        return 0

    def comm_state(self) -> dict:
        """Communicator call counters (collective-tag sequences); the
        message-logging protocols checkpoint them so a solo-restarted
        rank resumes the tag sequence its peers are already using."""
        return {}

    def boundary_state(self) -> Optional[dict]:
        """The last step-boundary MPI state (counters, unexpected queue,
        communicator sequences), or ``None`` if the runtime does not
        track it.  Solo-replay recovery needs channel state consistent
        with the committed step the checkpoint restores to — a pause can
        freeze the rank mid-step, when the live counters already include
        the uncommitted step's traffic."""
        return None


class CrProtocol:
    """Base: inbox plumbing, lifecycle, and completion events.

    A protocol is a composition of four roles (see
    :mod:`repro.ckpt.protocols.roles`): ``scheduler`` decides when waves
    start, ``capturer`` takes/persists the local snapshot, ``tap`` (when
    not ``None``) intercepts the endpoint's message path, and the
    ``planner`` class attribute is instantiated inside the restart
    coordinator daemon to compute the restore plan.
    """

    name = "abstract"
    #: RestartPlanner class used by the daemons after a failure.
    planner = CoordinatedLinePlanner

    def __init__(self):
        self.ctx: Optional[CrContext] = None
        self.inbox: Optional[Channel] = None
        self._proc = None
        self.scheduler = CoordinatedWaveScheduler()
        self.capturer = StateCapturer()
        #: DeliveryTap installed on the endpoint at start (None = none).
        self.tap = None
        self._waiters: List[Tuple[int, Event]] = []
        self.last_committed: Optional[int] = None
        self._live_hint: Optional[Set[int]] = None
        self._commit_started: Optional[int] = None
        #: Always-on state-machine invariant checker (repro.check).
        self.oracle = WaveOracle(self)
        # Instruments materialize in start() (that's when we learn the
        # engine); until then the no-op twins keep stats readable.
        self._m_checkpoints = NULL_COUNTER
        self._m_bytes = NULL_COUNTER
        self._m_commits = NULL_COUNTER
        self._h_sync = NULL_HISTOGRAM

    @property
    def stats(self) -> dict:
        """Legacy counter view (read side of the registry instruments)."""
        return {"checkpoints": int(self._m_checkpoints.value),
                "bytes": int(self._m_bytes.value),
                "commits": int(self._m_commits.value)}

    # -- lifecycle ---------------------------------------------------------

    def start(self, ctx: CrContext) -> None:
        self.ctx = ctx
        self.oracle.bind(ctx.rank)
        reg = get_registry(ctx.engine)
        labels = dict(protocol=self.name, app=ctx.app_id, rank=str(ctx.rank))
        self._m_checkpoints = reg.counter(
            "ckpt.protocol.checkpoints", **labels,
            help="local checkpoints taken by this rank's module")
        self._m_bytes = reg.counter("ckpt.protocol.bytes", **labels,
                                    help="checkpoint bytes produced")
        self._m_commits = reg.counter(
            "ckpt.protocol.commits", **labels,
            help="recovery lines this module observed committing")
        self._h_sync = reg.histogram(
            "ckpt.protocol.sync_seconds", protocol=self.name,
            help="simulated seconds spent in the protocol's sync/drain "
                 "phase per checkpoint")
        # A restarted rank gets a fresh module: per-instance series reset.
        for m in (self._m_checkpoints, self._m_bytes, self._m_commits):
            m.reset()
        self.inbox = Channel(ctx.engine, name=f"cr:{ctx.app_id}:{ctx.rank}")
        if self.tap is not None:
            ctx.endpoint.tap = self.tap
        self._proc = ctx.node.spawn(self._main(),
                                    name=f"cr-{self.name}:{ctx.rank}")
        self.scheduler.start(self, ctx)

    @classmethod
    def runtime_kwargs(cls, record) -> dict:
        """Constructor kwargs the runtime derives from the app record."""
        return {}

    def stop(self) -> None:
        self.scheduler.stop()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("cr-stop")

    def deliver(self, payload: Any, source_rank: int) -> None:
        """Runtime feeds incoming C/R messages here (total order)."""
        if self.inbox is not None and not self.inbox.closed:
            self.inbox.put((payload, source_rank))

    def on_membership_change(self, live_ranks) -> None:
        """Synchronous upcall from the runtime when the app's world
        changes.

        Deliberately NOT routed through the inbox: a coordinated wave
        holds the application paused while it waits for protocol messages
        from every peer, and the world refresh that would shrink
        ``ctx.peers()`` only happens at the next safe point — which the
        pause prevents the app from reaching.  Messages from a lost peer
        will never arrive, so without this upcall the wave (and the app)
        would hang forever.  Base behaviour: remember the fresh membership
        so :meth:`live_peers` stops waiting on the dead.
        """
        self._live_hint = set(live_ranks)

    def live_peers(self) -> Set[int]:
        """World ranks believed alive: the MPI world (refreshed at safe
        points) intersected with the latest membership upcall, which is
        fresher while the app is paused mid-wave."""
        peers = set(self.ctx.peers())
        if self._live_hint is not None:
            peers &= self._live_hint
        return peers

    def _abort_wave_waiters(self) -> None:
        """Fire pending completion events after an aborted wave (with
        ``None``, not a version): every rank's checkpoint ticker blocks on
        its event, and an abort hits all ranks at once — leaving the
        events untriggered would stop checkpointing for good."""
        for _v, ev in self._waiters:
            if not ev.triggered:
                ev.succeed(None)
        self._waiters = []

    # -- main loop ------------------------------------------------------------

    def _main(self):
        try:
            while True:
                payload, source = yield self.inbox.get()
                handler = getattr(self, "on_" + payload[0].replace("-", "_"),
                                  None)
                if handler is None:
                    continue
                result = handler(payload, source)
                if result is not None and hasattr(result, "__next__"):
                    yield from result
        except Interrupt:
            return
        except OracleViolation:
            # An invariant broke — surface it as a typed failure of the
            # run, never as a silent module death.
            raise
        except Exception:
            # Node crash closes the inbox mid-get; the module dies with it.
            return

    # -- user-facing ------------------------------------------------------------

    def request_checkpoint(self) -> Event:
        """Initiate a checkpoint; the event fires with the committed
        version number."""
        raise NotImplementedError

    def _completion_event(self, version: int) -> Event:
        ev = Event(self.ctx.engine, name=f"ckpt-commit:{version}")
        self._waiters.append((version, ev))
        return ev

    def record_checkpoint(self, nbytes: int) -> None:
        """Count one locally-taken checkpoint of ``nbytes`` bytes."""
        self._m_checkpoints.inc()
        self._m_bytes.inc(nbytes)

    def record_sync(self, seconds: float) -> None:
        """Record one sync/drain phase duration (coordinated protocols)."""
        self._h_sync.observe(seconds)

    def _committed(self, version: int, *, participating: bool = True) -> None:
        self.oracle.committed(version, participating=participating)
        self.last_committed = version
        self._m_commits.inc()
        self.ctx.notify_committed(version)
        for v, ev in self._waiters[:]:
            if v <= version and not ev.triggered:
                ev.succeed(version)
                self._waiters.remove((v, ev))


def merge_counters(maps: dict) -> dict:
    """Union of per-rank ``{dest: count}`` maps → ``{(src, dst): count}``."""
    out = {}
    for src, counts in maps.items():
        for dst, n in counts.items():
            out[(src, dst)] = n
    return out
