"""Protocol/runtime interface.

A :class:`CrProtocol` instance lives inside *each* application process (one
per rank) as the process's checkpoint/restart module.  It talks to its
peers exclusively through :meth:`CrContext.cast` — checkpoint/restart
messages ride the application's lightweight group through the daemons
(Table 1) — and through MPI control tags for in-band channel markers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import CheckpointError, Interrupt
from repro.sim.channel import Channel
from repro.sim.events import Event


class CrContext:
    """What the runtime provides to a checkpoint protocol.

    Subclassed by the Starfish runtime (:mod:`repro.core.runtime`) and by
    the unit-test harness.  All methods that take simulated time are
    process generators.
    """

    engine: Any
    app_id: str
    rank: int
    node: Any            # repro.cluster.Node
    arch: Any            # Architecture
    endpoint: Any        # MpiEndpoint
    checkpointer: Any    # LocalCheckpointer
    store: Any           # CheckpointStore

    def peers(self) -> List[int]:
        """World ranks of all live processes of the app (incl. self)."""
        raise NotImplementedError

    def cast(self, payload: Any) -> None:
        """Totally-ordered C/R multicast to every rank's module (incl. us),
        relayed through the daemons' lightweight group."""
        raise NotImplementedError

    def pause(self, target_step: Optional[int] = None):
        """Process generator: returns once the application is stopped at a
        safe point (no sends can happen until :meth:`resume`).

        ``target_step``: for coordinated protocols, the common step
        boundary every rank must reach before it counts as paused, so the
        checkpointed states are mutually consistent under step-replay
        recovery (see :mod:`repro.core.program`)."""
        raise NotImplementedError

    def resume(self) -> None:
        raise NotImplementedError

    def snapshot_state(self) -> Any:
        """Serializable application + program-runtime state."""
        raise NotImplementedError

    def current_step(self) -> int:
        """The application's completed-step counter (0 if not tracked)."""
        return 0

    def runtime_meta(self) -> dict:
        """Extra runtime state to store alongside the MPI state."""
        return {"steps_completed": self.current_step()}

    def notify_committed(self, version: int) -> None:
        """Upcall: a new recovery line exists (default: ignore)."""


class CrProtocol:
    """Base: inbox plumbing, lifecycle, and completion events."""

    name = "abstract"

    def __init__(self):
        self.ctx: Optional[CrContext] = None
        self.inbox: Optional[Channel] = None
        self._proc = None
        self._waiters: List[Tuple[int, Event]] = []
        self.last_committed: Optional[int] = None
        self.stats = {"checkpoints": 0, "bytes": 0, "commits": 0}

    # -- lifecycle ---------------------------------------------------------

    def start(self, ctx: CrContext) -> None:
        self.ctx = ctx
        self.inbox = Channel(ctx.engine, name=f"cr:{ctx.app_id}:{ctx.rank}")
        self._proc = ctx.node.spawn(self._main(),
                                    name=f"cr-{self.name}:{ctx.rank}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("cr-stop")

    def deliver(self, payload: Any, source_rank: int) -> None:
        """Runtime feeds incoming C/R messages here (total order)."""
        if self.inbox is not None and not self.inbox.closed:
            self.inbox.put((payload, source_rank))

    # -- main loop ------------------------------------------------------------

    def _main(self):
        try:
            while True:
                payload, source = yield self.inbox.get()
                handler = getattr(self, "on_" + payload[0].replace("-", "_"),
                                  None)
                if handler is None:
                    continue
                result = handler(payload, source)
                if result is not None and hasattr(result, "__next__"):
                    yield from result
        except Interrupt:
            return
        except Exception:
            # Node crash closes the inbox mid-get; the module dies with it.
            return

    # -- user-facing ------------------------------------------------------------

    def request_checkpoint(self) -> Event:
        """Initiate a checkpoint; the event fires with the committed
        version number."""
        raise NotImplementedError

    def _completion_event(self, version: int) -> Event:
        ev = Event(self.ctx.engine, name=f"ckpt-commit:{version}")
        self._waiters.append((version, ev))
        return ev

    def _committed(self, version: int) -> None:
        self.last_committed = version
        self.stats["commits"] += 1
        self.ctx.notify_committed(version)
        for v, ev in self._waiters[:]:
            if v <= version and not ev.triggered:
                ev.succeed(version)
                self._waiters.remove((v, ev))


def merge_counters(maps: dict) -> dict:
    """Union of per-rank ``{dest: count}`` maps → ``{(src, dst): count}``."""
    out = {}
    for src, counts in maps.items():
        for dst, n in counts.items():
            out[(src, dst)] = n
    return out
