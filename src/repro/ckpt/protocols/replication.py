"""Active rank replication (the FTHP-MPI mode): failover, not rollback.

The third fault-tolerance pillar next to checkpoint/restart and message
logging.  Every MPI rank runs as a *replica group* of ``k`` copies placed
on distinct nodes by the PR 4 :class:`~repro.store.placement
.PlacementPolicy` surface; a node crash costs **zero ranks restarted** —
a live sibling copy is promoted in place and the computation never rolls
back.  The steady-state price is the replication tax this trades for:
every data send is carried by the GCS total-order multicast instead of a
point-to-point wire send (``benchmarks/bench_recovery_modes.py``
measures it against the C/R and logging modes).

How the three guarantees fall out of the ordering substrate:

* **replica-consistent delivery** — every copy of a rank subscribes to
  the application's lightweight group, and every data send (from every
  copy of the sender — the copies execute deterministically, so their
  streams are identical) is cast through it.  The group's sequencer
  assigns one global order, so all copies of a destination observe the
  identical inbound message sequence.
* **duplicate suppression** — sends carry their per-channel send
  sequence number (the PR 6 tap piggyback); a receiver accepts ssn ==
  recv_count + 1 and drops everything at or below its counter — the
  sibling copies' re-emissions of the same send.  Because each copy's
  stream is FIFO through the total order, ssn can never *exceed*
  recv_count + 1; the :class:`~repro.check.oracles.ReplicaOracle`
  asserts exactly that (no-orphan-send).
* **instant failover** — the :class:`ReplicaFailoverPlanner` is a solo
  planner whose plan respawns nothing: it promotes a surviving copy of
  each lost rank to primary (``mode="failover"``).  Survivors keep
  running, the world version does not bump, ``daemon.ranks_restarted``
  stays at zero, and there is no rollback wave to wait out.

Degenerate paths: if every copy of some lost rank is gone (k exhausted),
the planner returns ``None`` and the daemons fall back to a full restart
from the initial state — replication takes no checkpoints, so there is
nothing between "a copy survived" and "start over".  Recovered nodes are
not re-seeded with fresh copies (no re-replication service yet), and
migration of replicated apps is unsupported.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.check.oracles import ReplicaOracle
from repro.ckpt.protocols.base import CrProtocol
from repro.ckpt.protocols.roles import (DeliveryTap, RestartPlanner,
                                        WaveScheduler)
from repro.mpi.matching import InboundMsg
from repro.obs.instruments import NULL_COUNTER
from repro.obs.registry import get_registry
from repro.sim.events import Event


class ReplicaTap(DeliveryTap):
    """Reroute every data send onto the total-order multicast.

    ``piggyback`` stamps the per-channel ssn (the endpoint moved the
    counter at send entry, so its value *is* this message's sequence
    number); ``route_send`` replaces the VNI wire send with a C/R cast
    that reaches every copy of every rank in one global order.  Any data
    packet that still arrives over the point-to-point wire is stale by
    construction (pre-restart in-flight traffic) and is suppressed.
    """

    def __init__(self, protocol: "ReplicationProtocol"):
        self.protocol = protocol

    def piggyback(self, dest_world: int):
        return ("ssn", self.protocol.ctx.endpoint.sent_count[dest_world])

    def route_send(self, dest_world: int, comm_id: str, src_comm_rank: int,
                   tag: int, data, nbytes: int, pb, pre_delay: float):
        proto = self.protocol

        def _carry():
            # The software send stack still costs its merged timeout; the
            # wire cost is the cast's (daemon relay + sequencer ordering —
            # the replication tax, billed where it is actually paid).
            yield proto.ctx.engine.timeout(pre_delay)
            proto.ctx.cast(("repl-data", dest_world, pb[1], comm_id,
                            src_comm_rank, tag, data, nbytes))
            proto._m_casts.inc()
        return _carry()

    def on_deliver(self, src_world: int, inbound, pb):
        # The replicated delivery path IS the cast; a wire data arrival
        # can only be a stale frame from before a full restart.
        self.protocol._m_wire_suppressed.inc()
        return True


class ReplicaFailoverPlanner(RestartPlanner):
    """Promote a surviving copy of each lost rank; respawn nothing.

    ``solo`` keeps the survivors running (no kill-everyone step, no
    world-version bump).  The plan maps each failed rank to the first
    live node of its replica set and prunes promoted/dead nodes from the
    record's replica map; if any lost rank has no live copy left, the
    plan is ``None`` — full restart from the initial state.
    """

    solo = True

    def plan(self, daemon, record, failed_ranks: List[int]) -> Optional[dict]:
        view = daemon.gm.view
        alive = ({m.node for m in view.members} if view is not None
                 else set())
        promote = {}
        for rank in sorted(failed_ranks):
            survivors = [n for n in record.replicas.get(rank, ())
                         if n in alive]
            if not survivors:
                return None          # k exhausted: start the app over
            promote[rank] = survivors[0]
        replicas = {}
        for rank, backups in record.replicas.items():
            keep = tuple(n for n in backups
                         if n in alive and n != promote.get(rank))
            if keep:
                replicas[rank] = keep
        return {"mode": "failover", "promote": promote,
                "replicas": replicas, "ranks": sorted(failed_ranks)}


class ReplicationProtocol(CrProtocol):
    """k-replica groups per rank with instant failover (FTHP-MPI).

    No waves, no captures, no restore path: the base
    :class:`~repro.ckpt.protocols.roles.WaveScheduler` never ticks,
    :meth:`request_checkpoint` succeeds immediately with nothing, and
    the whole recovery story lives in the tap (replica-consistent
    delivery) and the planner (failover).
    """

    name = "replication"
    planner = ReplicaFailoverPlanner
    #: The runtime must not sample step-boundary channel state for us.
    wants_boundary_capture = False

    def __init__(self, replicas: int = 2):
        super().__init__()
        #: Copies per rank (1 primary + replicas-1 backups); informational
        #: at the module level — placement happens at submit time.
        self.replicas = replicas
        self.scheduler = WaveScheduler()     # no ticker: nothing to pace
        self.tap = ReplicaTap(self)
        self.replica_oracle = ReplicaOracle(self)
        #: Accepted inbound deliveries, in total order:
        #: ``(src_world, ssn, tag, repr(data))`` — the replica-consistency
        #: property asserts all copies of a rank log identical sequences.
        self.inbound_log: List[Tuple[int, int, int, str]] = []
        self._m_casts = NULL_COUNTER
        self._m_delivered = NULL_COUNTER
        self._m_dups = NULL_COUNTER
        self._m_wire_suppressed = NULL_COUNTER
        self._m_promotions = NULL_COUNTER

    @classmethod
    def runtime_kwargs(cls, record) -> dict:
        k = 1 + max((len(b) for b in record.replicas.values()), default=0)
        return {"replicas": k}

    def start(self, ctx) -> None:
        super().start(ctx)
        copy = self.copy_index()
        self.replica_oracle.bind(ctx.rank, primary=copy == 0)
        reg = get_registry(ctx.engine)
        labels = dict(app=ctx.app_id, rank=str(ctx.rank), copy=str(copy))
        self._m_casts = reg.counter(
            "repl.casts", **labels,
            help="data sends this copy carried on the total-order multicast")
        self._m_delivered = reg.counter(
            "repl.delivered", **labels,
            help="inbound data messages accepted (first sighting)")
        self._m_dups = reg.counter(
            "repl.dups_suppressed", **labels,
            help="sibling-copy duplicates dropped by ssn")
        self._m_wire_suppressed = reg.counter(
            "repl.wire_suppressed", **labels,
            help="stale point-to-point data frames dropped")
        self._m_promotions = reg.counter(
            "repl.promotions", app=ctx.app_id, rank=str(ctx.rank),
            help="backup copies promoted to primary (failovers)")
        for m in (self._m_casts, self._m_delivered, self._m_dups,
                  self._m_wire_suppressed):
            m.reset()

    def copy_index(self) -> int:
        getter = getattr(self.ctx, "replica_index", None)
        return getter() if getter is not None else 0

    # -- delivery (the replicated data path) -------------------------------

    def on_repl_data(self, payload: Any, source: int) -> None:
        """One data send, in total order, observed by every copy."""
        (_op, dest, ssn, comm_id, src_comm_rank, tag, data,
         nbytes) = payload
        if dest != self.ctx.rank:
            return
        ep = self.ctx.endpoint
        rc = ep.recv_count.get(source, 0)
        if ssn <= rc:
            # A sibling copy's re-emission of a send we already took.
            self._m_dups.inc()
            return
        self.replica_oracle.delivered(source, ssn, rc + 1)
        ep.recv_count[source] = ssn
        ep.matching.arrived(InboundMsg(comm_id=comm_id, source=src_comm_rank,
                                       tag=tag, data=data, nbytes=nbytes))
        self.inbound_log.append((source, ssn, tag, repr(data)))
        self._m_delivered.inc()

    # -- failover ----------------------------------------------------------

    def on_promoted(self) -> None:
        """Upcall from the runtime: this copy is now the rank's primary."""
        self.replica_oracle.promoted()
        self._m_promotions.inc()

    # -- user-facing -------------------------------------------------------

    def request_checkpoint(self) -> Event:
        """Replication takes no checkpoints; succeed immediately with
        ``None`` so callers pacing on the event never block."""
        ev = Event(self.ctx.engine, name="repl-no-checkpoint")
        ev.succeed(None)
        return ev
