"""Diskless checkpointing over the fast network — the paper's future work.

§7: "developing newer and faster C/R protocols, in particular ones that
utilize fast networks, is a natural research direction."  This protocol is
that direction, after Plank's diskless checkpointing: the stop-and-sync
structure is kept (stop, drain, dump, commit), but the *dump* streams the
checkpoint image over BIP/Myrinet into a **buddy node's memory** instead
of through the ~6.5 MB/s IDE disk — turning checkpoint latency from
disk-bound into network-bound.

Placement rotates with the version (buddy of rank *i* at version *v* is
rank ``(i + 1 + (v-1) mod (n-1))`` among the live peers), so consecutive
recovery lines never share holders: a single node crash wipes at most one
rank's copy of each version, and since the crash also always leaves the
*previous* line intact on different holders, single failures remain
recoverable (the restart coordinator uses
:meth:`~repro.ckpt.storage.CheckpointStore.latest_restorable`).

Trade-offs measured in ``benchmarks/bench_ablation_diskless.py``:
checkpoints are ~5x faster, restores skip the disk read, but a crash can
invalidate the newest line (extra rollback distance) and memory holds the
images instead of stable storage.
"""

from __future__ import annotations

from typing import Optional

from repro.ckpt.protocols.roles import DeliveryTap
from repro.ckpt.protocols.stop_and_sync import (DRAIN_POLL,
                                                StopAndSyncProtocol)
from repro.ckpt.storage import TIER_MEMORY
from repro.mpi.constants import CKPT_TAG_BASE
from repro.store.placement import rotating_mirrors

#: In-band tag for checkpoint-image transfers and their acks.
DL_TAG = CKPT_TAG_BASE - 2


class _BuddyTap(DeliveryTap):
    """Route in-band checkpoint-image transfers into the module."""

    def __init__(self, protocol: "DisklessProtocol"):
        self.protocol = protocol

    def on_control(self, msg, src_world: int):
        if msg.tag == DL_TAG:
            self.protocol.deliver(msg.data, src_world)
        return None


class DisklessProtocol(StopAndSyncProtocol):
    """Stop-and-sync with fast-network buddy storage instead of disks."""

    name = "diskless"

    def __init__(self):
        super().__init__()
        self.tap = _BuddyTap(self)
        self._acks_pending = 0

    def on_membership_change(self, live_ranks) -> None:
        super().on_membership_change(live_ranks)
        self._acks_pending = 0       # dl-acks from a lost buddy never come

    def _buddies(self, version: int):
        """Mirror targets, delegated to the storage fabric's placement.

        The protocol is a thin client of ``repro.store``: the rotation
        rule lives in :func:`repro.store.placement.rotating_mirrors` and
        the copy count comes from the store (double mirroring on the
        idealized store — Plank-style diskless checkpointing uses
        parity; mirroring is the simple variant — and the configured
        ``k`` on a :class:`~repro.store.ReplicatedStore`).
        """
        return rotating_mirrors(self.live_peers(), self.ctx.rank, version,
                                copies=self.ctx.store.mirror_fanout())

    # ------------------------------------------------------------------
    # the dump phase: stream to the buddy instead of writing locally
    # ------------------------------------------------------------------

    def _drain_and_dump(self, version: int):
        ctx = self.ctx
        me = ctx.rank
        live = self.live_peers()
        expected = {r: counts.get(me, 0) for r, counts in
                    self._counts.items() if r != me and r in live}
        t0 = ctx.engine.now
        while any(ctx.endpoint.recv_count.get(r, 0) < n
                  for r, n in expected.items()):
            if self._active != version:
                return               # wave aborted by a membership change
            yield ctx.engine.timeout(DRAIN_POLL)
        self.record_sync(ctx.engine.now - t0)
        if self._active != version:
            return

        state, mpi_state = self.capturer.snapshot(ctx)
        image, nbytes = self.capturer.materialize(ctx, state)
        record = self.capturer.build_record(ctx, version, image, nbytes,
                                            mpi_state)
        buddies = self._buddies(version)
        if not buddies:
            # Singleton application: nowhere to mirror; keep it in our own
            # memory (it dies with us — an honest diskless limitation).
            ctx.store.write_tier(record, TIER_MEMORY,
                                 holder_node=ctx.node.node_id)
            self._after_dump(version, nbytes)
            return
        # Stream the image to each mirror over the fast network.  The wire
        # cost comes from the message size = the checkpoint size.
        self._acks_pending = len(buddies)
        for buddy in buddies:
            yield from ctx.endpoint.send(
                buddy, f"cr:{ctx.app_id}", me, DL_TAG,
                ("dl-store", version, me, record), nbytes=nbytes)

    def _after_dump(self, version: int, nbytes: int) -> None:
        self.oracle.dumped(version)
        self.record_checkpoint(nbytes)
        self.ctx.cast(("ss-done", version, self.ctx.rank))

    # ------------------------------------------------------------------
    # buddy-side storage + ack
    # ------------------------------------------------------------------

    def on_dl_store(self, payload, source):
        _, version, owner, record = payload
        self.ctx.store.write_tier(record, TIER_MEMORY,
                                  holder_node=self.ctx.node.node_id)
        yield from self.ctx.endpoint.send(
            owner, f"cr:{self.ctx.app_id}", self.ctx.rank, DL_TAG,
            ("dl-ack", version), nbytes=16)

    def on_dl_ack(self, payload, source):
        _, version = payload
        if version != self._active:
            return None
        self.oracle.buddy_ack(version, self._acks_pending)
        self._acks_pending -= 1
        if self._acks_pending > 0:
            return None
        rec = self.ctx.store.peek(self.ctx.app_id, self.ctx.rank, version)
        self._after_dump(version, rec.nbytes)
        return None

    def _commit_barrier(self, nodes: int) -> float:
        # No stable-storage sync: committing a diskless line is just the
        # (already simulated) message rounds.
        return 0.0
