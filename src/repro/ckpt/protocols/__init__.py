"""Distributed checkpoint, message-logging, and replication protocols.

All protocols implement :class:`~repro.ckpt.protocols.base.CrProtocol`
against the narrow :class:`~repro.ckpt.protocols.base.CrContext` interface,
which the Starfish runtime (and the test harness) provide — this is what
the paper means by the architecture making it possible to "implement
several different distributed C/R protocols, both coordinated and
uncoordinated, and to run them side by side".

Each protocol is a composition of four pluggable roles (see
:mod:`repro.ckpt.protocols.roles`): a :class:`WaveScheduler` decides *when*
to snapshot, a :class:`StateCapturer` decides *what to save*, a
:class:`DeliveryTap` intercepts the message path (piggyback, log, record,
suppress), and a :class:`RestartPlanner` decides *who rolls back to which
version* after a failure.

:data:`PROTOCOLS` is the single registry: the CLI, the fault campaigns,
the check harness, and the benchmarks all enumerate protocols from here.
"""

from repro.ckpt.protocols.base import CrContext, CrProtocol
from repro.ckpt.protocols.roles import (CoordinatedLinePlanner,
                                        CoordinatedWaveScheduler,
                                        DeliveryTap,
                                        DependencyRollbackPlanner,
                                        RestartPlanner,
                                        SelfPacedWaveScheduler,
                                        SoloReplayPlanner, StateCapturer,
                                        WaveScheduler)
from repro.ckpt.protocols.stop_and_sync import StopAndSyncProtocol
from repro.ckpt.protocols.chandy_lamport import ChandyLamportProtocol
from repro.ckpt.protocols.uncoordinated import UncoordinatedProtocol
from repro.ckpt.protocols.diskless import DisklessProtocol
from repro.ckpt.protocols.msg_logging import (CausalLoggingProtocol,
                                              SenderLoggingProtocol)
from repro.ckpt.protocols.replication import (ReplicaFailoverPlanner,
                                              ReplicationProtocol)

PROTOCOLS = {
    "stop-and-sync": StopAndSyncProtocol,
    "chandy-lamport": ChandyLamportProtocol,
    "uncoordinated": UncoordinatedProtocol,
    "diskless": DisklessProtocol,
    "sender-logging": SenderLoggingProtocol,
    "causal-logging": CausalLoggingProtocol,
    "replication": ReplicationProtocol,
}


def make_protocol(name: str, **kwargs) -> CrProtocol:
    """Factory over the :data:`PROTOCOLS` registry."""
    from repro.errors import CheckpointError
    cls = PROTOCOLS.get(name)
    if cls is None:
        raise CheckpointError(f"unknown C/R protocol {name!r}")
    return cls(**kwargs)


__all__ = [
    "CausalLoggingProtocol",
    "ChandyLamportProtocol",
    "CoordinatedLinePlanner",
    "CoordinatedWaveScheduler",
    "CrContext",
    "CrProtocol",
    "DeliveryTap",
    "DependencyRollbackPlanner",
    "DisklessProtocol",
    "PROTOCOLS",
    "ReplicaFailoverPlanner",
    "ReplicationProtocol",
    "RestartPlanner",
    "SelfPacedWaveScheduler",
    "SenderLoggingProtocol",
    "SoloReplayPlanner",
    "StateCapturer",
    "StopAndSyncProtocol",
    "UncoordinatedProtocol",
    "WaveScheduler",
    "make_protocol",
]
