"""Distributed checkpoint protocols.

All three protocols implement :class:`~repro.ckpt.protocols.base.CrProtocol`
against the narrow :class:`~repro.ckpt.protocols.base.CrContext` interface,
which the Starfish runtime (and the test harness) provide — this is what
the paper means by the architecture making it possible to "implement
several different distributed C/R protocols, both coordinated and
uncoordinated, and to run them side by side".
"""

from repro.ckpt.protocols.base import CrContext, CrProtocol
from repro.ckpt.protocols.stop_and_sync import StopAndSyncProtocol
from repro.ckpt.protocols.chandy_lamport import ChandyLamportProtocol
from repro.ckpt.protocols.uncoordinated import UncoordinatedProtocol
from repro.ckpt.protocols.diskless import DisklessProtocol

PROTOCOLS = {
    "stop-and-sync": StopAndSyncProtocol,
    "chandy-lamport": ChandyLamportProtocol,
    "uncoordinated": UncoordinatedProtocol,
    "diskless": DisklessProtocol,
}


def make_protocol(name: str, **kwargs) -> CrProtocol:
    """Factory: ``stop-and-sync`` | ``chandy-lamport`` | ``uncoordinated``
    | ``diskless``."""
    from repro.errors import CheckpointError
    cls = PROTOCOLS.get(name)
    if cls is None:
        raise CheckpointError(f"unknown C/R protocol {name!r}")
    return cls(**kwargs)


__all__ = [
    "ChandyLamportProtocol",
    "CrContext",
    "CrProtocol",
    "DisklessProtocol",
    "PROTOCOLS",
    "StopAndSyncProtocol",
    "UncoordinatedProtocol",
    "make_protocol",
]
