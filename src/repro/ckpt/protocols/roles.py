"""The four separable roles of a recovery stack.

A checkpoint/restart protocol answers four independent questions, and the
monolithic :class:`~repro.ckpt.protocols.base.CrProtocol` used to fuse all
four.  This module splits them out so protocols compose them instead:

* :class:`WaveScheduler` — *when* to snapshot.  Coordinated protocols are
  driven by one runtime-side ticker on the lowest rank (a wave reaches
  everyone through the protocol rounds); self-paced protocols run a
  per-rank ticker of their own.
* :class:`StateCapturer` — *what* to save.  Snapshot the program + MPI
  runtime state, materialize an image through the checkpointer, build the
  :class:`~repro.ckpt.storage.CheckpointRecord`, persist it to the store.
* :class:`DeliveryTap` — the interception point on the message path.
  Protocols piggyback metadata on outgoing data messages, log or record
  arriving ones, and may suppress a delivery entirely (duplicate
  suppression under message-logging recovery).
* :class:`RestartPlanner` — *who* rolls back after a failure, to which
  checkpoint version, replaying what.  This runs inside the restart
  coordinator daemon; its plan is broadcast with the ``app-restart`` op.

The four existing C/R protocols are re-expressed on these roles without
changing a single scheduled event (the determinism goldens gate that);
the message-logging family (:mod:`repro.ckpt.protocols.msg_logging`) is
the first protocol whose roles differ in *shape*: a self-paced scheduler,
a logging tap, and a planner that restarts only the crashed rank.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.ckpt.recovery_line import DependencyGraph, compute_recovery_line
from repro.ckpt.storage import CheckpointRecord
from repro.errors import Interrupt


# ----------------------------------------------------------------------
# WaveScheduler — when to snapshot
# ----------------------------------------------------------------------

class WaveScheduler:
    """Decides when checkpoints are initiated.

    Two hooks, one per side of the protocol/runtime boundary:
    :meth:`runtime_ticker` lets the runtime host a ticker process (the
    coordinated protocols' single initiator), and :meth:`start` lets the
    protocol spawn its own (per-rank self-paced checkpointing).
    """

    def runtime_ticker(self, rt) -> Optional[Any]:
        """Generator for a runtime-hosted ticker process, or ``None``.

        ``rt`` is the :class:`~repro.core.runtime.AppProcess`; the
        runtime spawns the returned generator under its own process
        accounting (name ``ckpt-tick:<rank>``).
        """
        return None

    def start(self, protocol, ctx) -> None:
        """Called from :meth:`CrProtocol.start` once ``ctx`` is bound."""

    def stop(self) -> None:
        """Called from :meth:`CrProtocol.stop` before the module dies."""


class CoordinatedWaveScheduler(WaveScheduler):
    """One initiator: the lowest rank's runtime ticks the protocol.

    The wave reaches every peer through the protocol's own rounds
    (``ss-begin`` / ``cl-begin`` ride the lightweight group), so only one
    rank needs a clock.
    """

    def runtime_ticker(self, rt) -> Optional[Any]:
        if rt.record.ckpt_interval is not None \
                and rt.rank == min(rt.record.placement):
            return rt._ckpt_ticker()
        return None


class SelfPacedWaveScheduler(WaveScheduler):
    """Every rank checkpoints on its own (jittered) clock.

    ``op`` is the protocol inbox operation a tick enqueues (``uc-take``,
    ``log-take``); ``tick_name`` prefixes the ticker process name.  The
    period and jitter come from the protocol (``interval`` / ``jitter``
    attributes); ``interval=None`` disables the ticker (checkpoints only
    on explicit request).
    """

    def __init__(self, op: str, tick_name: str):
        self.op = op
        self.tick_name = tick_name
        self._ticker = None

    def start(self, protocol, ctx) -> None:
        if protocol.interval is not None:
            self._ticker = ctx.node.spawn(
                self._periodic(protocol, ctx),
                name=f"{self.tick_name}:{ctx.rank}")

    def _periodic(self, protocol, ctx):
        # Deterministic de-synchronization: spread the ranks across a
        # jitter fraction of the interval so independent checkpoints do
        # not all land on the same instant.
        offset = protocol.interval * protocol.jitter * ctx.rank \
            / max(1, len(ctx.peers()))
        try:
            yield ctx.engine.timeout(offset)
            while True:
                yield ctx.engine.timeout(protocol.interval)
                protocol.inbox.put(((self.op,), ctx.rank))
        except Interrupt:
            return
        except Exception:
            return

    def stop(self) -> None:
        if self._ticker is not None and self._ticker.is_alive:
            self._ticker.interrupt("cr-stop")


# ----------------------------------------------------------------------
# StateCapturer — what to save
# ----------------------------------------------------------------------

class StateCapturer:
    """Snapshot, materialize, describe, and persist one local checkpoint.

    Two snapshot flavours, matching the two timing disciplines the
    protocols need: :meth:`snapshot` samples the runtime meta (step
    counter) *with* the MPI state — the coordinated protocols capture
    everything at the pause instant — while :meth:`snapshot_parts` leaves
    the runtime meta to the caller, because the self-paced protocols
    resume the application before the record is built and the meta must
    be sampled at build time.
    """

    def snapshot(self, ctx):
        """``(program_state, mpi_state)`` with runtime meta folded in."""
        return (ctx.snapshot_state(),
                {**ctx.endpoint.export_state(), **ctx.runtime_meta()})

    def snapshot_parts(self, ctx):
        """``(program_state, mpi_state)`` without runtime meta."""
        return (ctx.snapshot_state(), ctx.endpoint.export_state())

    def materialize(self, ctx, state):
        """``(image, nbytes)`` through the configured checkpointer."""
        return ctx.checkpointer.capture(state, ctx.arch)

    def build_record(self, ctx, version: int, image, nbytes: int,
                     mpi_state: dict, **extra) -> CheckpointRecord:
        return CheckpointRecord(
            app_id=ctx.app_id, rank=ctx.rank, version=version,
            level=ctx.checkpointer.level, nbytes=nbytes, image=image,
            arch_name=ctx.arch.name, taken_at=ctx.engine.now,
            mpi_state=mpi_state, **extra)

    def persist(self, ctx, record: CheckpointRecord):
        """Process generator: write the record through the local disk."""
        yield from ctx.store.write(
            ctx.node, record, bandwidth=ctx.checkpointer.write_bandwidth)


# ----------------------------------------------------------------------
# DeliveryTap — interception on the message path
# ----------------------------------------------------------------------

class DeliveryTap:
    """Protocol hooks on the MPI endpoint's send and delivery paths.

    Installed as ``endpoint.tap``; all hooks default to no-ops so a
    protocol overrides only the interception it needs.
    """

    def piggyback(self, dest_world: int):
        """Metadata to ride the outgoing data packet (or ``None``).

        Called after the channel send counter moved, so the counter value
        is this message's per-channel sequence number.
        """
        return None

    def on_send(self, dest_world: int, comm_id: str, src_comm_rank: int,
                tag: int, data, nbytes: int, pb):
        """Optional process generator run *before* the wire send.

        Message-logging protocols persist the message here — running
        before the VNI send is what makes logged-before-sent hold by
        construction.
        """
        return None

    def route_send(self, dest_world: int, comm_id: str, src_comm_rank: int,
                   tag: int, data, nbytes: int, pb, pre_delay: float):
        """Optionally *replace* the point-to-point wire send.

        Return a process generator to carry the message yourself (the
        active-replication tap reroutes every data send onto the GCS
        total-order multicast so all replicas of the destination observe
        one sequence); return ``None`` for the normal VNI send.
        ``pre_delay`` is the software-stack cost the endpoint would have
        folded into the wire send — a replacement route owes it.
        """
        return None

    def on_deliver(self, src_world: int, inbound, pb):
        """An arriving data message, *before* the receive counter moves.

        Return truthy to suppress the delivery entirely: no counter
        increment, no matching — the message never existed as far as the
        application is concerned (duplicate suppression during
        log-replay recovery).
        """
        return False

    def on_control(self, msg, src_world: int):
        """A control message (``tag <= CKPT_TAG_BASE``); may return a
        process generator (Chandy–Lamport markers, diskless transfers)."""
        return None


# ----------------------------------------------------------------------
# RestartPlanner — who rolls back, to what, replaying what
# ----------------------------------------------------------------------

class RestartPlanner:
    """Computes the restore plan broadcast with the ``app-restart`` op.

    ``solo`` marks planners that restart *only* the failed ranks:
    survivors keep running, the world version does not bump, and the
    daemons skip the kill-everyone step.
    """

    solo = False

    def plan(self, daemon, record, failed_ranks: List[int]) -> Optional[dict]:
        """The restore payload (``None`` = restart from initial state)."""
        raise NotImplementedError


class CoordinatedLinePlanner(RestartPlanner):
    """Roll every rank back to the latest intact committed line.

    ``latest_restorable``: diskless copies held on the crashed node are
    gone — and under a replicated store, versions whose replicas are
    unreachable from the coordinator's partition don't count — so
    recovery may have to fall back to an older intact line.
    """

    def plan(self, daemon, record, failed_ranks):
        version = daemon.store.latest_restorable(
            record.app_id, sorted(record.placement),
            from_node=daemon.node.node_id)
        if version is None:
            return None
        return {"mode": "coordinated", "version": version}


class DependencyRollbackPlanner(RestartPlanner):
    """Compute the recovery line from stored dependency logs.

    The uncoordinated protocol's transitive rollback: every rank restarts
    from the consistent cut on the rollback-dependency graph, dominoing
    survivors back as far as orphan messages force them.
    """

    def plan(self, daemon, record, failed_ranks):
        app_id = record.app_id
        ranks = sorted(record.placement)
        graph = DependencyGraph(ranks)
        deps_seen = set()
        for rank in ranks:
            versions = daemon.store.versions_of(app_id, rank)
            # Only the usable *prefix* counts: a checkpoint whose every
            # replica is down or unreachable (replica loss under the
            # replicated store) cannot anchor a rollback, and neither
            # can anything after it — uncoordinated versions are the
            # rank's checkpoint indices, so the recovery-line cut must
            # map 1:1 onto restorable versions.  Dropping the tail may
            # domino other ranks further back; compute_recovery_line
            # handles that (and detects full domino).
            usable = []
            for version in versions:
                if not daemon.store.record_available(
                        app_id, rank, version,
                        from_node=daemon.node.node_id):
                    break
                usable.append(version)
            graph.ckpt_count[rank] = len(usable)
            if usable:
                latest = daemon.store.peek(app_id, rank, usable[-1])
                for dep in latest.deps:
                    if (rank, tuple(dep)) not in deps_seen:
                        deps_seen.add((rank, tuple(dep)))
                        graph.record_message(dep[0], dep[1], rank, dep[2])
        # Everyone restarts from stable storage (volatile state of the
        # survivors is discarded by the rollback).
        line = compute_recovery_line(graph, failed=ranks)
        return {"mode": "uncoordinated", "line": dict(line.cut),
                "discarded": line.discarded_intervals}


class SoloReplayPlanner(RestartPlanner):
    """Restart only the crashed ranks; survivors keep running.

    Each lost rank resumes from its own latest usable checkpoint (``-1``
    = initial state) and replays its inbound channels from the
    sender-side message logs — no recovery line, no domino.
    """

    solo = True

    def plan(self, daemon, record, failed_ranks):
        app_id = record.app_id
        line = {}
        for rank in sorted(failed_ranks):
            usable = [v for v in daemon.store.versions_of(app_id, rank)
                      if daemon.store.record_available(
                          app_id, rank, v, from_node=daemon.node.node_id)]
            line[rank] = usable[-1] if usable else -1
        return {"mode": "log-replay", "line": line,
                "ranks": sorted(failed_ranks)}
