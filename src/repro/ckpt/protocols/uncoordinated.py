"""Uncoordinated (independent) checkpointing with dependency tracking.

Each rank checkpoints on its own schedule — no synchronization, no drain,
no commit barrier; the price is paid at *recovery* time, when a consistent
recovery line must be computed on the rollback-dependency graph and
surviving processes may be rolled back too (up to the domino effect).

Mechanics:

* every outgoing data message piggybacks ``(rank, interval)`` — the
  sender's current checkpoint interval;
* every incoming data message records the dependency *(sender, its
  interval) → (me, my interval)*;
* a local checkpoint stores program + MPI state plus the rank's dependency
  log so the graph can be rebuilt from stable storage alone;
* optionally (``logging=True``) received messages are also written to a
  receiver-side message log (charged to the disk), the ingredient that
  lets "some versions of uncoordinated checkpointing" restart *only* the
  failed process (paper §3.2.2) — the log turns would-be orphan messages
  into replayable ones.

Recovery-line computation lives in :mod:`repro.ckpt.recovery_line`; the
runtime collects the per-checkpoint dependency logs and calls it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ckpt.protocols.base import CrProtocol
from repro.ckpt.protocols.roles import (DeliveryTap,
                                        DependencyRollbackPlanner,
                                        SelfPacedWaveScheduler)
from repro.sim.events import Event

#: Modelled per-message log-write latency is the disk's op cost + size/bw;
#: logging batches this many messages per forced write.
LOG_BATCH = 8


class _DependencyTap(DeliveryTap):
    """Piggyback the sender's interval; record dependencies on arrival."""

    def __init__(self, protocol: "UncoordinatedProtocol"):
        self.protocol = protocol

    def piggyback(self, dest_world: int):
        p = self.protocol
        return (p.ctx.rank, p._ckpt_index)

    def on_deliver(self, src_world: int, inbound, pb):
        p = self.protocol
        if pb is not None:
            sender, s_interval = pb
            p._deps.append((sender, s_interval, p._ckpt_index))
        if p.logging:
            p._msg_log.append((src_world, inbound.comm_id, inbound.source,
                               inbound.tag, inbound.data, inbound.nbytes))
            p._unflushed += 1
        return False


class UncoordinatedProtocol(CrProtocol):
    """One rank's independent checkpointing module."""

    name = "uncoordinated"
    planner = DependencyRollbackPlanner

    def __init__(self, interval: Optional[float] = None,
                 logging: bool = False, jitter: float = 0.25):
        """``interval``: checkpoint period in simulated seconds (``None``
        = only on explicit request); ``jitter``: fraction of the interval
        used to de-synchronize ranks (rank-dependent, deterministic)."""
        super().__init__()
        self.interval = interval
        self.logging = logging
        self.jitter = jitter
        self.scheduler = SelfPacedWaveScheduler("uc-take",
                                                "cr-uncoord-tick")
        self.tap = _DependencyTap(self)
        self._ckpt_index = 0                      # == current interval
        self._deps: List[Tuple[int, int, int]] = []   # (sender, s_iv, my_iv)
        self._msg_log: List[tuple] = []
        self._unflushed = 0

    @classmethod
    def runtime_kwargs(cls, record) -> dict:
        return {"interval": record.ckpt_interval,
                "logging": bool(record.params.get("_ckpt_logging", False))}

    # -- wiring ---------------------------------------------------------------

    def start(self, ctx) -> None:
        super().start(ctx)
        existing = ctx.store.versions_of(ctx.app_id, ctx.rank)
        if existing:       # continue interval numbering after a restart
            self._ckpt_index = max(existing) + 1

    # -- user request ----------------------------------------------------------

    def request_checkpoint(self) -> Event:
        """Take a *local* checkpoint now (no coordination with peers)."""
        ev = self._completion_event(self._ckpt_index + 1)
        self.inbox.put((("uc-take",), self.ctx.rank))
        return ev

    # -- handlers ----------------------------------------------------------------

    def on_uc_take(self, payload, source):
        ctx = self.ctx
        yield from ctx.pause()
        # snapshot_parts, not snapshot: the app resumes below, so the
        # runtime meta (step counter) is sampled at record-build time.
        state, mpi_state = self.capturer.snapshot_parts(ctx)
        deps = list(self._deps)
        log = list(self._msg_log) if self.logging else []
        index = self._ckpt_index          # this checkpoint's version
        self._ckpt_index += 1             # new interval begins
        ctx.resume()                      # independent: nobody waits for us

        image, nbytes = self.capturer.materialize(ctx, state)
        if self.logging and self._unflushed:
            # Flush the pending message-log tail with the checkpoint.
            log_bytes = sum(m[5] for m in log[-self._unflushed:])
            yield from ctx.node.disk.write(log_bytes)
            self._unflushed = 0
        record = self.capturer.build_record(
            ctx, index, image, nbytes, {**mpi_state, **ctx.runtime_meta()},
            deps=list(deps), msg_log=log)
        yield from self.capturer.persist(ctx, record)
        self.oracle.dumped(index)
        self.record_checkpoint(nbytes)
        # No coordination: "committing" is just local bookkeeping, and the
        # completion-event version is the *interval* the checkpoint opened
        # (index + 1), which the oracle must not match against the dump.
        self._committed(index + 1, participating=False)

    # -- recovery-side helpers ---------------------------------------------------

    @property
    def interval_index(self) -> int:
        return self._ckpt_index

    def live_deps(self) -> List[Tuple[int, int, int]]:
        """Dependencies recorded so far (incl. the current interval)."""
        return list(self._deps)
