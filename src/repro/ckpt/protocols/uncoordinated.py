"""Uncoordinated (independent) checkpointing with dependency tracking.

Each rank checkpoints on its own schedule — no synchronization, no drain,
no commit barrier; the price is paid at *recovery* time, when a consistent
recovery line must be computed on the rollback-dependency graph and
surviving processes may be rolled back too (up to the domino effect).

Mechanics:

* every outgoing data message piggybacks ``(rank, interval)`` — the
  sender's current checkpoint interval;
* every incoming data message records the dependency *(sender, its
  interval) → (me, my interval)*;
* a local checkpoint stores program + MPI state plus the rank's dependency
  log so the graph can be rebuilt from stable storage alone;
* optionally (``logging=True``) received messages are also written to a
  receiver-side message log (charged to the disk), the ingredient that
  lets "some versions of uncoordinated checkpointing" restart *only* the
  failed process (paper §3.2.2) — the log turns would-be orphan messages
  into replayable ones.

Recovery-line computation lives in :mod:`repro.ckpt.recovery_line`; the
runtime collects the per-checkpoint dependency logs and calls it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.ckpt.protocols.base import CrProtocol
from repro.ckpt.storage import CheckpointRecord
from repro.errors import Interrupt
from repro.sim.events import Event

#: Modelled per-message log-write latency is the disk's op cost + size/bw;
#: logging batches this many messages per forced write.
LOG_BATCH = 8


class UncoordinatedProtocol(CrProtocol):
    """One rank's independent checkpointing module."""

    name = "uncoordinated"

    def __init__(self, interval: Optional[float] = None,
                 logging: bool = False, jitter: float = 0.25):
        """``interval``: checkpoint period in simulated seconds (``None``
        = only on explicit request); ``jitter``: fraction of the interval
        used to de-synchronize ranks (rank-dependent, deterministic)."""
        super().__init__()
        self.interval = interval
        self.logging = logging
        self.jitter = jitter
        self._ckpt_index = 0                      # == current interval
        self._deps: List[Tuple[int, int, int]] = []   # (sender, s_iv, my_iv)
        self._msg_log: List[tuple] = []
        self._unflushed = 0
        self._ticker = None

    # -- wiring ---------------------------------------------------------------

    def start(self, ctx) -> None:
        super().start(ctx)
        existing = ctx.store.versions_of(ctx.app_id, ctx.rank)
        if existing:       # continue interval numbering after a restart
            self._ckpt_index = max(existing) + 1
        ctx.endpoint.piggyback_provider = \
            lambda: (ctx.rank, self._ckpt_index)
        prev_tap = ctx.endpoint.data_tap
        ctx.endpoint.data_tap = self._make_tap(prev_tap)
        if self.interval is not None:
            self._ticker = ctx.node.spawn(
                self._periodic(), name=f"cr-uncoord-tick:{ctx.rank}")

    def _make_tap(self, prev):
        def tap(src_world: int, inbound, pb) -> None:
            if pb is not None:
                sender, s_interval = pb
                self._deps.append((sender, s_interval, self._ckpt_index))
            if self.logging:
                self._msg_log.append((src_world, inbound.comm_id,
                                      inbound.source, inbound.tag,
                                      inbound.data, inbound.nbytes))
                self._unflushed += 1
            if prev is not None:
                prev(src_world, inbound, pb)
        return tap

    def _periodic(self):
        offset = self.interval * self.jitter * self.ctx.rank \
            / max(1, len(self.ctx.peers()))
        try:
            yield self.ctx.engine.timeout(offset)
            while True:
                yield self.ctx.engine.timeout(self.interval)
                self.inbox.put((("uc-take",), self.ctx.rank))
        except Interrupt:
            return
        except Exception:
            return

    # -- user request ----------------------------------------------------------

    def request_checkpoint(self) -> Event:
        """Take a *local* checkpoint now (no coordination with peers)."""
        ev = self._completion_event(self._ckpt_index + 1)
        self.inbox.put((("uc-take",), self.ctx.rank))
        return ev

    # -- handlers ----------------------------------------------------------------

    def on_uc_take(self, payload, source):
        ctx = self.ctx
        yield from ctx.pause()
        state = ctx.snapshot_state()
        mpi_state = ctx.endpoint.export_state()
        deps = list(self._deps)
        log = list(self._msg_log) if self.logging else []
        index = self._ckpt_index          # this checkpoint's version
        self._ckpt_index += 1             # new interval begins
        ctx.resume()                      # independent: nobody waits for us

        image, nbytes = ctx.checkpointer.capture(state, ctx.arch)
        if self.logging and self._unflushed:
            # Flush the pending message-log tail with the checkpoint.
            log_bytes = sum(m[5] for m in log[-self._unflushed:])
            yield from ctx.node.disk.write(log_bytes)
            self._unflushed = 0
        record = CheckpointRecord(
            app_id=ctx.app_id, rank=ctx.rank, version=index,
            level=ctx.checkpointer.level, nbytes=nbytes, image=image,
            arch_name=ctx.arch.name, taken_at=ctx.engine.now,
            mpi_state={**mpi_state, **ctx.runtime_meta()},
            deps=list(deps), msg_log=log)
        yield from ctx.store.write(ctx.node, record,
                                   bandwidth=ctx.checkpointer.write_bandwidth)
        self.oracle.dumped(index)
        self.record_checkpoint(nbytes)
        # No coordination: "committing" is just local bookkeeping, and the
        # completion-event version is the *interval* the checkpoint opened
        # (index + 1), which the oracle must not match against the dump.
        self._committed(index + 1, participating=False)

    # -- recovery-side helpers ---------------------------------------------------

    @property
    def interval_index(self) -> int:
        return self._ckpt_index

    def live_deps(self) -> List[Tuple[int, int, int]]:
        """Dependencies recorded so far (incl. the current interval)."""
        return list(self._deps)

    def stop(self) -> None:
        if self._ticker is not None and self._ticker.is_alive:
            self._ticker.interrupt("cr-stop")
        super().stop()
