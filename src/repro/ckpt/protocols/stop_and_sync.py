"""The stop-and-sync coordinated checkpoint protocol.

This is the protocol the paper measures in Figures 3 and 4: stop every
process, let in-flight messages drain, dump every process, then commit.

Rounds (all C/R messages ride the lightweight group, totally ordered):

1. ``ss-begin v``      — any rank initiates; the total order resolves races.
2. *stop*              — each rank pauses its application at a safe point
                         and publishes its per-channel send counters
                         (``ss-counts``).
3. *sync/drain*        — each rank waits until it has ingested exactly as
                         many messages as its peers report having sent to
                         it: the network is then empty of application data.
4. *dump*              — each rank captures program + MPI-runtime state and
                         writes it through its local disk (``ss-done``).
5. *commit*            — the lowest live rank waits for all ``ss-done``,
                         pays the stable-storage commit barrier (calibrated
                         against the paper's 1/2/4-node anchors), and casts
                         ``ss-commit``; everyone resumes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.calibration import (FIG3_ANCHORS, FIG4_ANCHORS,
                               NATIVE_DISK_BANDWIDTH, NATIVE_EMPTY_IMAGE,
                               VM_DUMP_BANDWIDTH, VM_EMPTY_IMAGE,
                               protocol_round_estimate, sync_residual)
from repro.ckpt.protocols.base import CrProtocol
from repro.sim.events import Event

#: How often a draining rank re-checks its receive counters.
DRAIN_POLL = 0.0002


def commit_barrier_cost(level: str, nodes: int) -> float:
    """Stable-storage commit + barrier-skew residual (paper-calibrated).

    The simulated protocol rounds already cost time, so their estimate is
    deducted from the calibrated residual — total checkpoint time then
    lands on the paper's anchors instead of paying the rounds twice.
    """
    if level == "native":
        residual = sync_residual(nodes, FIG3_ANCHORS, NATIVE_EMPTY_IMAGE,
                                 NATIVE_DISK_BANDWIDTH)
    else:
        residual = sync_residual(nodes, FIG4_ANCHORS, VM_EMPTY_IMAGE,
                                 VM_DUMP_BANDWIDTH)
    return max(0.0, residual - protocol_round_estimate(nodes))


class StopAndSyncProtocol(CrProtocol):
    """One rank's stop-and-sync module."""

    name = "stop-and-sync"

    def __init__(self):
        super().__init__()
        self._version = 0
        self._counts: Dict[int, Dict[int, int]] = {}   # rank -> sent map
        self._done: set = set()
        self._active: Optional[int] = None
        self._dump_started: Optional[int] = None
        self._floor = 0              # highest version known committed

    def on_membership_change(self, live_ranks) -> None:
        """A peer left (or joined) mid-wave: counts/done from a lost rank
        can never arrive and the wave holds the app paused, so it can
        never complete either — abort it.  The checkpoint tickers
        initiate a fresh wave on the new world."""
        super().on_membership_change(live_ranks)
        if self._active is None:
            return
        self.oracle.wave_abort(self._active)
        self._active = None
        self._counts = {}
        self._done = set()
        # _active was set, so this rank's on_ss_begin has requested its
        # pause (it happens before control ever leaves the module).
        self.ctx.resume()
        self._abort_wave_waiters()

    def start(self, ctx) -> None:
        super().start(ctx)
        # A restarted process continues the version sequence: colliding
        # with stored versions would overwrite live recovery lines, and
        # all ranks must agree (app-wide max — a rank that died mid-
        # checkpoint stored fewer versions than its peers).
        self._version = max(self._version, ctx.store.max_version(ctx.app_id))
        committed = ctx.store.committed_versions(ctx.app_id)
        self._floor = max([self._floor, *committed]) if committed else \
            self._floor

    def request_checkpoint(self) -> Event:
        version = self._version + 1
        ev = self._completion_event(version)
        # Target boundary: one step past the initiator's progress, so all
        # (globally synchronizing) ranks stop at the same step count.
        # The version rides the cast: restarted ranks can observe
        # different store contents (a late in-flight mirror from the dead
        # incarnation), so local ``_version + 1`` does not agree across
        # ranks — the totally-ordered proposal does.
        self.ctx.cast(("ss-begin", self.ctx.current_step() + 1, version))
        return ev

    # ------------------------------------------------------------------
    # handlers (run in the module's main loop, strictly serialized)
    # ------------------------------------------------------------------

    def on_ss_begin(self, payload, source):
        if self._active is not None:
            return                      # already checkpointing: coalesce
        target = payload[1] if len(payload) > 1 else None
        proposed = payload[2] if len(payload) > 2 else self._version + 1
        if proposed <= self._floor:
            return        # that line committed while the begin was queued
        self._version = max(self._version, proposed)
        self._active = proposed
        self.oracle.wave_begin(proposed)
        self._counts = {}
        self._done = set()
        yield from self.ctx.pause(target)
        if self._active != proposed:
            return            # aborted by a membership change mid-pause
        sent, _ = self.ctx.endpoint.channel_counters()
        self.oracle.counts_published(proposed)
        self.ctx.cast(("ss-counts", proposed, self.ctx.rank, sent))

    def on_ss_counts(self, payload, source):
        _, version, rank, sent = payload
        if version != self._active:
            return
        self._counts[rank] = sent
        # Subset (not count equality): _counts may hold a rank that died
        # after publishing, and live_peers() may be smaller than the
        # world the wave started on.
        if self._dump_started != version \
                and self.live_peers() <= set(self._counts):
            self._dump_started = version
            yield from self._drain_and_dump(version)

    def _drain_and_dump(self, version: int):
        ctx = self.ctx
        me = ctx.rank
        live = self.live_peers()
        expected = {r: counts.get(me, 0) for r, counts in
                    self._counts.items() if r != me and r in live}
        # Sync: wait until every message sent to us has been ingested.
        t0 = ctx.engine.now
        while any(ctx.endpoint.recv_count.get(r, 0) < n
                  for r, n in expected.items()):
            if self._active != version:
                return               # wave aborted by a membership change
            yield ctx.engine.timeout(DRAIN_POLL)
        self.record_sync(ctx.engine.now - t0)
        if self._active != version:
            return
        # Dump (StateCapturer role: the app is paused, so runtime meta is
        # sampled together with the MPI state).
        state, mpi_state = self.capturer.snapshot(ctx)
        image, nbytes = self.capturer.materialize(ctx, state)
        record = self.capturer.build_record(ctx, version, image, nbytes,
                                            mpi_state)
        yield from self.capturer.persist(ctx, record)
        self.oracle.dumped(version)
        self.record_checkpoint(nbytes)
        ctx.cast(("ss-done", version, me))

    def on_ss_done(self, payload, source):
        _, version, rank = payload
        if version != self._active:
            return
        self._done.add(rank)
        peers = self.live_peers()
        if not peers or not peers <= self._done:
            return
        if self.ctx.rank == min(peers) and self._commit_started != version:
            self._commit_started = version
            self.oracle.commit_coordination(version)
            # Commit coordinator: stable-storage barrier, then release.
            yield self.ctx.engine.timeout(self._commit_barrier(len(peers)))
            self.ctx.store.commit(self.ctx.app_id, version)
            self.ctx.store.gc_committed(self.ctx.app_id, keep=2)
            self.ctx.cast(("ss-commit", version))

    def _commit_barrier(self, nodes: int) -> float:
        """Stable-storage commit cost (overridden by diskless)."""
        return commit_barrier_cost(self.ctx.checkpointer.level, nodes)

    def on_ss_commit(self, payload, source):
        _, version = payload
        self._floor = max(self._floor, version)
        if version != self._active:
            return None
        self._active = None
        self.ctx.resume()
        self._committed(version)
        return None
