"""The stop-and-sync coordinated checkpoint protocol.

This is the protocol the paper measures in Figures 3 and 4: stop every
process, let in-flight messages drain, dump every process, then commit.

Rounds (all C/R messages ride the lightweight group, totally ordered):

1. ``ss-begin v``      — any rank initiates; the total order resolves races.
2. *stop*              — each rank pauses its application at a safe point
                         and publishes its per-channel send counters
                         (``ss-counts``).
3. *sync/drain*        — each rank waits until it has ingested exactly as
                         many messages as its peers report having sent to
                         it: the network is then empty of application data.
4. *dump*              — each rank captures program + MPI-runtime state and
                         writes it through its local disk (``ss-done``).
5. *commit*            — the lowest live rank waits for all ``ss-done``,
                         pays the stable-storage commit barrier (calibrated
                         against the paper's 1/2/4-node anchors), and casts
                         ``ss-commit``; everyone resumes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.calibration import (FIG3_ANCHORS, FIG4_ANCHORS,
                               NATIVE_DISK_BANDWIDTH, NATIVE_EMPTY_IMAGE,
                               VM_DUMP_BANDWIDTH, VM_EMPTY_IMAGE,
                               protocol_round_estimate, sync_residual)
from repro.ckpt.protocols.base import CrProtocol
from repro.ckpt.storage import CheckpointRecord
from repro.sim.events import Event

#: How often a draining rank re-checks its receive counters.
DRAIN_POLL = 0.0002


def commit_barrier_cost(level: str, nodes: int) -> float:
    """Stable-storage commit + barrier-skew residual (paper-calibrated).

    The simulated protocol rounds already cost time, so their estimate is
    deducted from the calibrated residual — total checkpoint time then
    lands on the paper's anchors instead of paying the rounds twice.
    """
    if level == "native":
        residual = sync_residual(nodes, FIG3_ANCHORS, NATIVE_EMPTY_IMAGE,
                                 NATIVE_DISK_BANDWIDTH)
    else:
        residual = sync_residual(nodes, FIG4_ANCHORS, VM_EMPTY_IMAGE,
                                 VM_DUMP_BANDWIDTH)
    return max(0.0, residual - protocol_round_estimate(nodes))


class StopAndSyncProtocol(CrProtocol):
    """One rank's stop-and-sync module."""

    name = "stop-and-sync"

    def __init__(self):
        super().__init__()
        self._version = 0
        self._counts: Dict[int, Dict[int, int]] = {}   # rank -> sent map
        self._done: set = set()
        self._active: Optional[int] = None

    def start(self, ctx) -> None:
        super().start(ctx)
        # A restarted process continues the version sequence: colliding
        # with stored versions would overwrite live recovery lines, and
        # all ranks must agree (app-wide max — a rank that died mid-
        # checkpoint stored fewer versions than its peers).
        self._version = max(self._version, ctx.store.max_version(ctx.app_id))

    def request_checkpoint(self) -> Event:
        version = self._version + 1
        ev = self._completion_event(version)
        # Target boundary: one step past the initiator's progress, so all
        # (globally synchronizing) ranks stop at the same step count.
        self.ctx.cast(("ss-begin", self.ctx.current_step() + 1))
        return ev

    # ------------------------------------------------------------------
    # handlers (run in the module's main loop, strictly serialized)
    # ------------------------------------------------------------------

    def on_ss_begin(self, payload, source):
        if self._active is not None:
            return                      # already checkpointing: coalesce
        target = payload[1] if len(payload) > 1 else None
        self._version += 1
        self._active = self._version
        self._counts = {}
        self._done = set()
        yield from self.ctx.pause(target)
        sent, _ = self.ctx.endpoint.channel_counters()
        self.ctx.cast(("ss-counts", self._version, self.ctx.rank, sent))

    def on_ss_counts(self, payload, source):
        _, version, rank, sent = payload
        if version != self._active:
            return
        self._counts[rank] = sent
        if len(self._counts) == len(self.ctx.peers()):
            yield from self._drain_and_dump(version)

    def _drain_and_dump(self, version: int):
        ctx = self.ctx
        me = ctx.rank
        expected = {r: counts.get(me, 0) for r, counts in
                    self._counts.items() if r != me}
        # Sync: wait until every message sent to us has been ingested.
        t0 = ctx.engine.now
        while any(ctx.endpoint.recv_count.get(r, 0) < n
                  for r, n in expected.items()):
            yield ctx.engine.timeout(DRAIN_POLL)
        self.record_sync(ctx.engine.now - t0)
        # Dump.
        state = ctx.snapshot_state()
        image, nbytes = ctx.checkpointer.capture(state, ctx.arch)
        record = CheckpointRecord(
            app_id=ctx.app_id, rank=me, version=version,
            level=ctx.checkpointer.level, nbytes=nbytes, image=image,
            arch_name=ctx.arch.name, taken_at=ctx.engine.now,
            mpi_state={**ctx.endpoint.export_state(),
                       **ctx.runtime_meta()})
        yield from ctx.store.write(
            ctx.node, record, bandwidth=ctx.checkpointer.write_bandwidth)
        self.record_checkpoint(nbytes)
        ctx.cast(("ss-done", version, me))

    def on_ss_done(self, payload, source):
        _, version, rank = payload
        if version != self._active:
            return
        self._done.add(rank)
        peers = self.ctx.peers()
        if len(self._done) < len(peers):
            return
        if self.ctx.rank == min(peers):
            # Commit coordinator: stable-storage barrier, then release.
            yield self.ctx.engine.timeout(self._commit_barrier(len(peers)))
            self.ctx.store.commit(self.ctx.app_id, version)
            self.ctx.store.gc_committed(self.ctx.app_id, keep=2)
            self.ctx.cast(("ss-commit", version))

    def _commit_barrier(self, nodes: int) -> float:
        """Stable-storage commit cost (overridden by diskless)."""
        return commit_barrier_cost(self.ctx.checkpointer.level, nodes)

    def on_ss_commit(self, payload, source):
        _, version = payload
        if version != self._active:
            return None
        self._active = None
        self.ctx.resume()
        self._committed(version)
        return None
