"""Chandy–Lamport coordinated (non-blocking) snapshot protocol.

The contrast to stop-and-sync: processes are paused only for the instant of
the local state capture; the application keeps computing while in-channel
messages are *recorded* and while the image is written to disk.  Channel
state (messages in flight at snapshot time) is captured by FIFO **markers**
sent in-band on every data channel:

1. ``cl-begin v`` (lightweight group, total order) — every rank treats it
   as the initiator's marker: capture local state, send a marker down every
   outgoing channel, start recording every incoming channel.  As in the
   original algorithm, a *marker* arriving before the begin notice also
   triggers the snapshot (markers ride the Myrinet fast path and can beat
   the daemons' Ethernet broadcast).
2. a data message arriving on channel *c* before *c*'s marker belongs to
   the snapshot: record it.
3. marker on channel *c* → stop recording *c*.  All markers in → write the
   record (state + recorded channel messages), cast ``cl-done``.
4. lowest rank collects ``cl-done`` from everyone, pays the commit barrier,
   casts ``cl-commit``.

Markers travel as MPI control messages (``CKPT_TAG_BASE - 1``) so they are
FIFO-ordered with data on the same channel — exactly the property the
algorithm requires.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ckpt.protocols.base import CrProtocol
from repro.ckpt.protocols.roles import DeliveryTap
from repro.ckpt.protocols.stop_and_sync import commit_barrier_cost
from repro.mpi.constants import CKPT_TAG_BASE
from repro.sim.events import Event

MARKER_TAG = CKPT_TAG_BASE - 1


class _MarkerTap(DeliveryTap):
    """Record in-channel data while a snapshot is open; route markers.

    Installed permanently; recording is gated on the protocol's
    ``_active``/``_recording`` state, which is exactly when the old
    dynamically-installed data tap existed.
    """

    def __init__(self, protocol: "ChandyLamportProtocol"):
        self.protocol = protocol

    def on_deliver(self, src_world: int, inbound, pb):
        p = self.protocol
        if p._active is not None and src_world in p._recording:
            p._recorded.append((src_world, inbound.comm_id, inbound.source,
                                inbound.tag, inbound.data, inbound.nbytes))
        return False

    def on_control(self, msg, src_world: int):
        if msg.tag == MARKER_TAG:
            tag, version, target = msg.data
            if tag == "cl-marker":
                self.protocol.deliver(
                    ("cl-marker-in", version, src_world, target), src_world)
        return None


class ChandyLamportProtocol(CrProtocol):
    """One rank's Chandy–Lamport module."""

    name = "chandy-lamport"

    def __init__(self):
        super().__init__()
        self.tap = _MarkerTap(self)
        self._version = 0            # highest snapshot version seen/taken
        self._active: Optional[int] = None
        self._recording: Set[int] = set()
        self._recorded: List[tuple] = []
        self._early_markers: Set[int] = set()
        self._done: set = set()
        self._pending_state = None

    def start(self, ctx) -> None:
        super().start(ctx)
        # Continue the (app-wide) version sequence after a restart.
        self._version = max(self._version, ctx.store.max_version(ctx.app_id))

    def request_checkpoint(self) -> Event:
        version = self._version + 1
        ev = self._completion_event(version)
        self.ctx.cast(("cl-begin", version, self.ctx.current_step() + 1))
        return ev

    # ------------------------------------------------------------------
    # snapshot initiation (from begin notice OR from an early marker)
    # ------------------------------------------------------------------

    def on_membership_change(self, live_ranks) -> None:
        """The app keeps running under Chandy–Lamport (only the marker
        wave stalls on a lost peer), so the clean-up can ride the inbox:
        close the dead peer's channels and re-run the commit check that
        its ``cl-done`` would have triggered."""
        super().on_membership_change(live_ranks)
        if self._active is not None:
            self.deliver(("cl-prune", tuple(live_ranks)), self.ctx.rank)

    def on_cl_prune(self, payload, source):
        _, live = payload
        version = self._active
        if version is None:
            return None
        self._recording &= set(live)
        if self._pending_state is not None and not self._recording:
            return self._finish(version)  # own cl-done cast rechecks commit
        return self._maybe_commit(version)

    def _take_snapshot(self, version: int, target: Optional[int] = None):
        self._version = version
        self._active = version
        self.oracle.wave_begin(version)
        self._done = set()
        self._recorded = []
        ctx = self.ctx
        peers = [r for r in self.live_peers() if r != ctx.rank]

        # Momentary pause: capture local state at the common step boundary.
        yield from ctx.pause(target)
        self._pending_state = self.capturer.snapshot(ctx)
        # Channels whose marker raced ahead of the begin notice are empty.
        # (The delivery tap starts recording them from here on.)
        self._recording = set(peers) - self._early_markers
        self._early_markers = set()
        # Send markers down every outgoing channel (before any new data).
        for peer in peers:
            yield from ctx.endpoint.send(
                peer, f"cr:{ctx.app_id}", ctx.rank, MARKER_TAG,
                ("cl-marker", version, target), nbytes=16)
        ctx.resume()                      # app continues immediately
        if not self._recording:
            yield from self._finish(version)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def on_cl_begin(self, payload, source):
        version = payload[1]
        target = payload[2] if len(payload) > 2 else None
        if version <= self._version:
            return None  # already taken (possibly marker-initiated)
        return self._take_snapshot(version, target)

    def on_cl_marker_in(self, payload, source):
        _, version, src_world, target = payload
        if version < self._version or (version == self._version
                                       and self._active is None):
            return None               # stale marker for a finished snapshot
        if version > self._version:
            # Marker beat the begin notice: it initiates our snapshot and
            # its own channel is recorded as empty.
            self._early_markers = {src_world}
            return self._take_snapshot(version, target)
        return self._marker_closes(version, src_world)

    def _marker_closes(self, version: int, src_world: int):
        if self._active is None or self._pending_state is None:
            # Snapshot still being initiated (we are inside _take_snapshot):
            # remember the marker so the channel starts closed.
            self._early_markers.add(src_world)
            return
        self._recording.discard(src_world)
        if not self._recording:
            yield from self._finish(version)

    def _finish(self, version: int):
        ctx = self.ctx
        state, mpi_state = self._pending_state
        self._pending_state = None
        image, nbytes = self.capturer.materialize(ctx, state)
        record = self.capturer.build_record(
            ctx, version, image, nbytes, mpi_state,
            channel_msgs=list(self._recorded))
        yield from self.capturer.persist(ctx, record)
        self.oracle.dumped(version)
        self.record_checkpoint(nbytes)
        ctx.cast(("cl-done", version, ctx.rank))

    def on_cl_done(self, payload, source):
        _, version, rank = payload
        if version != self._active:
            return None
        self._done.add(rank)
        return self._maybe_commit(version)

    def _maybe_commit(self, version: int):
        peers = self.live_peers()
        if not peers or not peers <= self._done:
            return
        if self.ctx.rank == min(peers) and self._commit_started != version:
            self._commit_started = version
            self.oracle.commit_coordination(version)
            yield self.ctx.engine.timeout(
                commit_barrier_cost(self.ctx.checkpointer.level, len(peers)))
            self.ctx.store.commit(self.ctx.app_id, version)
            self.ctx.store.gc_committed(self.ctx.app_id, keep=2)
            self.ctx.cast(("cl-commit", version))

    def on_cl_commit(self, payload, source):
        _, version = payload
        if version != self._active:
            return None
        self._active = None
        self._committed(version)
        return None
