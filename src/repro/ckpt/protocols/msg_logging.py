"""Sender-based message logging: the escape from domino rollback.

Both protocols here checkpoint *independently* (self-paced, like the
uncoordinated protocol) but additionally log every sent data message —
with its per-channel send sequence number (ssn) — to stable storage via
the checkpoint store.  After a failure the :class:`SoloReplayPlanner`
restarts **only the crashed rank**: it resumes from its own latest
checkpoint (channel counters included) and the inbound side of every
channel is re-fed from the sender logs through the delivery tap, in the
original receive order.  Survivors never roll back; the restarted rank's
re-sends are duplicate-suppressed at the receivers by their ssn.

Two flavours, differing only in *when the log IO is charged*:

* :class:`SenderLoggingProtocol` (``sender-logging``) — **pessimistic**:
  the sender's disk write happens before the message goes on the wire
  (the tap's ``on_send`` runs before the VNI send), so logged-before-sent
  holds by construction and no orphan can ever be created.  Steady-state
  cost: one log write per message, on the send path.
* :class:`CausalLoggingProtocol` (``causal-logging``) — the log entry is
  recorded immediately but its IO is deferred and batched into the next
  checkpoint (the determinant is bounded by the checkpoint, as in causal
  logging's recovery guarantee); sends stay fast, and the flush rides the
  checkpoint's disk write.

Invariants are watched by :class:`~repro.check.oracles.ReplayOracle`
(logged-before-sent, replay-exactly-once, orphan-free).

Known modelling limit: per-channel receive counters count *arrivals*, so
unrecovered frame loss toward a rank that later crashes can skew the
replay window (see DESIGN.md §15).  The shipped campaigns exercise crash
faults, where in-flight-at-crash messages are exactly what the log heals.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.check.oracles import ReplayOracle
from repro.ckpt.protocols.base import CrProtocol
from repro.ckpt.protocols.roles import (DeliveryTap, SelfPacedWaveScheduler,
                                        SoloReplayPlanner)
from repro.mpi.matching import InboundMsg
from repro.sim.events import Event


class ReplayTap(DeliveryTap):
    """The logging protocols' interception point.

    Send side: piggyback the message's ssn, append it to the sender log,
    charge the protocol's log-IO policy.  Delivery side: suppress
    duplicates (a restarted sender re-executing its past re-sends with
    the original ssns) and, while this rank is itself being restored,
    stash live traffic until replay has caught the channel up.
    """

    def __init__(self, protocol: "SenderLoggingProtocol"):
        self.protocol = protocol
        self._holding = False
        #: Live messages that arrived mid-restore: (src, inbound, ssn).
        self._stash: List[Tuple[int, InboundMsg, Optional[int]]] = []

    # -- send path ------------------------------------------------------

    def piggyback(self, dest_world: int):
        # sent_count was incremented just before this call, so it IS this
        # message's ssn on the (us -> dest) channel.
        ep = self.protocol.ctx.endpoint
        return ("ssn", ep.sent_count[dest_world])

    def on_send(self, dest_world: int, comm_id: str, src_comm_rank: int,
                tag: int, data, nbytes: int, pb):
        p = self.protocol
        ssn = pb[1]
        fresh = p.ctx.store.log_append(
            p.ctx.app_id, p.ctx.rank, dest_world, ssn,
            (comm_id, src_comm_rank, tag, data, nbytes), nbytes=nbytes)
        if fresh:
            # A re-executed send (same ssn) is already covered: charging
            # it again would bill the same log entry twice.
            cost = p.charge_send_log(nbytes)
            if cost is not None:
                yield from cost

    # -- delivery path --------------------------------------------------

    @staticmethod
    def _ssn_of(pb) -> Optional[int]:
        if isinstance(pb, tuple) and len(pb) == 2 and pb[0] == "ssn":
            return pb[1]
        return None

    def on_deliver(self, src_world: int, inbound, pb):
        ssn = self._ssn_of(pb)
        if self._holding:
            # Mid-restore: replay must re-feed the channel history first;
            # live traffic waits its turn (flushed by replay()).
            self._stash.append((src_world, inbound, ssn))
            return True
        if ssn is None:
            return False
        p = self.protocol
        ep = p.ctx.endpoint
        if ssn <= ep.recv_count.get(src_world, 0):
            # Duplicate: a restarted sender re-executing its past.
            return True
        p.replay_oracle.delivered(
            src_world, ssn,
            p.ctx.store.log_end(p.ctx.app_id, src_world, p.ctx.rank))
        return False

    # -- restore-side replay --------------------------------------------

    def replay(self, endpoint, store):
        """Process generator: re-feed logged inbound channels.

        Called by the runtime's solo-restore path after the checkpoint
        (and its channel counters) are back in place.  Every channel is
        replayed gap-free from its restored receive counter to the log
        end; the read IO for the replayed bytes is charged to this
        node's disk in one batch.
        """
        p = self.protocol
        oracle = p.replay_oracle
        app_id = endpoint.app_id
        me = endpoint.world_rank
        total_bytes = 0
        replayed = 0
        for sender in store.log_senders(app_id, me):
            if sender == me:
                # Self-channel messages are regenerated by re-execution.
                continue
            rc = endpoint.recv_count.get(sender, 0)
            oracle.restored(sender, rc, store.log_end(app_id, sender, me))
            for ssn, entry in store.log_tail(app_id, sender, me,
                                             after_ssn=rc):
                oracle.replayed(sender, ssn, rc + 1)
                rc = ssn
                endpoint.recv_count[sender] = rc
                comm_id, src_comm_rank, tag, data, nbytes = entry
                endpoint.matching.arrived(InboundMsg(
                    comm_id=comm_id, source=src_comm_rank, tag=tag,
                    data=data, nbytes=nbytes))
                total_bytes += nbytes
                replayed += 1
        if total_bytes:
            yield from endpoint.node.disk.read(total_bytes)
        p.record_replay(replayed, total_bytes)
        # Release the stash: live messages that raced the restore.  Any
        # of them the replay already covered is a duplicate now.
        self._holding = False
        stash, self._stash = self._stash, []
        for src_world, inbound, ssn in stash:
            if ssn is not None \
                    and ssn <= endpoint.recv_count.get(src_world, 0):
                continue
            endpoint.recv_count[src_world] += 1
            endpoint.matching.arrived(inbound)


class SenderLoggingProtocol(CrProtocol):
    """Pessimistic sender-based message logging (solo restart)."""

    name = "sender-logging"
    planner = SoloReplayPlanner
    #: Ask the runtime to snapshot channel state at every step commit:
    #: solo replay restores counters, so they must be consistent with the
    #: step boundary the checkpoint resumes from (a pause may freeze the
    #: rank mid-step, with the uncommitted step's traffic already counted).
    wants_boundary_capture = True

    def __init__(self, interval: Optional[float] = None,
                 jitter: float = 0.25):
        super().__init__()
        self.interval = interval
        self.jitter = jitter
        self.scheduler = SelfPacedWaveScheduler("log-take", "cr-log-tick")
        self.tap = ReplayTap(self)
        self.replay_oracle = ReplayOracle(self)
        self._ckpt_index = 0
        self._unflushed_bytes = 0
        self._replayed_msgs = 0

    @classmethod
    def runtime_kwargs(cls, record) -> dict:
        return {"interval": record.ckpt_interval}

    def start(self, ctx) -> None:
        super().start(ctx)
        self.replay_oracle.bind(ctx.rank)
        existing = ctx.store.versions_of(ctx.app_id, ctx.rank)
        if existing:       # continue version numbering after a restart
            self._ckpt_index = max(existing) + 1
        # Hold live traffic back while a solo restore replays the logs.
        self.tap._holding = ctx.restoring()

    # -- log IO policy (the one knob the causal variant overrides) -------

    def charge_send_log(self, nbytes: int):
        """Pessimistic: the send blocks on the sender's log write."""
        return self.ctx.node.disk.write(nbytes)

    def flush_cost(self) -> int:
        """Log bytes to force out with the next checkpoint (pessimistic:
        none — everything already hit the disk on the send path)."""
        return 0

    def record_replay(self, messages: int, nbytes: int) -> None:
        self._replayed_msgs += messages

    # -- checkpointing ---------------------------------------------------

    def request_checkpoint(self) -> Event:
        """Take a *local* checkpoint now (no coordination with peers)."""
        ev = self._completion_event(self._ckpt_index + 1)
        self.inbox.put((("log-take",), self.ctx.rank))
        return ev

    def on_log_take(self, payload, source):
        ctx = self.ctx
        yield from ctx.pause()
        # The program state only mutates at step commits, so the paused
        # snapshot is the last committed boundary — but the live channel
        # counters may already include the uncommitted step's traffic
        # (mid-step freeze).  Pair the state with the runtime's
        # step-boundary MPI capture, which is consistent with it.
        state = ctx.snapshot_state()
        mpi_state = ctx.boundary_state()
        if mpi_state is None:     # harness contexts: live state is fine
            mpi_state = {**ctx.endpoint.export_state(),
                         "comm_seqs": ctx.comm_state()}
        # Meta sampled *at pause* (not build) time: the causal flush below
        # yields, and a step committing during it would desync the step
        # counter from the boundary channel state.
        meta = ctx.runtime_meta()
        index = self._ckpt_index
        self._ckpt_index += 1
        ctx.resume()                  # independent: nobody waits for us

        image, nbytes = self.capturer.materialize(ctx, state)
        flush = self.flush_cost()
        if flush:
            yield from ctx.node.disk.write(flush)
        record = self.capturer.build_record(
            ctx, index, image, nbytes, {**mpi_state, **meta})
        yield from self.capturer.persist(ctx, record)
        self.oracle.dumped(index)
        self.record_checkpoint(nbytes)
        self._committed(index + 1, participating=False)


class CausalLoggingProtocol(SenderLoggingProtocol):
    """Causal-style logging: log IO deferred into the next checkpoint.

    The log entry itself is recorded at send time (the determinant is
    never lost in this idealized store), but the disk traffic for it is
    accumulated and flushed as one batched write with the checkpoint —
    the steady-state send path pays nothing.
    """

    name = "causal-logging"

    def charge_send_log(self, nbytes: int):
        self._unflushed_bytes += nbytes
        return None

    def flush_cost(self) -> int:
        flush, self._unflushed_bytes = self._unflushed_bytes, 0
        return flush
