"""Checkpoint stable storage.

Each application process dumps through *its own node's* disk (the paper's
measurements are of local IDE disks), and records are registered in a
cluster-wide repository reachable after the writer's node dies — the
standard stable-storage assumption of rollback-recovery (a restarting
process reads the image back at the reader's disk speed).

Versioning:

* coordinated protocols store one record per (rank, version) and *commit*
  a version once every rank's record is stored — the committed version is
  the recovery line;
* the uncoordinated protocol stores per-rank indices plus each record's
  dependency vector; recovery lines are computed on demand
  (:mod:`repro.ckpt.recovery_line`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError, NoCheckpoint
from repro.obs.registry import get_registry

#: Checkpoint storage tiers, fastest first.  L1 lives in partner nodes'
#: RAM (ReStore-style: written at memory/network speed, lost with its
#: holders), L2 is the writer's local disk (the paper's measured IDE
#: path), L3 is the replicated fabric (k-way remote disk copies).
TIER_MEMORY = "memory"
TIER_DISK = "disk"
TIER_FABRIC = "fabric"
TIER_ORDER: Tuple[str, ...] = (TIER_MEMORY, TIER_DISK, TIER_FABRIC)


@dataclass
class CheckpointRecord:
    """One stored local checkpoint.

    Where the copies live is first-class: ``tier`` names the record's
    *home* tier (what kind of storage the writer targeted) and
    ``holders`` maps each tier to the node ids holding a copy there.  A
    record written through a :class:`~repro.store.tiers.TieredStore` can
    have copies in several tiers at once; the legacy stores populate a
    single tier.  ``in_memory`` / ``holder_nodes`` remain as read/write
    views of the home tier for older call sites.
    """

    app_id: str
    rank: int
    version: int                 # coordinated: global; uncoordinated: per-rank
    level: str                   # "native" | "vm"
    nbytes: int
    image: Any                   # checkpointer-specific stored form
    arch_name: str
    taken_at: float
    #: MPI runtime state (channel counters, unexpected queue image).
    mpi_state: dict = field(default_factory=dict)
    #: Uncoordinated: the rank's dependency log up to this checkpoint —
    #: ``(sender, sender_interval, my_interval)`` per received message.
    deps: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Chandy–Lamport: in-channel messages recorded with this snapshot.
    channel_msgs: List[Tuple] = field(default_factory=list)
    #: Message log (logging-enabled uncoordinated protocol).
    msg_log: List[Tuple] = field(default_factory=list)
    #: Home tier: ``memory`` for diskless/L1-only records (fast to write
    #: and read, but a copy dies with its holder), ``disk`` otherwise.
    tier: str = TIER_DISK
    #: Per-tier holder map: tier name -> node ids holding a copy there.
    #: Empty for the idealized legacy disk store (global stable storage).
    holders: Dict[str, List[str]] = field(default_factory=dict)
    #: Delta checkpointing: the version this incremental image applies on
    #: top of (``None`` = a full image).  The chain ends at a full base;
    #: restores replay base + deltas (:mod:`repro.store.delta`).
    delta_of: Optional[int] = None
    #: Logical full-image size for delta records (``nbytes`` is then the
    #: delta payload actually written).
    full_nbytes: Optional[int] = None

    #: Node-liveness probe bound by the registering store (see
    #: :meth:`CheckpointStore._register`); ``None`` = assume up.
    _live = None

    # -- per-tier holder accessors -------------------------------------

    def tier_holders(self, tier: str) -> List[str]:
        """The (mutable) holder list for one tier."""
        return self.holders.setdefault(tier, [])

    def add_holder(self, tier: str, node_id: str) -> None:
        held = self.tier_holders(tier)
        if node_id not in held:
            held.append(node_id)

    def all_holders(self) -> List[str]:
        """Every holder across all tiers, fastest tier first, deduped."""
        out: List[str] = []
        for tier in TIER_ORDER:
            for h in self.holders.get(tier, ()):
                if h not in out:
                    out.append(h)
        return out

    @property
    def is_delta(self) -> bool:
        return self.delta_of is not None

    # -- legacy views (home tier) --------------------------------------

    @property
    def in_memory(self) -> bool:
        """Legacy flag view: is the home tier volatile (diskless)?"""
        return self.tier == TIER_MEMORY

    @in_memory.setter
    def in_memory(self, value: bool) -> None:
        self.tier = TIER_MEMORY if value else TIER_DISK

    @property
    def holder_nodes(self) -> List[str]:
        """Legacy view: the (mutable) home-tier holder list."""
        return self.tier_holders(self.tier)

    @holder_nodes.setter
    def holder_nodes(self, nodes) -> None:
        self.holders[self.tier] = list(nodes)

    @property
    def holder_node(self) -> Optional[str]:
        """First *live* home-tier holder (None for idealized disk records
        or when every holder is DOWN).

        Routed through the registering store's liveness probe, exactly
        like ``record_available`` — a holder whose node has crashed never
        names itself as the place to read from.
        """
        for h in self.holders.get(self.tier, ()):
            if self._live is None or self._live(h):
                return h
        return None


class CheckpointStore:
    """Cluster-wide stable storage for checkpoint records."""

    def __init__(self, engine):
        self.engine = engine
        # (app_id, rank, version) -> record
        self._records: Dict[Tuple[str, int, int], CheckpointRecord] = {}
        #: Committed coordinated versions per app (ascending).
        self._committed: Dict[str, List[int]] = {}
        #: Read-pin refcounts: a record being read cannot be GCed from
        #: under the reader (the GC defers; :meth:`_unpin` finishes it).
        self._pins: Dict[Tuple[str, int, int], int] = {}
        #: Last GC floor per app — versions below it are garbage the
        #: moment their read-pins drain.
        self._gc_floor: Dict[str, int] = {}
        #: Optional node-liveness probe ``(node_id) -> bool``.  When set
        #: (the Starfish layer wires it to the cluster's node table),
        #: in-memory copies on a DOWN node stop counting as restorable in
        #: the same sim instant as the crash — there is no window where
        #: a volatile-only copy on a dead node looks usable just because
        #: the drop_volatile watcher has not run yet.
        self.node_liveness = None
        reg = get_registry(engine)
        self._m_writes = reg.counter(
            "ckpt.store.writes", help="checkpoint records stored")
        self._m_reads = reg.counter(
            "ckpt.store.reads", help="checkpoint records loaded")
        self._m_bytes = reg.counter(
            "ckpt.store.bytes_written", help="checkpoint bytes stored")
        self._m_volatile_lost = reg.counter(
            "ckpt.store.volatile_lost",
            help="diskless records whose last in-memory copy died")
        #: Sender-based message logs: (app_id, sender, dest) -> ascending
        #: [(ssn, entry)] — the logging protocols' replay source.  Like
        #: the checkpoint records, the log is part of idealized stable
        #: storage: it survives the sender's crash.
        self._msg_logs: Dict[Tuple[str, int, int],
                             List[Tuple[int, Tuple]]] = {}
        self._m_log_appends = reg.counter(
            "ckpt.store.log_appends", help="message-log entries appended")
        self._m_log_bytes = reg.counter(
            "ckpt.store.log_bytes", help="message-log payload bytes logged")

    @property
    def stats(self) -> Dict[str, int]:
        """Legacy counter view (read side of the registry instruments)."""
        return {"writes": int(self._m_writes.value),
                "reads": int(self._m_reads.value),
                "bytes_written": int(self._m_bytes.value)}

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _holder_live(self, node_id: str) -> bool:
        """Liveness of one holder under this store's probe (no probe =
        assume up, the idealized stable-storage default)."""
        return self.node_liveness is None or bool(self.node_liveness(node_id))

    def _register(self, key: Tuple[str, int, int],
                  record: CheckpointRecord) -> None:
        """Enter ``record`` in the repository and bind the liveness probe
        so ``record.holder_node`` never names a DOWN holder."""
        record._live = self._holder_live
        self._records[key] = record

    def write(self, node, record: CheckpointRecord,
              bandwidth: Optional[float] = None):
        """Process generator: dump ``record`` through ``node``'s disk."""
        yield from node.disk.write(record.nbytes, bandwidth=bandwidth)
        self._register((record.app_id, record.rank, record.version), record)
        self._m_writes.inc()
        self._m_bytes.inc(record.nbytes)

    def write_tier(self, record: CheckpointRecord, tier: str,
                   holder_node: str) -> None:
        """Register a copy of ``record`` in ``tier`` held on
        ``holder_node``.

        A second copy of the same snapshot (same key and ``taken_at``)
        adds a holder — redundancy by mirroring.  No IO is charged here:
        the caller pays the transfer/disk costs appropriate to the tier;
        registration itself is free at this granularity.
        """
        key = (record.app_id, record.rank, record.version)
        existing = self._records.get(key)
        if existing is not None and existing.taken_at == record.taken_at:
            # A mirror copy of the same snapshot: one more holder.
            existing.add_holder(tier, holder_node)
            return
        if tier == TIER_MEMORY:
            record.tier = TIER_MEMORY
        record.holders[tier] = [holder_node]
        self._register(key, record)
        self._m_writes.inc()
        self._m_bytes.inc(record.nbytes)

    def write_memory(self, record: CheckpointRecord,
                     holder_node: str) -> None:
        """Register a diskless (in-memory) copy held on ``holder_node``."""
        self.write_tier(record, TIER_MEMORY, holder_node)

    def drop_volatile(self, node_id: str) -> int:
        """A node crashed: the in-memory copies it held are gone.

        Strips the node from every record's memory-tier holder list and
        drops memory-home records whose LAST copy (across all tiers) it
        was.  Returns the number of records lost outright.
        """
        lost = 0
        for key, rec in list(self._records.items()):
            held = rec.holders.get(TIER_MEMORY)
            if held and node_id in held:
                held.remove(node_id)
                if rec.tier == TIER_MEMORY and not any(
                        rec.holders.get(t) for t in TIER_ORDER):
                    del self._records[key]
                    self._m_volatile_lost.inc()
                    lost += 1
        return lost

    def on_membership(self, node_id: str, event: str) -> None:
        """Membership upcall (``crash`` / ``recover`` / ``remove``).

        The base store only cares that a crashed node's RAM is gone;
        subclasses add repair and breach accounting.
        """
        if event == "crash":
            self.drop_volatile(node_id)

    def commit(self, app_id: str, version: int) -> None:
        """Mark a coordinated version as a recovery line."""
        self._committed.setdefault(app_id, []).append(version)

    # ------------------------------------------------------------------
    # sender-based message logs (logging protocols)
    # ------------------------------------------------------------------

    def log_append(self, app_id: str, sender: int, dest: int, ssn: int,
                   entry: Tuple, nbytes: int = 0) -> bool:
        """Append one sent message to the (sender → dest) channel log.

        ``ssn`` is the sender's per-channel sequence number; the log is
        append-only and strictly ascending.  Re-appending an ssn the log
        already covers is a no-op returning ``False`` — a restarted
        sender re-executing from its checkpoint re-sends with identical
        ssns, and those duplicates must cost neither log space nor IO.
        """
        log = self._msg_logs.setdefault((app_id, sender, dest), [])
        if log and log[-1][0] >= ssn:
            return False
        log.append((ssn, entry))
        self._m_log_appends.inc()
        self._m_log_bytes.inc(nbytes)
        return True

    def log_end(self, app_id: str, sender: int, dest: int) -> int:
        """Highest logged ssn on the (sender → dest) channel (0 = none)."""
        log = self._msg_logs.get((app_id, sender, dest))
        return log[-1][0] if log else 0

    def log_tail(self, app_id: str, sender: int, dest: int,
                 after_ssn: int = 0) -> List[Tuple[int, Tuple]]:
        """Logged ``(ssn, entry)`` pairs with ``ssn > after_ssn``."""
        log = self._msg_logs.get((app_id, sender, dest), [])
        return [(ssn, entry) for ssn, entry in log if ssn > after_ssn]

    def log_senders(self, app_id: str, dest: int) -> List[int]:
        """All ranks with a non-empty log toward ``dest``, ascending."""
        return sorted(s for (a, s, d) in self._msg_logs
                      if a == app_id and d == dest)

    def gc_committed(self, app_id: str, keep: int = 1) -> int:
        """Garbage-collect checkpoints superseded by committed lines.

        Keeps the last ``keep`` committed versions (and anything newer,
        e.g. in-flight uncommitted records); drops everything older.
        Returns the number of records removed.  Only meaningful for
        coordinated protocols — uncoordinated recovery lines may reach
        arbitrarily far back, so their stores are never GCed here.
        """
        committed = self._committed.get(app_id)
        if not committed or keep < 1:
            return 0
        if len(committed) <= keep:
            return 0
        floor = sorted(committed)[-keep]
        self._gc_floor[app_id] = max(floor, self._gc_floor.get(app_id, 0))
        # Read-pinned records are skipped: a concurrent restart may be
        # mid-read on an old version — collecting it would hand the
        # reader a NoCheckpoint for a record it already located.  The
        # pin's release sweeps them (same floor).
        victims = [k for k in self._records
                   if k[0] == app_id and k[2] < floor
                   and not self._pins.get(k)]
        for key in victims:
            del self._records[key]
        self._committed[app_id] = [v for v in committed if v >= floor]
        return len(victims)

    # ------------------------------------------------------------------
    # read pins (GC vs concurrent restart)
    # ------------------------------------------------------------------

    def _pin(self, key: Tuple[str, int, int]) -> None:
        self._pins[key] = self._pins.get(key, 0) + 1

    def _unpin(self, key: Tuple[str, int, int]) -> None:
        count = self._pins.get(key, 0) - 1
        if count > 0:
            self._pins[key] = count
            return
        self._pins.pop(key, None)
        # Finish any GC this pin deferred.
        floor = self._gc_floor.get(key[0])
        if floor is not None and key[2] < floor:
            self._records.pop(key, None)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def read(self, node, app_id: str, rank: int, version: int,
             bandwidth: Optional[float] = None):
        """Process generator: load a record at ``node``.

        Disk records charge the reader's disk; in-memory (diskless)
        records charge a fast-network fetch from the holder instead.
        """
        record = self.peek(app_id, rank, version)
        key = (app_id, rank, version)
        self._pin(key)
        try:
            if record.in_memory:
                from repro.calibration import BIP_BANDWIDTH, US
                yield self.engine.timeout(200 * US
                                          + record.nbytes / BIP_BANDWIDTH)
            else:
                yield from node.disk.read(record.nbytes,
                                          bandwidth=bandwidth)
            self._m_reads.inc()
            return record
        finally:
            self._unpin(key)

    def peek(self, app_id: str, rank: int, version: int) -> CheckpointRecord:
        """Metadata access without IO cost (no image restore)."""
        record = self._records.get((app_id, rank, version))
        if record is None:
            raise NoCheckpoint(f"no checkpoint (app={app_id}, rank={rank}, "
                               f"version={version})")
        return record

    def has(self, app_id: str, rank: int, version: int) -> bool:
        return (app_id, rank, version) in self._records

    def record_available(self, app_id: str, rank: int, version: int,
                         from_node: Optional[str] = None) -> bool:
        """Is this record actually usable for a restore *right now*?

        Disk records are (idealized global stable storage — the
        replicated store overrides this with real holder/partition
        checks).  In-memory records need a live holder: with the
        liveness probe wired, a copy whose holder is DOWN stops counting
        in the same instant the node does, independent of when the
        drop_volatile watcher fires.
        """
        record = self._records.get((app_id, rank, version))
        if record is None:
            return False
        if not record.in_memory:
            return True
        if self.node_liveness is None:
            return bool(record.holder_nodes)
        return any(self.node_liveness(h) for h in record.holder_nodes)

    def _holder_ok(self, node_id: str,
                   from_node: Optional[str] = None) -> bool:
        """Can ``from_node`` read a copy held on ``node_id``?  The base
        store has no partition model so this is pure liveness; the
        replicated store additionally requires fabric reachability."""
        return self._holder_live(node_id)

    def available_holders(self, record: CheckpointRecord,
                          from_node: Optional[str] = None) -> List[str]:
        """Usable holders of ``record``, fastest tier first, deduped."""
        out: List[str] = []
        for tier in TIER_ORDER:
            for h in record.holders.get(tier, ()):
                if h not in out and self._holder_ok(h, from_node):
                    out.append(h)
        return out

    def available_by_tier(self, record: CheckpointRecord,
                          from_node: Optional[str] = None
                          ) -> Dict[str, List[str]]:
        """Per-tier usable holders — the tier-by-tier fallback order a
        shrink-to-fit restore walks (and the CLI dumps)."""
        out: Dict[str, List[str]] = {}
        for tier in TIER_ORDER:
            held = [h for h in record.holders.get(tier, ())
                    if self._holder_ok(h, from_node)]
            if held:
                out[tier] = held
        return out

    def repair_tier(self, record: CheckpointRecord) -> str:
        """Which tier re-replication should top up for this record."""
        return record.tier

    def mirror_fanout(self) -> int:
        """Diskless in-memory copies per record.

        The idealized store double-mirrors (Plank-style diskless
        checkpointing's simple variant); the replicated store returns
        its configured ``k``.
        """
        return 2

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def iter_records(self, app_id: Optional[str] = None):
        """Iterate ``(key, record)`` pairs in key order — the public
        repository walk (repair, CLI dumps, invariant checkers)."""
        for key in sorted(self._records):
            if app_id is None or key[0] == app_id:
                yield key, self._records[key]

    def committed_versions(self, app_id: str) -> List[int]:
        return list(self._committed.get(app_id, []))

    def latest_restorable(self, app_id: str, ranks,
                          from_node: Optional[str] = None) -> Optional[int]:
        """Most recent committed version with every rank's record usable.

        For disk records this equals :meth:`latest_committed`; diskless
        records can have been wiped by the crash itself (their holders'
        memory), so recovery must fall back to an older intact line.
        ``from_node`` names the prospective reader — the replicated
        store only counts replicas reachable from its partition.
        """
        ranks = list(ranks)
        for version in sorted(self._committed.get(app_id, []),
                              reverse=True):
            if all(self.record_available(app_id, r, version,
                                         from_node=from_node)
                   for r in ranks):
                return version
        return None

    def latest_committed(self, app_id: str) -> Optional[int]:
        versions = self._committed.get(app_id)
        return versions[-1] if versions else None

    def versions_of(self, app_id: str, rank: int) -> List[int]:
        """All stored versions for one rank, ascending."""
        return sorted(v for (a, r, v) in self._records
                      if a == app_id and r == rank)

    def max_version(self, app_id: str) -> int:
        """Highest version stored by ANY rank (0 if none) — restarted
        coordinated protocols resume numbering above this."""
        versions = [v for (a, _r, v) in self._records if a == app_id]
        versions += self._committed.get(app_id, [])
        return max(versions, default=0)

    def records_of(self, app_id: str) -> List[CheckpointRecord]:
        return [rec for (a, _r, _v), rec in sorted(self._records.items())
                if a == app_id]

    def drop_app(self, app_id: str) -> None:
        """Garbage-collect all of an application's checkpoints."""
        for key in [k for k in self._records if k[0] == app_id]:
            del self._records[key]
        for key in [k for k in self._msg_logs if k[0] == app_id]:
            del self._msg_logs[key]
        self._committed.pop(app_id, None)

    def __repr__(self) -> str:
        return (f"<CheckpointStore {len(self._records)} records "
                f"{self.stats}>")
