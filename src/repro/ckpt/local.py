"""Local (single-process) checkpointers.

Two levels, as in the paper:

* **native** — dump the process image: the Starfish run-time inside the
  application process (632 KB — the daemon's state is *never* saved, which
  is why this constant is small, §5) plus the application heap laid out by
  :func:`repro.hetero.native_heap_nbytes`.  Fast path on homogeneous
  clusters; a native image only restores on an identical representation.
* **vm** — serialize through the portable VM encoding of
  :mod:`repro.hetero`: no VM image, compact payload (260 KB empty, 96 MB vs
  135 MB for the paper's large application), restorable on any Table 2
  machine with conversion charged at restore time.
"""

from __future__ import annotations

import copy
from typing import Any, Tuple

from repro.calibration import (HETERO_CONVERT_BANDWIDTH,
                               NATIVE_DISK_BANDWIDTH, NATIVE_EMPTY_IMAGE,
                               VM_DUMP_BANDWIDTH, VM_EMPTY_IMAGE)
from repro.cluster.arch import Architecture, arch_by_name
from repro.errors import CheckpointError
from repro.hetero import decode, encode, native_heap_nbytes


class LocalCheckpointer:
    """Interface: turn program state into a stored image and back."""

    level: str
    write_bandwidth: float

    def capture(self, state: Any, arch: Architecture) -> Tuple[Any, int]:
        """Returns ``(image, nbytes)`` — the stored form and its size."""
        raise NotImplementedError

    def restore(self, image: Any, nbytes: int,
                target: Architecture) -> Tuple[Any, float]:
        """Returns ``(state, extra_seconds)`` — extra time is the
        representation-conversion cost (zero when none is needed)."""
        raise NotImplementedError


class NativeCheckpointer(LocalCheckpointer):
    """Process-level core dump (homogeneous, Figure 3)."""

    level = "native"
    write_bandwidth = NATIVE_DISK_BANDWIDTH

    def capture(self, state: Any, arch: Architecture) -> Tuple[Any, int]:
        nbytes = NATIVE_EMPTY_IMAGE + native_heap_nbytes(state, arch)
        image = ("native-image", arch.name, copy.deepcopy(state))
        return image, nbytes

    def restore(self, image: Any, nbytes: int,
                target: Architecture) -> Tuple[Any, float]:
        kind, arch_name, state = image
        if kind != "native-image":
            raise CheckpointError(f"not a native image: {kind!r}")
        source = arch_by_name(arch_name)
        if not source.same_representation(target):
            raise CheckpointError(
                f"native checkpoint from {source} cannot restore on "
                f"{target}: use VM-level (heterogeneous) checkpointing")
        return copy.deepcopy(state), 0.0


class VmCheckpointer(LocalCheckpointer):
    """Virtual-machine-level portable checkpoint (heterogeneous, Fig. 4)."""

    level = "vm"
    write_bandwidth = VM_DUMP_BANDWIDTH

    def capture(self, state: Any, arch: Architecture) -> Tuple[Any, int]:
        blob = encode(state, arch)
        return blob, VM_EMPTY_IMAGE + len(blob)

    def restore(self, image: Any, nbytes: int,
                target: Architecture) -> Tuple[Any, float]:
        decoded = decode(image, target)
        extra = 0.0
        if decoded.converted:
            # Representation conversion touches the whole payload.
            extra = len(image) / HETERO_CONVERT_BANDWIDTH
        return decoded.value, extra


def make_checkpointer(level: str) -> LocalCheckpointer:
    """Factory: ``"native"`` or ``"vm"``."""
    if level == "native":
        return NativeCheckpointer()
    if level == "vm":
        return VmCheckpointer()
    raise CheckpointError(f"unknown checkpoint level {level!r}; "
                          "expected 'native' or 'vm'")
