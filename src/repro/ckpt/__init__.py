"""Checkpoint/restart framework (system S11).

The paper's signature capability: multiple distributed C/R protocols —
coordinated *and* uncoordinated — implemented over one architecture and
runnable side by side (even for the same application), with the local
checkpoint taken either at the native process level (homogeneous) or at the
virtual-machine level (heterogeneous, §4).

Contents:

* :mod:`repro.ckpt.storage` — stable-storage model: checkpoint records
  written through the per-node disk devices (the timing of Figures 3/4);
* :mod:`repro.ckpt.local` — the two local checkpointers: ``native``
  (process image: VM + heap, same-representation restore only) and ``vm``
  (portable encoding via :mod:`repro.hetero`, restores anywhere);
* :mod:`repro.ckpt.protocols` — the distributed protocols:
  **stop-and-sync** (the paper's measured protocol: stop, drain channels,
  dump, commit), **Chandy–Lamport** (non-blocking markers + channel
  recording), and **uncoordinated** (independent checkpoints + dependency
  tracking + optional receiver message logging);
* :mod:`repro.ckpt.recovery_line` — consistent-cut computation on the
  rollback-dependency graph, including domino-effect detection.
"""

from repro.ckpt.storage import CheckpointRecord, CheckpointStore
from repro.ckpt.local import (LocalCheckpointer, NativeCheckpointer,
                              VmCheckpointer, make_checkpointer)
from repro.ckpt.recovery_line import (DependencyGraph, RecoveryLine,
                                      compute_recovery_line)

__all__ = [
    "CheckpointRecord",
    "CheckpointStore",
    "DependencyGraph",
    "LocalCheckpointer",
    "NativeCheckpointer",
    "RecoveryLine",
    "VmCheckpointer",
    "compute_recovery_line",
    "make_checkpointer",
]
