"""Recovery lines on the rollback-dependency graph.

Used by the uncoordinated protocol: every process checkpoints independently,
so the set of checkpoints that together form a *consistent cut* (no orphan
messages — a message received before the cut must have been sent before the
cut) has to be computed at recovery time.  This is the classic rollback-
propagation calculation (Randell; Plank; the authors' own follow-up work
quantifies it), including its failure mode: the **domino effect**, where
dependencies force every process back to its initial state.

Model: process ``r`` lives through intervals ``0, 1, 2, ...``; taking its
``i``-th checkpoint ends interval ``i`` (so checkpoint index ``i`` captures
all intervals ``< i+1``... we adopt the convention that checkpoint ``i`` of
rank ``r`` begins interval ``i+1``, with interval 0 preceding any
checkpoint).  A received message creates the dependency: *if the sender
rolls back to before the sending interval, the receiver must roll back to
before the receiving interval.*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RecoveryLineError


@dataclass(frozen=True)
class MessageDep:
    """One recorded message: sent in ``send_interval`` of ``sender``,
    received in ``recv_interval`` of ``receiver``."""

    sender: int
    send_interval: int
    receiver: int
    recv_interval: int


@dataclass(frozen=True)
class RecoveryLine:
    """A consistent cut: rank -> checkpoint index (-1 = initial state)."""

    cut: Dict[int, int]
    discarded_intervals: int     # total rollback distance (work lost)

    def version_for(self, rank: int) -> int:
        return self.cut[rank]

    @property
    def is_initial(self) -> bool:
        return all(v < 0 for v in self.cut.values())


class DependencyGraph:
    """Accumulates checkpoints and message dependencies for one app."""

    def __init__(self, ranks: Iterable[int]):
        self.ranks = sorted(ranks)
        #: Number of checkpoints each rank has taken (index of next one).
        self.ckpt_count: Dict[int, int] = {r: 0 for r in self.ranks}
        self.deps: List[MessageDep] = []

    def current_interval(self, rank: int) -> int:
        """The interval ``rank`` is executing right now."""
        return self.ckpt_count[rank]

    def record_checkpoint(self, rank: int) -> int:
        """Rank took a checkpoint; returns its index."""
        idx = self.ckpt_count[rank]
        self.ckpt_count[rank] = idx + 1
        return idx

    def record_message(self, sender: int, send_interval: int,
                       receiver: int, recv_interval: int) -> None:
        self.deps.append(MessageDep(sender, send_interval,
                                    receiver, recv_interval))

    def snapshot(self) -> dict:
        """Serializable image (persisted with the checkpoint store)."""
        return {
            "ranks": list(self.ranks),
            "ckpt_count": dict(self.ckpt_count),
            "deps": [(d.sender, d.send_interval, d.receiver,
                      d.recv_interval) for d in self.deps],
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "DependencyGraph":
        g = cls(snap["ranks"])
        g.ckpt_count = dict(snap["ckpt_count"])
        g.deps = [MessageDep(*t) for t in snap["deps"]]
        return g


def compute_recovery_line(graph: DependencyGraph,
                          failed: Optional[Iterable[int]] = None,
                          allow_initial: bool = True) -> RecoveryLine:
    """Most recent consistent cut.

    ``failed`` ranks are forced back to their last *stored* checkpoint
    (they lost their volatile state); surviving ranks start from their
    current (live) interval, which counts as an implicit "checkpoint" of
    index ``ckpt_count[r] - 0`` — they only roll back if orphan messages
    force them to.

    Rollback propagation: cut ``x[r]`` (interval from which r resumes; a
    rank resuming from checkpoint ``i`` replays from interval ``i+1``...
    here ``x[r]`` is the number of checkpoints kept, i.e. resuming at the
    start of interval ``x[r]``).  A dependency (s, si) -> (r, ri) is
    violated when the sender rolled back to before the send
    (``x[s] <= si``) while the receiver kept the receive
    (``x[r] > ri``): the message becomes an orphan, so ``x[r] := ri``.
    Iterate to a fixpoint (monotone, hence terminating).

    Raises :class:`RecoveryLineError` if the cut collapses to the initial
    state and ``allow_initial`` is false.
    """
    failed = set(failed or ())
    # x[r]: the interval rank r resumes at (kept checkpoints count).
    x: Dict[int, int] = {}
    for r in graph.ranks:
        if r in failed:
            x[r] = graph.ckpt_count[r]          # resume from last stored ckpt
        else:
            x[r] = graph.current_interval(r) + 1  # keep live state

    changed = True
    while changed:
        changed = False
        for dep in graph.deps:
            if dep.receiver not in x:
                continue           # receiver departed: nothing to roll back
            if dep.sender not in x:
                # Departed/dynamic sender: it will never re-execute, so any
                # message received from it is unconditionally an orphan with
                # respect to the cut — the receiver must roll back to before
                # the receive, exactly as if the sender rolled to interval 0.
                if x[dep.receiver] > dep.recv_interval:
                    x[dep.receiver] = dep.recv_interval
                    changed = True
                continue
            if x[dep.sender] <= dep.send_interval and \
                    x[dep.receiver] > dep.recv_interval:
                x[dep.receiver] = dep.recv_interval
                changed = True

    cut = {r: x[r] - 1 for r in graph.ranks}     # checkpoint index per rank
    discarded = sum(graph.current_interval(r) + (0 if r in failed else 1)
                    - x[r] for r in graph.ranks)
    line = RecoveryLine(cut=cut, discarded_intervals=discarded)
    if line.is_initial and not allow_initial and graph.deps:
        raise RecoveryLineError(
            "domino effect: no consistent recovery line above the initial "
            "state")
    return line
