"""Native heap layout model — what a process-level core dump costs.

Figure 3's (homogeneous) checkpoint files are raw memory images: every
boxed value pays a header word and word alignment, and the dump includes
allocator slack (free lists, fragmentation, GC headroom) that the portable
VM-level encoder of Figure 4 does not carry.  The slack factor is calibrated
from the paper's own numbers: the same application checkpoints to 135 MB
natively but 96 MB portably (see ``calibration.VM_PAYLOAD_FACTOR``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.calibration import VM_PAYLOAD_FACTOR
from repro.cluster.arch import Architecture
from repro.errors import RepresentationError

#: Dump-size multiplier over the exact live-heap layout: allocator free
#: lists, fragmentation, and GC headroom included in a core dump.
ALLOCATOR_SLACK = 1.0 / VM_PAYLOAD_FACTOR


def _align(n: int, word: int) -> int:
    return (n + word - 1) // word * word


def _layout(v: Any, word: int) -> int:
    """Exact live-heap bytes of ``v`` under an OCaml-like layout."""
    if v is None or isinstance(v, bool):
        return word                        # immediate value in a field
    if isinstance(v, (int, np.integer)):
        iv = int(v)
        if -(1 << (word * 8 - 2)) <= iv < (1 << (word * 8 - 2)):
            return word                    # unboxed, fits word minus tag
        return word + _align(max(8, (iv.bit_length() + 8) // 8), word)
    if isinstance(v, (float, np.floating)):
        return word + 8                    # boxed double: header + payload
    if isinstance(v, str):
        return word + _align(len(v.encode("utf-8")) + 1, word)
    if isinstance(v, (bytes, bytearray)):
        return word + _align(len(v) + 1, word)
    if isinstance(v, (list, tuple)):
        return word + word * len(v) + sum(_layout(i, word) for i in v)
    if isinstance(v, dict):
        # Hash table: header + bucket array (~2x entries) + per-entry cells.
        inner = sum(_layout(k, word) + _layout(val, word)
                    for k, val in v.items())
        return word + 2 * word * max(1, len(v)) + 3 * word * len(v) + inner
    if isinstance(v, np.ndarray):
        return word + _align(int(v.nbytes), word)
    raise RepresentationError(
        f"cannot lay out {type(v).__name__!r} in the native heap model")


def native_heap_nbytes(value: Any, arch: Architecture) -> int:
    """Bytes ``value`` contributes to a native (core-dump) checkpoint."""
    exact = _layout(value, arch.word_bytes)
    return int(exact * ALLOCATOR_SLACK)
