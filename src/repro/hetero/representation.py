"""Portable VM-level checkpoint encoding.

A checkpoint blob is::

    magic "SFVM" | version u8 | endian u8 (0=little 1=big) | word_bits u8 |
    arch-name str | os str | value

where every multi-byte scalar after the three header bytes — including
string/collection lengths — is written in the **source** machine's byte
order, and ``value`` is a tagged recursive encoding of the state tree.
Integers that fit the source VM's unboxed width (``word_bits - 1``, one tag
bit) are stored as native words; wider ones are boxed (8-byte) or big
(arbitrary precision).  NumPy arrays are stored raw in source byte order.

Decoding converts to the target architecture:

* byte order is swapped where needed (cheap: only on restore, paper §4);
* an unboxed source integer that does not fit the target's unboxed width is
  transparently promoted to a boxed integer — or rejected with
  :class:`~repro.errors.WordSizeOverflow` in ``strict`` mode (the paper's
  OCaml VM refuses values a 31-bit int cannot hold).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.cluster.arch import Architecture
from repro.errors import RepresentationError, WordSizeOverflow

MAGIC = b"SFVM"
VERSION = 1

# Value tags.
T_NONE, T_FALSE, T_TRUE = 0, 1, 2
T_INT, T_BOXINT, T_BIGINT = 3, 4, 5
T_FLOAT = 6
T_STR, T_BYTES = 7, 8
T_LIST, T_TUPLE, T_DICT = 9, 10, 11
T_NDARRAY = 12

_DTYPES = {
    0: np.dtype(np.float64), 1: np.dtype(np.float32),
    2: np.dtype(np.int64), 3: np.dtype(np.int32),
    4: np.dtype(np.uint8), 5: np.dtype(np.bool_),
    6: np.dtype(np.complex128),
}
_DTYPE_CODES = {dt: code for code, dt in _DTYPES.items()}


@dataclass(frozen=True)
class CheckpointBlob:
    """A decoded checkpoint header + payload."""

    source_arch_name: str
    source_os: str
    endianness: str
    word_bits: int
    value: Any
    converted: bool       # True if any representation conversion happened


class _Encoder:
    def __init__(self, arch: Architecture):
        self.arch = arch
        self.bo = "<" if arch.endianness == "little" else ">"
        self.word_fmt = self.bo + ("q" if arch.word_bits == 64 else "i")
        self.parts: list = []

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack("B", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack(self.bo + "I", v))

    def raw(self, b: bytes) -> None:
        self.parts.append(b)

    def value(self, v: Any) -> None:
        if v is None:
            self.u8(T_NONE)
        elif v is True:
            self.u8(T_TRUE)
        elif v is False:
            self.u8(T_FALSE)
        elif isinstance(v, int):
            self._int(v)
        elif isinstance(v, float):
            self.u8(T_FLOAT)
            self.parts.append(struct.pack(self.bo + "d", v))
        elif isinstance(v, str):
            data = v.encode("utf-8")
            self.u8(T_STR)
            self.u32(len(data))
            self.raw(data)
        elif isinstance(v, (bytes, bytearray)):
            self.u8(T_BYTES)
            self.u32(len(v))
            self.raw(bytes(v))
        elif isinstance(v, list):
            self.u8(T_LIST)
            self.u32(len(v))
            for item in v:
                self.value(item)
        elif isinstance(v, tuple):
            self.u8(T_TUPLE)
            self.u32(len(v))
            for item in v:
                self.value(item)
        elif isinstance(v, dict):
            self.u8(T_DICT)
            self.u32(len(v))
            for k, val in v.items():
                self.value(k)
                self.value(val)
        elif isinstance(v, np.ndarray):
            self._ndarray(v)
        elif isinstance(v, (np.integer,)):
            self._int(int(v))
        elif isinstance(v, (np.floating,)):
            self.u8(T_FLOAT)
            self.parts.append(struct.pack(self.bo + "d", float(v)))
        else:
            raise RepresentationError(
                f"cannot encode {type(v).__name__!r} in a VM checkpoint; "
                "program state must be plain data (numbers, strings, "
                "containers, numpy arrays)")

    def _int(self, v: int) -> None:
        bits = self.arch.vm_int_bits
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if lo <= v <= hi:
            self.u8(T_INT)
            self.parts.append(struct.pack(self.word_fmt, v))
        elif -(1 << 63) <= v < (1 << 63):
            self.u8(T_BOXINT)
            self.parts.append(struct.pack(self.bo + "q", v))
        else:
            data = v.to_bytes((v.bit_length() + 8) // 8,
                              self.arch.endianness, signed=True)
            self.u8(T_BIGINT)
            self.u32(len(data))
            self.raw(data)

    def _ndarray(self, a: np.ndarray) -> None:
        dt = a.dtype.newbyteorder("=")
        code = _DTYPE_CODES.get(np.dtype(dt))
        if code is None:
            raise RepresentationError(f"unsupported array dtype {a.dtype}")
        self.u8(T_NDARRAY)
        self.u8(code)
        self.u8(a.ndim)
        for dim in a.shape:
            self.u32(dim)
        native = a.astype(dt.newbyteorder(self.bo), copy=False)
        self.raw(np.ascontiguousarray(native).tobytes())


def encode(value: Any, arch: Architecture) -> bytes:
    """Serialize ``value`` in ``arch``'s native representation."""
    enc = _Encoder(arch)
    enc.raw(MAGIC)
    enc.u8(VERSION)
    enc.u8(0 if arch.endianness == "little" else 1)
    enc.u8(arch.word_bits)
    for text in (arch.name, arch.os):
        data = text.encode("utf-8")
        enc.u8(len(data))
        enc.raw(data)
    enc.value(value)
    return b"".join(enc.parts)


def portable_nbytes(value: Any, arch: Architecture) -> int:
    """Size of the portable encoding of ``value`` on ``arch``."""
    return len(encode(value, arch))


class _Decoder:
    def __init__(self, data: bytes, target: Architecture, strict: bool):
        self.data = data
        self.pos = 0
        self.target = target
        self.strict = strict
        self.converted = False

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise RepresentationError("truncated checkpoint blob")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def header(self) -> Tuple[str, str, str, int]:
        if self.take(4) != MAGIC:
            raise RepresentationError("not a VM checkpoint (bad magic)")
        version = self.u8()
        if version != VERSION:
            raise RepresentationError(f"unsupported version {version}")
        endian = "little" if self.u8() == 0 else "big"
        word_bits = self.u8()
        if word_bits not in (32, 64):
            raise RepresentationError(f"bad word length {word_bits}")
        self.bo = "<" if endian == "little" else ">"
        self.src_endian = endian
        self.src_word_bits = word_bits
        self.word_fmt = self.bo + ("q" if word_bits == 64 else "i")
        self.word_len = word_bits // 8
        name = self.take(self.u8()).decode("utf-8")
        os_name = self.take(self.u8()).decode("utf-8")
        if (endian != self.target.endianness
                or word_bits != self.target.word_bits):
            self.converted = True
        return name, os_name, endian, word_bits

    def u32(self) -> int:
        return struct.unpack(self.bo + "I", self.take(4))[0]

    def value(self) -> Any:
        tag = self.u8()
        if tag == T_NONE:
            return None
        if tag == T_TRUE:
            return True
        if tag == T_FALSE:
            return False
        if tag == T_INT:
            v = struct.unpack(self.word_fmt, self.take(self.word_len))[0]
            return self._fit_int(v)
        if tag == T_BOXINT:
            return struct.unpack(self.bo + "q", self.take(8))[0]
        if tag == T_BIGINT:
            n = self.u32()
            return int.from_bytes(self.take(n), self.src_endian, signed=True)
        if tag == T_FLOAT:
            return struct.unpack(self.bo + "d", self.take(8))[0]
        if tag == T_STR:
            return self.take(self.u32()).decode("utf-8")
        if tag == T_BYTES:
            return self.take(self.u32())
        if tag == T_LIST:
            return [self.value() for _ in range(self.u32())]
        if tag == T_TUPLE:
            return tuple(self.value() for _ in range(self.u32()))
        if tag == T_DICT:
            n = self.u32()
            out = {}
            for _ in range(n):
                k = self.value()
                out[k] = self.value()
            return out
        if tag == T_NDARRAY:
            return self._ndarray()
        raise RepresentationError(f"unknown value tag {tag}")

    def _fit_int(self, v: int) -> int:
        bits = self.target.vm_int_bits
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if lo <= v <= hi:
            return v
        # A 63-bit unboxed int landing on a 32-bit machine.
        if self.strict:
            raise WordSizeOverflow(
                f"{v} does not fit an unboxed {bits}-bit VM integer on "
                f"{self.target.name}")
        self.converted = True  # promoted to a boxed integer
        return v

    def _ndarray(self) -> np.ndarray:
        code = self.u8()
        dt = _DTYPES.get(code)
        if dt is None:
            raise RepresentationError(f"unknown array dtype code {code}")
        ndim = self.u8()
        shape = tuple(self.u32() for _ in range(ndim))
        src_dt = dt.newbyteorder(self.bo)
        count = 1
        for dim in shape:
            count *= dim
        raw = self.take(count * dt.itemsize)
        arr = np.frombuffer(raw, dtype=src_dt).reshape(shape)
        # Convert to the target's native order (the restore-time cost).
        return np.ascontiguousarray(arr.astype(dt.newbyteorder("="),
                                               copy=False))


def decode(data: bytes, target: Architecture,
           strict: bool = False) -> CheckpointBlob:
    """Decode a checkpoint blob on ``target``, converting representation.

    ``strict=True`` refuses unboxed integers that do not fit the target VM
    word (instead of promoting them to boxed integers).
    """
    dec = _Decoder(data, target, strict)
    name, os_name, endian, word_bits = dec.header()
    value = dec.value()
    if dec.pos != len(data):
        raise RepresentationError(
            f"{len(data) - dec.pos} trailing bytes in checkpoint blob")
    return CheckpointBlob(source_arch_name=name, source_os=os_name,
                          endianness=endian, word_bits=word_bits,
                          value=value, converted=dec.converted)
