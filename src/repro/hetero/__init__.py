"""Heterogeneous checkpointing support (system S12, paper §4).

The paper checkpoints pure-OCaml programs at the *virtual machine* level so
a computation can move between the six machine types of Table 2 (mixed
endianness, mixed 32/64-bit word length).  Its key performance trick: data
is saved in the **source machine's native representation** with "a concise
indication of what that representation is", and conversion happens only on
restart — and only if the target machine actually differs.

This package implements that design for the state containers of
:class:`~repro.core.program.StarfishProgram`:

* :mod:`repro.hetero.representation` — a real binary format whose
  multi-byte scalars, lengths, and array payloads are written in the source
  architecture's byte order, with unboxed integers sized to the source VM
  word (31/63-bit, one tag bit, as in OCaml); the decoder byte-swaps and
  re-boxes as needed for the target architecture.
* :mod:`repro.hetero.layout` — the *native heap layout* model: how many
  bytes the same state occupies in a process-level (homogeneous) core dump,
  which is what Figure 3's checkpoint sizes are made of.
"""

from repro.hetero.representation import (CheckpointBlob, decode, encode,
                                         portable_nbytes)
from repro.hetero.layout import native_heap_nbytes

__all__ = [
    "CheckpointBlob",
    "decode",
    "encode",
    "native_heap_nbytes",
    "portable_nbytes",
]
