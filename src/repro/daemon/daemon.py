"""The Starfish daemon.

One instance per node.  See the package docstring for the architecture;
implementation notes:

* **Replicated state** (cluster config, application registry) mutates only
  through totally-ordered main-group casts, so every daemon's replica stays
  identical and any daemon can serve any client or coordinate any recovery.
* **Deterministic reactions** to view changes (fault policies that need no
  new decisions — killing local ranks of a doomed app) are applied locally
  at every daemon: virtual synchrony guarantees they all act on the same
  event sequence.  Reactions that *choose* something (replacement nodes for
  a restart) are made by one daemon — the app's restart coordinator — and
  broadcast.
* **Application processes** are opaque handles created by a
  ``process_factory`` (provided by :mod:`repro.core.runtime`), so this
  package has no dependency on the program runtime above it.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.calibration import SPAWN_COST
from repro.ckpt import CheckpointStore
from repro.daemon.protocol import (MGMT_COMMANDS, USER_COMMANDS,
                                   format_response, parse_command,
                                   parse_submit_options)
from repro.daemon.registry import AppRecord, AppStatus, Registry
from repro.errors import (AuthenticationError, DaemonError, Interrupt,
                          PlacementError, ProtocolError, UnknownApplication)
from repro.gcs import CastEvent, GcsConfig, GroupMember, ViewEvent
from repro.gcs.endpoint import EndpointId
from repro.lwg import LwgCast, LwgManager, LwgView
from repro.net.conn import Listener
from repro.obs.registry import get_registry

CTL_PORT = "starfish-ctl"

#: Default accounts: {user: (password, is_admin)}.
DEFAULT_USERS = {"admin": ("adminpw", True), "alice": ("alicepw", False),
                 "bob": ("bobpw", False)}


class StarfishDaemon:
    """One node's daemon."""

    def __init__(self, engine, node, cluster, store: CheckpointStore,
                 process_factory: Callable, program_registry: Dict[str, Any],
                 gcs_config: Optional[GcsConfig] = None,
                 users: Optional[Dict[str, Tuple[str, bool]]] = None,
                 node_provisioner: Optional[Callable[[str], Any]] = None):
        self.engine = engine
        self.node = node
        self.cluster = cluster
        self.store = store
        self.process_factory = process_factory
        self.program_registry = program_registry
        self.node_provisioner = node_provisioner
        self.users = dict(users or DEFAULT_USERS)

        self.gm = GroupMember(engine, node, config=gcs_config,
                              state_provider=self._state_blob)
        self.lwg = LwgManager(engine, self.gm)
        self.registry = Registry()
        self.config: Dict[str, str] = {}
        self.disabled_nodes: Set[str] = set()
        #: Local application process handles: (app_id, rank) -> handle.
        self.handles: Dict[Tuple[str, int], Any] = {}
        #: Finished ranks' handles: their C/R modules stay alive (peers may
        #: still checkpoint with them) until the whole application ends.
        self._lingering: Dict[str, List[Any]] = {}
        self._listener: Optional[Listener] = None
        self._procs: List = []
        self._lwg_pumps: Set[str] = set()
        self._submit_seq = itertools.count(1)
        self.log: List[Tuple[float, str]] = []
        # Daemon telemetry, one series per (node, kind) / (node) / (app).
        self._registry = get_registry(engine)
        self._m_local: Dict[str, Any] = {}
        self._m_restarts: Dict[str, Any] = {}
        self._m_ranks_restarted: Dict[str, Any] = {}
        self._m_ranks_migrated: Dict[str, Any] = {}
        self._m_view_changes = self._registry.counter(
            "daemon.view_changes", node=node.node_id,
            help="main-group view changes handled")
        self._m_view_changes.reset()
        # Structured counterparts of the heartbeat/membership log lines:
        # FleetView and `repro metrics` read these instead of parsing
        # ``_log`` output.
        self._m_members_joined = self._registry.counter(
            "daemon.membership.joined", node=node.node_id,
            help="members that joined main-group views seen here")
        self._m_members_left = self._registry.counter(
            "daemon.membership.left", node=node.node_id,
            help="members that left main-group views seen here")
        self._m_hb_sent = self._registry.counter(
            "daemon.heartbeat.sent", node=node.node_id,
            help="fleet heartbeat payloads produced by this daemon")
        self._m_hb_ranks = self._registry.gauge(
            "daemon.heartbeat.ranks", node=node.node_id,
            help="primary ranks hosted, per the last heartbeat")
        self._m_hb_copies = self._registry.gauge(
            "daemon.heartbeat.copies", node=node.node_id,
            help="replica copies hosted, per the last heartbeat")
        self._m_hb_apps = self._registry.gauge(
            "daemon.heartbeat.apps", node=node.node_id,
            help="applications with local processes, per the last heartbeat")
        self._m_hb_store_bytes = self._registry.gauge(
            "daemon.heartbeat.store_bytes", node=node.node_id,
            help="checkpoint-store bytes held, per the last heartbeat")
        for inst in (self._m_members_joined, self._m_members_left,
                     self._m_hb_sent, self._m_hb_ranks, self._m_hb_copies,
                     self._m_hb_apps, self._m_hb_store_bytes):
            inst.reset()   # fresh daemon instance on this node
        self._absorbed = False
        #: App ids submitted here whose replicated record is still in
        #: flight (duplicate-submission guard).
        self._pending_submits: Set[str] = set()

    @property
    def local_msgs(self) -> Dict[str, int]:
        """Local daemon<->application-process messages by Table 1 kind
        (read side of ``daemon.local_msgs{node,kind}``)."""
        return {k: int(m.value) for k, m in self._m_local.items()
                if m.value}

    def _count_local(self, kind: str, n: int = 1) -> None:
        counter = self._m_local.get(kind)
        if counter is None:
            counter = self._registry.counter(
                "daemon.local_msgs", node=self.node.node_id, kind=kind,
                help="daemon<->local-process messages by Table 1 kind")
            counter.reset()   # fresh daemon instance on this node
            self._m_local[kind] = counter
        counter.inc(n)

    def _count_restart(self, app_id: str) -> None:
        counter = self._m_restarts.get(app_id)
        if counter is None:
            counter = self._registry.counter(
                "daemon.restarts", app=app_id,
                help="rollback restarts coordinated for this application")
            self._m_restarts[app_id] = counter
        counter.inc()
        self._registry.events.emit(
            self.engine.now, "daemon.restart", node=self.node.node_id,
            app=app_id)

    def _count_ranks_restarted(self, app_id: str, n: int) -> None:
        """Ranks this daemon respawned for a restart (the cluster-wide
        series is the sum: each daemon only counts its local spawns)."""
        if not n:
            return
        counter = self._m_ranks_restarted.get(app_id)
        if counter is None:
            counter = self._registry.counter(
                "daemon.ranks_restarted", app=app_id,
                help="application ranks respawned by failure restarts")
            self._m_ranks_restarted[app_id] = counter
        counter.inc(n)

    def _count_respawns(self, app_id: str, n: int, cause: str) -> None:
        """Migration-driven respawns land on ``daemon.ranks_migrated``,
        not ``daemon.ranks_restarted``: the latter measures recovery work
        paid to *failures* only, so a proactively-migrated app can prove
        it never paid one (the fleet's ``ranks_restarted == 0`` gate)."""
        if cause != "migration":
            self._count_ranks_restarted(app_id, n)
            return
        if not n:
            return
        counter = self._m_ranks_migrated.get(app_id)
        if counter is None:
            counter = self._registry.counter(
                "daemon.ranks_migrated", app=app_id,
                help="application ranks respawned by requested migrations")
            self._m_ranks_migrated[app_id] = counter
        counter.inc(n)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, contact: Optional[EndpointId] = None) -> None:
        self.gm.start(contact=contact)
        self._listener = Listener(self.engine,
                                  self.node.nic("tcp-ethernet"), CTL_PORT)
        self._procs = [
            self.node.spawn(self._main(), name=f"dmn:{self.node.node_id}"),
            self.node.spawn(self._accept_loop(),
                            name=f"dmn-accept:{self.node.node_id}"),
        ]

    @property
    def endpoint(self) -> EndpointId:
        return self.gm.endpoint

    def _log(self, msg: str) -> None:
        self.log.append((self.engine.now, msg))

    def _state_blob(self) -> dict:
        """State transfer for daemons joining the Starfish group."""
        return {
            "config": dict(self.config),
            "disabled": sorted(self.disabled_nodes),
            "apps": [self._record_blob(r) for r in self.registry.all()],
            "lwg": self.lwg.snapshot(),
        }

    @staticmethod
    def _record_blob(r: AppRecord) -> dict:
        blob = {
            "app_id": r.app_id, "owner": r.owner, "nprocs": r.nprocs,
            "program": r.program, "params": dict(r.params),
            "ft_policy": r.ft_policy, "ckpt_protocol": r.ckpt_protocol,
            "ckpt_level": r.ckpt_level, "ckpt_interval": r.ckpt_interval,
            "transport": r.transport, "polling": r.polling,
            "placement": dict(r.placement), "status": r.status.value,
            "results": dict(r.results), "done_ranks": list(r.done_ranks),
            "restarts": r.restarts, "world_version": r.world_version,
        }
        if r.replicas:
            # Only under active replication: absent otherwise, so blobs
            # (and everything derived from them) stay byte-stable.
            blob["replicas"] = {rank: list(backups)
                                for rank, backups in r.replicas.items()}
        return blob

    @staticmethod
    def _record_from_blob(b: dict) -> AppRecord:
        rec = AppRecord(
            app_id=b["app_id"], owner=b["owner"], nprocs=b["nprocs"],
            program=b["program"], params=dict(b["params"]),
            ft_policy=b["ft_policy"], ckpt_protocol=b["ckpt_protocol"],
            ckpt_level=b["ckpt_level"], ckpt_interval=b["ckpt_interval"],
            transport=b["transport"], polling=b["polling"],
            placement=dict(b["placement"]),
            status=AppStatus(b["status"]))
        rec.results = dict(b["results"])
        rec.done_ranks = list(b["done_ranks"])
        rec.restarts = b["restarts"]
        rec.world_version = b["world_version"]
        rec.replicas = {int(rank): tuple(backups)
                        for rank, backups in b.get("replicas", {}).items()}
        return rec

    # ------------------------------------------------------------------
    # main event loop (Starfish group upcalls)
    # ------------------------------------------------------------------

    def _main(self):
        try:
            while True:
                ev = yield self.gm.events.get()
                consumed = self.lwg.on_main_event(ev)
                if isinstance(ev, ViewEvent):
                    if ev.state is not None and not self._absorbed:
                        # Joining the Starfish group: adopt the replicated
                        # cluster state from the coordinator's transfer.
                        self._absorb_state(ev.state)
                    self._absorbed = True
                    yield from self._on_main_view(ev)
                elif not consumed and isinstance(ev, CastEvent):
                    result = self._apply_op(ev.payload, ev.source)
                    if result is not None and hasattr(result, "__next__"):
                        yield from result
        except Interrupt:
            return
        except Exception:
            return  # node crashed under us

    # ------------------------------------------------------------------
    # replicated operations
    # ------------------------------------------------------------------

    def _apply_op(self, payload, source):
        if not isinstance(payload, tuple) or not payload:
            return None
        op = payload[0]
        handler = getattr(self, "_op_" + op.replace("-", "_"), None)
        if handler is None:
            return None
        return handler(payload, source)

    # -- configuration ---------------------------------------------------

    def _op_cfg_set(self, payload, source):
        _, key, value = payload
        self.config[key] = value

    def _op_node_admin(self, payload, source):
        _, action, node_id = payload
        if action == "disable":
            self.disabled_nodes.add(node_id)
        else:
            self.disabled_nodes.discard(node_id)
        if node_id == self.node.node_id:
            try:
                if action == "disable" and self.node.is_up:
                    self.node.disable()
                elif action == "enable":
                    self.node.enable()
            except Exception:
                pass

    # -- application lifecycle ---------------------------------------------

    def _op_app_submit(self, payload, source):
        _, blob = payload
        record = self._record_from_blob(blob)
        self.registry.add(record)
        self._pending_submits.discard(record.app_id)
        self._log(f"submit {record.app_id} x{record.nprocs} "
                  f"-> {record.placement}")
        yield from self._spawn_local_ranks(record, restore=None)

    def _op_app_restart(self, payload, source):
        # Failure restarts cast 5-tuples (byte-stable with older runs);
        # migrations append a cause so respawns are attributed correctly.
        _, app_id, placement, restore, world_version = payload[:5]
        cause = payload[5] if len(payload) > 5 else "failure"
        record = self.registry.maybe(app_id)
        if record is None or record.finished:
            return
        mode = restore.get("mode") if restore else None
        record.placement = dict(placement)
        record.world_version = world_version
        record.restarts += 1
        self._count_restart(app_id)
        record.status = AppStatus.RUNNING
        if mode == "failover":
            # Active replication: a surviving copy of each lost rank is
            # promoted to primary *in place*.  Nothing respawns, survivors
            # never stopped, and ``daemon.ranks_restarted`` stays absent
            # — that is the mode's whole point.
            record.replicas = {int(r): tuple(backups) for r, backups
                               in restore["replicas"].items()}
            for rank, node_id in sorted(restore["promote"].items()):
                if node_id != self.node.node_id:
                    continue
                handle = self.handles.get((app_id, rank))
                if handle is None:
                    # The copy may have finished already (rank-done moved
                    # it to lingering); promoting it re-reports the result.
                    for h in self._lingering.get(app_id, ()):
                        if getattr(h, "rank", None) == rank:
                            handle = h
                            break
                if handle is not None and hasattr(handle, "promote"):
                    handle.promote()
            return
        solo = mode == "log-replay"
        if solo:
            # Log-based recovery (planner.solo): only the crashed ranks
            # restart — survivors, and their "done" bookkeeping, are
            # untouched.  The world version did not bump.
            lost = set(restore["ranks"])
            record.done_ranks = [r for r in record.done_ranks
                                 if r not in lost]
            for rank in sorted(lost):
                self._kill_rank(app_id, rank, "solo restart")
            mine = [r for r in record.ranks_on(self.node.node_id)
                    if r in lost]
            self._count_respawns(app_id, len(mine), cause)
            yield from self._spawn_local_ranks(record, restore=restore,
                                               only_ranks=lost)
            return
        # The rollback re-executes every rank from the recovery line, so
        # "done" bookkeeping from the rolled-back execution is void.
        record.done_ranks = []
        # Kill any local survivors: coordinated rollback restarts everyone.
        self._kill_local(app_id, "rollback")
        self._count_respawns(
            app_id, len(record.ranks_on(self.node.node_id)), cause)
        yield from self._spawn_local_ranks(record, restore=restore)

    def _op_app_grow(self, payload, source):
        _, app_id, new_placement, world_version = payload
        record = self.registry.maybe(app_id)
        if record is None or record.finished:
            return
        record.placement.update(new_placement)
        record.nprocs = len(record.placement)
        record.world_version = world_version
        yield from self._spawn_local_ranks(
            record, restore=None, only_ranks=set(new_placement))
        # Tell running processes about the grown world.
        self._notify_world(record)

    def _op_app_rank_done(self, payload, source):
        _, app_id, rank, result = payload
        record = self.registry.maybe(app_id)
        if record is None:
            return
        if rank not in record.done_ranks:
            record.done_ranks.append(rank)
        record.results[rank] = result
        handle = self.handles.pop((app_id, rank), None)
        if handle is not None:
            self._lingering.setdefault(app_id, []).append(handle)
        if set(record.done_ranks) >= set(record.placement) and \
                not record.finished:
            record.status = AppStatus.DONE
            self._log(f"app {app_id} done")
            for lingering in self._lingering.pop(app_id, []):
                lingering.kill("application complete")
            if self._is_app_authority(record):
                self.lwg.destroy(app_id)

    def _op_app_rank_failed(self, payload, source):
        _, app_id, rank, reason = payload
        record = self.registry.maybe(app_id)
        if record is None or record.finished:
            return
        record.status = AppStatus.FAILED
        self._log(f"app {app_id} rank {rank} failed: {reason}")
        self._kill_local(app_id, f"rank {rank} failed: {reason}")

    def _op_app_migrate(self, payload, source):
        """Process migration via C/R (paper §3.2.1): move one rank to a
        chosen node by rolling the application back to its last recovery
        line with an updated placement.  Initiated by one daemon (total
        order dedups), applied everywhere through the normal restart op.
        """
        _, app_id, rank, target_node = payload
        record = self.registry.maybe(app_id)
        if record is None or record.finished or rank not in record.placement:
            return
        if record.placement.get(rank) == target_node:
            return
        if record.replicas:
            # Active replication has no recovery line to migrate from,
            # and moving one copy would co-locate or orphan its siblings.
            self._log(f"migrate {app_id} refused: replicated apps "
                      "do not migrate")
            return
        # One daemon decides (deterministic): the app's restart authority.
        planner = self._planner_for(record)
        solo = planner is not None and planner.solo
        alive_nodes = {m.node for m in self.gm.view.members} \
            if self.gm.view else set()
        if not self._is_restart_coordinator(record, alive_nodes):
            record.status = AppStatus.RESTARTING
            if solo:
                self._kill_rank(app_id, rank, "migration")
            else:
                self._kill_local(app_id, "migration rollback")
            return
        restore = planner.plan(self, record, [rank]) \
            if planner is not None else None
        record.status = AppStatus.RESTARTING
        if solo:
            self._kill_rank(app_id, rank, "migration")
        else:
            self._kill_local(app_id, "migration rollback")
        placement = dict(record.placement)
        placement[rank] = target_node
        new_nodes = set(placement.values())
        old_members = set(self.lwg.members(app_id))
        for node_id in sorted(new_nodes):
            ep = self.gm.view.member_on(node_id)
            if ep is not None and ep not in old_members:
                self.lwg.join(app_id, ep)
        for ep in sorted(old_members):
            if ep.node not in new_nodes:
                self.lwg.leave(app_id, ep)
        self.gm.cast(("app-restart", app_id, placement, restore,
                      record.world_version + (0 if solo else 1),
                      "migration"))
        self._log(f"migrate {app_id} rank {rank} -> {target_node} "
                  f"(from {restore})")

    def _op_app_cmd(self, payload, source):
        _, app_id, cmd = payload
        record = self.registry.maybe(app_id)
        if record is None:
            return
        if cmd == "kill":
            if not record.finished:
                record.status = AppStatus.KILLED
            self._kill_local(app_id, "killed")
        elif cmd == "suspend":
            record.status = AppStatus.SUSPENDED
            for (aid, _r), handle in self.handles.items():
                if aid == app_id:
                    handle.suspend()
        elif cmd == "resume":
            record.status = AppStatus.RUNNING
            for (aid, _r), handle in self.handles.items():
                if aid == app_id:
                    handle.resume()
        elif cmd == "checkpoint":
            for (aid, rank), handle in self.handles.items():
                if aid == app_id and rank == min(record.placement):
                    handle.request_user_checkpoint()
        elif cmd == "delete":
            if not record.finished:
                record.status = AppStatus.KILLED
            self._kill_local(app_id, "deleted")
            self.registry.remove(app_id)
            self.store.drop_app(app_id)

    def _kill_local(self, app_id: str, reason: str) -> None:
        for (aid, rank), handle in list(self.handles.items()):
            if aid == app_id:
                handle.kill(reason)
                del self.handles[(aid, rank)]
        for handle in self._lingering.pop(app_id, []):
            handle.kill(reason)

    def _kill_rank(self, app_id: str, rank: int, reason: str) -> None:
        """Kill one local rank (solo restarts leave its peers running)."""
        handle = self.handles.pop((app_id, rank), None)
        if handle is not None:
            handle.kill(reason)

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------

    def _spawn_local_ranks(self, record: AppRecord, restore,
                           only_ranks: Optional[Set[int]] = None):
        mine = [(r, 0) for r in record.ranks_on(self.node.node_id)
                if only_ranks is None or r in only_ranks]
        # Backup copies under active replication: same rank, same program,
        # copy index >= 1.  A node hosts at most one copy of a given rank
        # (placement excludes co-location), so the handle key stays
        # (app_id, rank).
        mine += [(r, i) for (r, i) in record.copies_on(self.node.node_id)
                 if only_ranks is None or r in only_ranks]
        if not mine:
            return
        self._ensure_lwg_pump(record.app_id)
        for rank, copy in mine:
            yield self.engine.timeout(SPAWN_COST)
            if copy:
                handle = self.process_factory(self, record, rank, restore,
                                              replica=copy)
            else:
                handle = self.process_factory(self, record, rank, restore)
            self.handles[(record.app_id, rank)] = handle
            handle.start()
            # Initialization configuration messages (Table 1).
            handle.deliver_config("app.params", dict(record.params))
            handle.deliver_config("app.transport", record.transport)
            self._count_local("configuration", 2)
            self.node.spawn(self._watch(record.app_id, rank, handle),
                            name=f"watch:{record.app_id}:{rank}")

    def _watch(self, app_id: str, rank: int, handle):
        try:
            outcome = yield handle.done
        except Exception:
            return
        kind, value = outcome
        current = self.handles.get((app_id, rank))
        if current is not handle:
            return  # superseded by a restart
        if getattr(handle, "replica", 0):
            # A backup copy's outcome is not the rank's: only the primary
            # reports.  If this copy is promoted after finishing, its
            # promote() re-reports the result it is holding.
            return
        if kind == "ok":
            self.gm.cast(("app-rank-done", app_id, rank, value))
        elif kind == "error":
            self.gm.cast(("app-rank-failed", app_id, rank, repr(value)))
        # kind == "killed": deliberate; nothing to report.

    # ------------------------------------------------------------------
    # lightweight-group plumbing (C/R + coordination message relay)
    # ------------------------------------------------------------------

    def _ensure_lwg_pump(self, app_id: str) -> None:
        if app_id in self._lwg_pumps:
            return
        self._lwg_pumps.add(app_id)
        ch = self.lwg.subscribe(app_id)
        self.node.spawn(self._lwg_pump(app_id, ch),
                        name=f"lwgpump:{app_id}@{self.node.node_id}")

    def _lwg_pump(self, app_id: str, ch):
        from repro.calibration import LOCAL_TCP_HOP
        try:
            while True:
                ev = yield ch.get()
                if isinstance(ev, (LwgCast,)):
                    # Daemon -> application process local TCP hop.
                    yield self.engine.timeout(LOCAL_TCP_HOP)
                if isinstance(ev, LwgCast):
                    tag = ev.payload[0]
                    if tag == "cr":
                        _, src_rank, inner = ev.payload
                        for handle in self._app_handles(app_id):
                            handle.deliver_cr(inner, src_rank)
                    elif tag == "coord":
                        _, src_rank, inner = ev.payload
                        for handle in self._app_handles(app_id):
                            handle.deliver_coordination(inner, src_rank)
                elif isinstance(ev, LwgView):
                    record = self.registry.maybe(app_id)
                    if record is not None:
                        self._notify_world(record)
        except Interrupt:
            return
        except Exception:
            return

    def _app_handles(self, app_id: str):
        """Local handles of an app, including finished (lingering) ranks —
        those still participate in checkpoint protocols."""
        out = [h for (aid, _r), h in list(self.handles.items())
               if aid == app_id]
        out.extend(self._lingering.get(app_id, ()))
        return out

    def _notify_world(self, record: AppRecord) -> None:
        """Push the app's current placement/world to local processes."""
        alive_nodes = {m.node for m in
                       self.lwg.members(record.app_id)} or \
            set(record.placement.values())
        world = sorted(r for r, n in record.placement.items()
                       if n in alive_nodes)
        for (aid, _r), handle in list(self.handles.items()):
            if aid == record.app_id:
                self._count_local("lightweight membership")
                handle.deliver_membership(tuple(world), record.world_version,
                                          dict(record.placement))

    # -- services used by application-process handles -------------------------

    def cr_cast(self, app_id: str, src_rank: int, payload) -> None:
        """C/R message relay (Table 1: through daemons, lightweight group).

        The application process reaches its daemon over the local TCP
        connection first (one :data:`~repro.calibration.LOCAL_TCP_HOP`).
        """
        self._after_local_hop(
            lambda: self.lwg.cast(app_id, ("cr", src_rank, payload),
                                  kind="checkpoint/restart"))

    def coord_cast(self, app_id: str, src_rank: int, payload) -> None:
        self._after_local_hop(
            lambda: self.lwg.cast(app_id, ("coord", src_rank, payload),
                                  kind="coordination"))

    def _after_local_hop(self, action) -> None:
        from repro.calibration import LOCAL_TCP_HOP
        ev = self.engine.timeout(LOCAL_TCP_HOP)
        ev.callbacks.append(lambda _e: action())

    def request_spawn(self, app_id: str, nprocs: int) -> None:
        """MPI-2 dynamic process management entry point."""
        record = self.registry.get(app_id)
        new_ranks = {}
        next_rank = max(record.placement) + 1
        targets = self._pick_nodes(nprocs)
        for i, node_id in enumerate(targets):
            new_ranks[next_rank + i] = node_id
        for node_id in sorted(set(targets)):
            ep = self.gm.view.member_on(node_id) if self.gm.view else None
            if ep is not None and ep not in self.lwg.members(app_id):
                self.lwg.join(app_id, ep)
        self.gm.cast(("app-grow", app_id, new_ranks,
                      record.world_version + 1))

    # ------------------------------------------------------------------
    # fault handling (main view changes)
    # ------------------------------------------------------------------

    def _on_main_view(self, ev: ViewEvent):
        self._m_view_changes.inc()
        if ev.joined:
            self._m_members_joined.inc(len(ev.joined))
        if ev.left:
            self._m_members_left.inc(len(ev.left))
        if not ev.left:
            return
        dead_nodes = {m.node for m in ev.left}
        alive_nodes = {m.node for m in ev.view.members}
        for record in self.registry.active():
            if record.replicas:
                # Deterministic at every daemon: forget backup copies the
                # dead nodes were hosting.  This never removes a lost
                # rank's failover candidates — those are on alive nodes —
                # and crashed backups are simply not re-replicated (no
                # re-replication service; see the replication module).
                pruned = {r: tuple(n for n in backups
                                   if n not in dead_nodes)
                          for r, backups in record.replicas.items()}
                record.replicas = {r: b for r, b in pruned.items() if b}
            lost = [r for r, n in record.placement.items()
                    if n in dead_nodes]
            if not lost:
                continue
            yield from self._handle_app_failure(record, lost, ev,
                                                alive_nodes)

    def _handle_app_failure(self, record: AppRecord, lost: List[int],
                            ev: ViewEvent, alive_nodes: Set[str]):
        policy = record.ft_policy
        self._log(f"app {record.app_id} lost ranks {lost} (policy {policy})")
        if policy == "kill":
            # Deterministic at every daemon: mark and kill local ranks.
            record.status = AppStatus.FAILED
            self._kill_local(record.app_id, "node failure (kill policy)")
            return
        if policy == "view-notify":
            # The lightweight group already shrank; the registry forgets
            # the dead ranks and processes learn their new dense world.
            for r in lost:
                record.placement.pop(r, None)
            record.world_version += 1
            self._notify_world(record)
            return
        if policy == "restart":
            planner = self._planner_for(record)
            record.status = AppStatus.RESTARTING
            if planner is None or not planner.solo:
                # Rollback recovery restarts everyone; log-based (solo)
                # recovery leaves the survivors computing.
                self._kill_local(record.app_id, "rollback on failure")
            if self._is_restart_coordinator(record, alive_nodes):
                yield from self._coordinate_restart(record, lost,
                                                    alive_nodes)
            return

    def _is_app_authority(self, record: AppRecord) -> bool:
        members = self.lwg.members(record.app_id)
        return bool(members) and min(members) == self.endpoint

    def _is_restart_coordinator(self, record: AppRecord,
                                alive_nodes: Set[str]) -> bool:
        hosts = [n for n in record.placement.values() if n in alive_nodes]
        if hosts:
            candidates = [m for m in self.gm.view.members
                          if m.node in hosts]
        else:
            candidates = list(self.gm.view.members)
        return bool(candidates) and min(candidates) == self.endpoint

    def _planner_for(self, record: AppRecord):
        """The restart-planner role of the app's C/R protocol (or None
        when the app checkpoints nothing)."""
        from repro.ckpt.protocols import PROTOCOLS
        cls = PROTOCOLS.get(record.ckpt_protocol)
        return None if cls is None else cls.planner()

    def _coordinate_restart(self, record: AppRecord, lost: List[int],
                            alive_nodes: Set[str]):
        app_id = record.app_id
        # Where does the computation resume from?  The protocol's restart
        # planner decides (latest committed line, dependency rollback, or
        # solo log replay); reachability caveats — diskless copies held on
        # the crashed node are gone, and under a replicated store versions
        # whose replicas are unreachable from this coordinator's partition
        # don't count — live inside the planners.
        planner = self._planner_for(record)
        restore = planner.plan(self, record, lost) \
            if planner is not None else None
        if restore is not None and restore.get("mode") == "failover":
            # Active replication: promote a surviving copy of each lost
            # rank.  No replacement nodes to pick, no respawns, and no
            # world-version bump — the world never changed size.
            placement = dict(record.placement)
            placement.update(restore["promote"])
            needed = set(placement.values())
            for backups in restore["replicas"].values():
                needed.update(backups)
            old_members = set(self.lwg.members(app_id))
            for node_id in sorted(needed):
                ep = self.gm.view.member_on(node_id)
                if ep is not None and ep not in old_members:
                    self.lwg.join(app_id, ep)
            for ep in sorted(old_members):
                if ep.node not in needed or ep not in self.gm.view.members:
                    self.lwg.leave(app_id, ep)
            self.gm.cast(("app-restart", app_id, placement, restore,
                          record.world_version))
            self._log(f"failover {app_id}: promote {restore['promote']}")
            return
        solo = bool(restore) and restore.get("mode") == "log-replay"
        # Fresh placement for the dead ranks.  Native-level checkpoints can
        # only restore on the same data representation (paper §4), so the
        # placement rule constrains replacements to matching machines.
        placement = dict(record.placement)
        for rank in sorted(lost):
            require_repr = None
            if restore is not None and record.ckpt_level == "native":
                version = (restore.get("version")
                           if restore["mode"] == "coordinated"
                           else restore["line"].get(rank))
                if version is not None and version >= 0 \
                        and self.store.has(app_id, rank, version):
                    from repro.cluster.arch import arch_by_name
                    require_repr = arch_by_name(
                        self.store.peek(app_id, rank, version).arch_name)
            placement[rank] = self._pick_nodes(
                1, require_repr=require_repr)[0]
        # Fix the lightweight group membership before respawning.
        old_members = set(self.lwg.members(app_id))
        new_nodes = set(placement.values())
        for backups in record.replicas.values():
            # k-exhausted replication fallback: the (pruned) backup hosts
            # respawn their copies too, so they stay group members.
            new_nodes.update(backups)
        for node_id in sorted(new_nodes):
            ep = self.gm.view.member_on(node_id)
            if ep is not None and ep not in old_members:
                self.lwg.join(app_id, ep)
        for ep in sorted(old_members):
            if ep.node not in new_nodes or ep not in self.gm.view.members:
                self.lwg.leave(app_id, ep)
        self.gm.cast(("app-restart", app_id, placement, restore,
                      record.world_version + (0 if solo else 1)))
        self._log(f"restart {app_id} from {restore} on {placement}")
        return
        yield  # pragma: no cover — keeps this a generator like its callers

    def _pick_nodes(self, count: int, exclude: Optional[Set[str]] = None,
                    require_repr=None) -> List[str]:
        """Least-loaded schedulable nodes (round-robin on ties).

        ``require_repr``: restrict to machines with this data
        representation (native-checkpoint restart rule).
        """
        exclude = exclude or set()
        candidates = []
        if self.gm.view is None:
            raise PlacementError("daemon has no view of the cluster")
        load: Dict[str, int] = {}
        for rec in self.registry.active():
            for node_id in rec.placement.values():
                load[node_id] = load.get(node_id, 0) + 1
        for member in self.gm.view.members:
            node_id = member.node
            if node_id in exclude or node_id in self.disabled_nodes:
                continue
            if require_repr is not None:
                node = self.cluster.nodes.get(node_id)
                if node is None or \
                        not node.arch.same_representation(require_repr):
                    continue
            candidates.append((load.get(node_id, 0), node_id))
        if not candidates:
            raise PlacementError("no schedulable nodes")
        candidates.sort()
        out = []
        i = 0
        while len(out) < count:
            out.append(candidates[i % len(candidates)][1])
            i += 1
        return out

    def _absorb_state(self, blob: dict) -> None:
        self.config = dict(blob.get("config", {}))
        self.disabled_nodes = set(blob.get("disabled", ()))
        for app_blob in blob.get("apps", ()):
            self.registry.add(self._record_from_blob(app_blob))
        self.lwg.absorb(blob.get("lwg", {}))

    # ------------------------------------------------------------------
    # submission (programmatic entry; the ASCII SUBMIT uses this too)
    # ------------------------------------------------------------------

    def submit(self, app_id: str, program, nprocs: int, owner: str = "local",
               params: Optional[dict] = None, ft_policy: str = "kill",
               ckpt_protocol: Optional[str] = None, ckpt_level: str = "vm",
               ckpt_interval: Optional[float] = None,
               transport: str = "bip-myrinet", polling: bool = True,
               placement: Optional[Dict[int, str]] = None,
               replicas: int = 1) -> str:
        """Submit an application; returns its app id.

        ``replicas``: copies per rank under active replication (protocol
        ``"replication"``): 1 primary + ``replicas - 1`` backups, each on
        a distinct node chosen by the ring placement policy.
        """
        if app_id in self.registry or app_id in self._pending_submits:
            raise DaemonError(f"duplicate app id {app_id!r}")
        if nprocs < 1:
            raise DaemonError("nprocs must be >= 1")
        self._pending_submits.add(app_id)
        if placement is None:
            nodes = self._pick_nodes(nprocs)
            placement = {rank: nodes[rank] for rank in range(nprocs)}
        record = AppRecord(
            app_id=app_id, owner=owner, nprocs=nprocs, program=program,
            params=dict(params or {}), ft_policy=ft_policy,
            ckpt_protocol=ckpt_protocol, ckpt_level=ckpt_level,
            ckpt_interval=ckpt_interval, transport=transport,
            polling=polling, placement=placement)
        if replicas > 1:
            record.replicas = self._place_replicas(app_id, placement,
                                                   replicas)
        # Create the lightweight group, then announce the app (sender FIFO
        # keeps this order at every daemon).
        hosting = set(placement.values())
        for backups in record.replicas.values():
            hosting.update(backups)
        members = []
        for node_id in sorted(hosting):
            ep = self.gm.view.member_on(node_id) if self.gm.view else None
            if ep is None:
                raise PlacementError(f"no daemon on node {node_id!r}")
            members.append(ep)
        self.lwg.create(app_id, members)
        self.gm.cast(("app-submit", self._record_blob(record)))
        return app_id

    def _place_replicas(self, app_id: str, placement: Dict[int, str],
                        replicas: int) -> Dict[int, Tuple[str, ...]]:
        """Backup-copy placement (active replication): ``replicas - 1``
        nodes per rank via the store's ring policy, never the primary's
        node — co-located copies would die together, defeating the mode.
        """
        from repro.store.placement import make_placement
        if self.gm.view is None:
            raise PlacementError("daemon has no view of the cluster")
        policy = make_placement("ring")
        schedulable = sorted(m.node for m in self.gm.view.members
                             if m.node not in self.disabled_nodes)
        out: Dict[int, Tuple[str, ...]] = {}
        for rank in sorted(placement):
            primary = placement[rank]
            candidates = [n for n in schedulable if n != primary]
            backups = policy.replicas((app_id, rank, 0), primary,
                                      candidates, replicas)
            if len(backups) < replicas - 1:
                raise PlacementError(
                    f"cannot place {replicas} distinct copies of rank "
                    f"{rank}: only {1 + len(backups)} schedulable nodes")
            out[rank] = tuple(backups)
        return out

    # ------------------------------------------------------------------
    # fleet heartbeat (load/liveness payload for repro.fleet.FleetView)
    # ------------------------------------------------------------------

    def heartbeat(self) -> Dict[str, Any]:
        """One fleet heartbeat: this node's liveness + load payload.

        The same numbers are published as ``daemon.heartbeat.*``
        instruments, so :class:`repro.fleet.FleetView` and the ``repro
        metrics`` CLI read identical values — nothing parses ``_log``
        output.
        """
        nid = self.node.node_id
        ranks = copies = 0
        apps: List[str] = []
        for rec in self.registry.active():
            mine = len(rec.ranks_on(nid))
            held = len(rec.copies_on(nid))
            ranks += mine
            copies += held
            if mine or held:
                apps.append(rec.app_id)
        store_bytes = self._store_bytes_held()
        self._m_hb_sent.inc()
        self._m_hb_ranks.set(ranks)
        self._m_hb_copies.set(copies)
        self._m_hb_apps.set(len(apps))
        self._m_hb_store_bytes.set(store_bytes)
        return {"node": nid, "time": self.engine.now,
                "epoch": self.gm.view.epoch if self.gm.view else -1,
                "ranks": ranks, "copies": copies, "apps": apps,
                "store_bytes": store_bytes}

    def _store_bytes_held(self) -> int:
        """Checkpoint-store bytes whose replicas live on this node."""
        nid = self.node.node_id
        total = 0
        for _key, record in self.store.iter_records():
            if nid in record.all_holders():
                total += record.nbytes
        return total

    # ------------------------------------------------------------------
    # client sessions (ASCII protocol)
    # ------------------------------------------------------------------

    def _accept_loop(self):
        try:
            while True:
                conn = yield self._listener.accept()
                self.node.spawn(self._session(conn),
                                name=f"session:{self.node.node_id}")
        except Interrupt:
            return
        except Exception:
            return

    def _session(self, conn):
        user: Optional[str] = None
        is_admin = False
        try:
            while True:
                line = yield conn.recv()
                try:
                    verb, args = parse_command(line)
                except ProtocolError as exc:
                    yield from conn.send(format_response(False, exc))
                    continue
                if verb == "QUIT":
                    yield from conn.send(format_response(True, "bye"))
                    yield from conn.close()
                    return
                if verb == "LOGIN":
                    name, password, kind = args
                    cred = self.users.get(name)
                    if cred is None or cred[0] != password:
                        yield from conn.send(format_response(
                            False, "authentication failed"))
                        continue
                    if kind.upper() == "MGMT" and not cred[1]:
                        yield from conn.send(format_response(
                            False, "not an administrator"))
                        continue
                    user, is_admin = name, kind.upper() == "MGMT"
                    yield from conn.send(format_response(
                        True, "management session" if is_admin
                        else "user session"))
                    continue
                if user is None:
                    yield from conn.send(format_response(
                        False, "login required"))
                    continue
                if verb in MGMT_COMMANDS and not is_admin:
                    yield from conn.send(format_response(
                        False, "management command needs a MGMT session"))
                    continue
                try:
                    reply = yield from self._execute(verb, args, user,
                                                     is_admin)
                except (DaemonError, ProtocolError) as exc:
                    reply = format_response(False, exc)
                yield from conn.send(reply)
        except Exception:
            return  # client vanished / node down

    def _execute(self, verb: str, args: List[str], user: str,
                 is_admin: bool):
        """Process generator: run one authenticated command."""
        if verb == "SET":
            self.gm.cast(("cfg-set", args[0], args[1]))
            return format_response(True)
        if verb == "GET":
            if args[0] not in self.config:
                return format_response(False, f"no such key {args[0]}")
            return format_response(True, self.config[args[0]])
        if verb == "NODES":
            view = self.gm.view
            parts = []
            for m in sorted(view.members) if view else []:
                state = "disabled" if m.node in self.disabled_nodes else "up"
                parts.append(f"{m.node}:{state}")
            return format_response(True, *parts)
        if verb == "APPS":
            parts = [f"{r.app_id}:{r.status.value}"
                     for r in self.registry.all()]
            return format_response(True, *parts)
        if verb == "DISABLE":
            self.gm.cast(("node-admin", "disable", args[0]))
            return format_response(True)
        if verb == "ENABLE":
            self.gm.cast(("node-admin", "enable", args[0]))
            return format_response(True)
        if verb == "ADDNODE":
            if self.node_provisioner is None:
                return format_response(False, "no node provisioner")
            self.node_provisioner(args[0])
            return format_response(True, f"node {args[0]} provisioning")
        if verb == "REMOVENODE":
            self.gm.cast(("node-admin", "disable", args[0]))
            if args[0] in self.cluster.nodes:
                self.cluster.remove_node(args[0])
            return format_response(True)
        # -- user commands --
        if verb == "SUBMIT":
            app_id, nprocs = args[0], int(args[1])
            opts = parse_submit_options(args[2:])
            program_name = opts.pop("program", None)
            program = self.program_registry.get(program_name)
            if program is None:
                return format_response(
                    False, f"unknown program {program_name!r}; known: "
                    f"{sorted(self.program_registry)}")
            params = {k[6:]: _auto(v) for k, v in opts.items()
                      if k.startswith("param.")}
            self.submit(
                app_id, program, nprocs, owner=user, params=params,
                ft_policy=opts.get("ft", "kill"),
                ckpt_protocol=opts.get("ckpt") or None,
                ckpt_level=opts.get("level", "vm"),
                ckpt_interval=(float(opts["interval"])
                               if "interval" in opts else None),
                transport=opts.get("transport", "bip-myrinet"))
            return format_response(True, app_id)
        record = self.registry.maybe(args[0])
        if record is None:
            return format_response(False, f"unknown application {args[0]}")
        if not is_admin and record.owner != user:
            return format_response(
                False, f"{args[0]} belongs to {record.owner}")
        if verb == "STATUS":
            return format_response(True, record.status.value,
                                   f"done={len(record.done_ranks)}"
                                   f"/{len(record.placement)}",
                                   f"restarts={record.restarts}")
        if verb == "RESULT":
            if record.status is not AppStatus.DONE:
                return format_response(False,
                                       f"not finished ({record.status.value})")
            return format_response(True, repr(
                [record.results.get(r) for r in sorted(record.results)]))
        if verb == "MIGRATE":
            if not args[1].isdigit():
                return format_response(False, "rank must be a number")
            rank, target = int(args[1]), args[2]
            if rank not in record.placement:
                return format_response(False, f"no rank {rank}")
            if target not in self.cluster.nodes:
                return format_response(False, f"unknown node {target}")
            self.gm.cast(("app-migrate", args[0], rank, target))
            return format_response(
                True, f"migrating rank {rank} to {target} via the last "
                "recovery line")
        if verb in ("SUSPEND", "RESUME", "DELETE", "CHECKPOINT"):
            self.gm.cast(("app-cmd", args[0], verb.lower()))
            return format_response(True)
        return format_response(False, f"unhandled command {verb}")
        yield  # pragma: no cover — generator for uniform calling


def _auto(value: str):
    """Best-effort typed parse of an option value."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            pass
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    return value
