"""The Starfish daemon (systems S6 and S7).

One daemon runs on every cluster node.  All daemons form the *Starfish
group* (an Ensemble-style process group, :mod:`repro.gcs`); per-application
*lightweight groups* (:mod:`repro.lwg`) span the daemons hosting that
application's processes.  The daemon:

* spawns application processes and tracks their health;
* maintains the replicated cluster configuration and application registry
  (all mutations ride the main group's total order);
* relays coordination and checkpoint/restart messages between application
  processes through the lightweight groups (Table 1);
* enforces per-application fault-tolerance policies when nodes fail
  (KILL / VIEW_NOTIFY / RESTART — paper §3.2.2);
* serves the ASCII management/user client protocol (paper §3.1.1) on a TCP
  listener — any daemon can serve any client.
"""

from repro.daemon.registry import AppRecord, AppStatus, Registry
from repro.daemon.daemon import StarfishDaemon
from repro.daemon.client import Client
from repro.daemon.protocol import format_response, parse_command

__all__ = [
    "AppRecord",
    "AppStatus",
    "Client",
    "Registry",
    "StarfishDaemon",
    "format_response",
    "parse_command",
]
