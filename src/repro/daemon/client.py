"""Client-side helper for the ASCII management/user protocol.

A :class:`Client` models the paper's remote administrator or user (or its
Java GUI, which speaks the same textual protocol underneath): it opens a
TCP connection to *any* daemon and issues commands.  Cluster state changes
made through one daemon propagate to all others via the Starfish group.

Hardening: :meth:`connect` and :meth:`command` take deadlines and raise
:class:`~repro.errors.RequestTimeout` instead of hanging on a dead or
partitioned daemon; :meth:`request` adds retry with exponential backoff
and automatic reconnection on top (a timed-out connection is torn down —
its reply stream can no longer be trusted).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.daemon.daemon import CTL_PORT
from repro.errors import (AuthenticationError, NetworkError, ProtocolError,
                          RequestTimeout)
from repro.net.conn import Connection


class Client:
    """One client session (management or user)."""

    def __init__(self, engine, node, daemon_node_id: str):
        self.engine = engine
        self.node = node
        self.daemon_node_id = daemon_node_id
        self.conn: Optional[Connection] = None
        self.transcript: List[Tuple[str, str]] = []
        self._login: Optional[Tuple[str, str, bool]] = None

    # -- plumbing -----------------------------------------------------------

    def connect(self, timeout: Optional[float] = None,
                attempts: int = 1, backoff: float = 0.05):
        """Process generator: open the control connection.

        ``timeout`` bounds each attempt (``None`` = wait forever);
        ``attempts`` > 1 retries with exponential ``backoff`` between
        tries, raising the last :class:`~repro.errors.RequestTimeout` when
        all attempts are spent."""
        for attempt in range(max(1, attempts)):
            try:
                self.conn = yield from Connection.connect(
                    self.engine, self.node.nic("tcp-ethernet"),
                    self.daemon_node_id, CTL_PORT, timeout=timeout)
                return self
            except RequestTimeout:
                if attempt == max(1, attempts) - 1:
                    raise
                yield self.engine.timeout(backoff * (2 ** attempt))

    def command(self, line: str, timeout: Optional[float] = None):
        """Process generator: send one command line; returns the reply.

        With a ``timeout``, a missing reply raises
        :class:`~repro.errors.RequestTimeout` and ABORTS the connection:
        the late reply would otherwise be mistaken for the answer to the
        next command."""
        if self.conn is None:
            raise ProtocolError("client not connected")
        yield from self.conn.send(line, size=len(line) + 8)
        if timeout is None:
            reply = yield self.conn.recv()
        else:
            answer = self.conn.recv()
            yield answer | self.engine.timeout(timeout)
            if not answer.triggered:
                self.conn.abort()
                self.conn = None
                raise RequestTimeout(
                    f"no reply to {line.split()[0]!r} from "
                    f"{self.daemon_node_id} within {timeout}s")
            reply = answer.value
        self.transcript.append((line, reply))
        return reply

    def request(self, line: str, timeout: float = 1.0, attempts: int = 3,
                backoff: float = 0.1):
        """Process generator: :meth:`command` with retry + reconnect.

        Safe for idempotent commands (the management protocol's queries
        and state-setting commands are).  Re-logs-in after a reconnect if
        :meth:`login` succeeded earlier on this session."""
        last: Exception = RequestTimeout(f"request {line!r} never attempted")
        for attempt in range(max(1, attempts)):
            try:
                if self.conn is None or self.conn.closed:
                    yield from self.connect(timeout=timeout)
                    if self._login is not None:
                        user, password, mgmt = self._login
                        yield from self.login(user, password, mgmt=mgmt)
                return (yield from self.command(line, timeout=timeout))
            except (RequestTimeout, NetworkError) as exc:
                last = exc
                if self.conn is not None:
                    self.conn.abort()
                    self.conn = None
                if attempt < max(1, attempts) - 1:
                    yield self.engine.timeout(backoff * (2 ** attempt))
        raise last

    def must(self, line: str, timeout: Optional[float] = None):
        """Process generator: run a command, asserting an OK reply."""
        reply = yield from self.command(line, timeout=timeout)
        if not reply.startswith("OK"):
            raise ProtocolError(f"{line!r} failed: {reply}")
        return reply

    # -- conveniences ----------------------------------------------------------

    def login(self, user: str, password: str, mgmt: bool = False):
        kind = "MGMT" if mgmt else "USER"
        reply = yield from self.command(f"LOGIN {user} {password} {kind}")
        if not reply.startswith("OK"):
            raise AuthenticationError(reply)
        self._login = (user, password, mgmt)
        return reply

    def close(self):
        if self.conn is not None:
            yield from self.command("QUIT")
            yield from self.conn.close()
            self.conn = None
