"""Client-side helper for the ASCII management/user protocol.

A :class:`Client` models the paper's remote administrator or user (or its
Java GUI, which speaks the same textual protocol underneath): it opens a
TCP connection to *any* daemon and issues commands.  Cluster state changes
made through one daemon propagate to all others via the Starfish group.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.daemon.daemon import CTL_PORT
from repro.errors import AuthenticationError, ProtocolError
from repro.net.conn import Connection


class Client:
    """One client session (management or user)."""

    def __init__(self, engine, node, daemon_node_id: str):
        self.engine = engine
        self.node = node
        self.daemon_node_id = daemon_node_id
        self.conn: Optional[Connection] = None
        self.transcript: List[Tuple[str, str]] = []

    # -- plumbing -----------------------------------------------------------

    def connect(self):
        """Process generator: open the control connection."""
        self.conn = yield from Connection.connect(
            self.engine, self.node.nic("tcp-ethernet"),
            self.daemon_node_id, CTL_PORT)
        return self

    def command(self, line: str):
        """Process generator: send one command line; returns the reply."""
        if self.conn is None:
            raise ProtocolError("client not connected")
        yield from self.conn.send(line, size=len(line) + 8)
        reply = yield self.conn.recv()
        self.transcript.append((line, reply))
        return reply

    def must(self, line: str):
        """Process generator: run a command, asserting an OK reply."""
        reply = yield from self.command(line)
        if not reply.startswith("OK"):
            raise ProtocolError(f"{line!r} failed: {reply}")
        return reply

    # -- conveniences ----------------------------------------------------------

    def login(self, user: str, password: str, mgmt: bool = False):
        kind = "MGMT" if mgmt else "USER"
        reply = yield from self.command(f"LOGIN {user} {password} {kind}")
        if not reply.startswith("OK"):
            raise AuthenticationError(reply)
        return reply

    def close(self):
        if self.conn is not None:
            yield from self.command("QUIT")
            yield from self.conn.close()
            self.conn = None
