"""Replicated application registry.

Every daemon holds an identical replica (all mutations are applied from
totally-ordered main-group casts), so any daemon can answer any client's
queries and any daemon can take over an application's recovery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import UnknownApplication


class AppStatus(enum.Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"
    RESTARTING = "restarting"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


@dataclass
class AppRecord:
    """One application as every daemon sees it."""

    app_id: str
    owner: str
    nprocs: int
    program: Any                   # opaque to the daemon (a program class)
    params: Dict[str, Any]
    ft_policy: str                 # "kill" | "view-notify" | "restart"
    ckpt_protocol: Optional[str]   # None | stop-and-sync | chandy-lamport |
    #                                uncoordinated
    ckpt_level: str                # "native" | "vm"
    ckpt_interval: Optional[float]
    transport: str
    polling: bool
    placement: Dict[int, str]      # world rank -> node id
    status: AppStatus = AppStatus.RUNNING
    #: Results reported by finished ranks.
    results: Dict[int, Any] = field(default_factory=dict)
    #: Ranks that have finished.
    done_ranks: List[int] = field(default_factory=list)
    restarts: int = 0
    world_version: int = 0
    #: Active replication (protocol "replication"): backup copies per
    #: rank — ``{rank: (node_id, ...)}``, never including the rank's
    #: primary (that stays in ``placement``).  Empty for every other
    #: protocol, and then absent from the record blob so replication
    #: cannot perturb the determinism goldens.
    replicas: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    def ranks_on(self, node_id: str) -> List[int]:
        return sorted(r for r, n in self.placement.items() if n == node_id)

    def copies_on(self, node_id: str) -> List[Tuple[int, int]]:
        """Backup copies hosted on ``node_id`` as ``(rank, copy_index)``
        pairs (copy_index >= 1; the primary is copy 0 via ``ranks_on``)."""
        out = []
        for rank in sorted(self.replicas):
            for i, nid in enumerate(self.replicas[rank]):
                if nid == node_id:
                    out.append((rank, i + 1))
        return out

    def nodes(self) -> List[str]:
        return sorted(set(self.placement.values()))

    @property
    def finished(self) -> bool:
        return self.status in (AppStatus.DONE, AppStatus.FAILED,
                               AppStatus.KILLED)


class Registry:
    """The per-daemon replica of all application records."""

    def __init__(self):
        self._apps: Dict[str, AppRecord] = {}

    def add(self, record: AppRecord) -> None:
        self._apps[record.app_id] = record

    def get(self, app_id: str) -> AppRecord:
        rec = self._apps.get(app_id)
        if rec is None:
            raise UnknownApplication(f"unknown application {app_id!r}")
        return rec

    def maybe(self, app_id: str) -> Optional[AppRecord]:
        return self._apps.get(app_id)

    def remove(self, app_id: str) -> None:
        self._apps.pop(app_id, None)

    def all(self) -> List[AppRecord]:
        return [self._apps[k] for k in sorted(self._apps)]

    def active(self) -> List[AppRecord]:
        return [r for r in self.all() if not r.finished]

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._apps

    def __len__(self) -> int:
        return len(self._apps)
