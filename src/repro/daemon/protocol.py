"""The ASCII client protocol (paper §3.1.1).

Line-oriented, telnet-able in spirit: a session starts with a LOGIN that
both authenticates and declares the session type (management or user), and
each subsequent command gets an ``OK``/``ERR`` response.  Management
sessions control the cluster; user sessions control (only their own)
applications.

Commands::

    LOGIN <user> <password> MGMT|USER
    # management
    ADDNODE <node-id>          REMOVENODE <node-id>
    DISABLE <node-id>          ENABLE <node-id>
    SET <key> <value>          GET <key>
    NODES                      APPS
    # user
    SUBMIT <app-id> <nprocs> [key=value ...]
    STATUS <app-id>            RESULT <app-id>
    SUSPEND <app-id>           RESUME <app-id>
    DELETE <app-id>
    CHECKPOINT <app-id>
    MIGRATE <app-id> <rank> <node-id>
    QUIT
"""

from __future__ import annotations

import shlex
from typing import Any, Dict, List, Tuple

from repro.errors import ProtocolError

MGMT_COMMANDS = {"ADDNODE", "REMOVENODE", "DISABLE", "ENABLE", "SET", "GET",
                 "NODES", "APPS"}
USER_COMMANDS = {"SUBMIT", "STATUS", "RESULT", "SUSPEND", "RESUME", "DELETE",
                 "CHECKPOINT", "MIGRATE"}
COMMON_COMMANDS = {"LOGIN", "QUIT"}

_ARITY = {
    "LOGIN": 3, "ADDNODE": 1, "REMOVENODE": 1, "DISABLE": 1, "ENABLE": 1,
    "SET": 2, "GET": 1, "NODES": 0, "APPS": 0, "STATUS": 1, "RESULT": 1,
    "SUSPEND": 1, "RESUME": 1, "DELETE": 1, "CHECKPOINT": 1, "QUIT": 0,
    "MIGRATE": 3,
}


def parse_command(line: str) -> Tuple[str, List[str]]:
    """Parse one protocol line into ``(verb, args)``."""
    if not isinstance(line, str) or not line.strip():
        raise ProtocolError("empty command line")
    try:
        parts = shlex.split(line)
    except ValueError as exc:
        raise ProtocolError(f"unparseable command: {exc}") from None
    verb = parts[0].upper()
    args = parts[1:]
    known = MGMT_COMMANDS | USER_COMMANDS | COMMON_COMMANDS
    if verb not in known:
        raise ProtocolError(f"unknown command {verb!r}")
    if verb == "SUBMIT":
        if len(args) < 2:
            raise ProtocolError("SUBMIT needs <app-id> <nprocs> [k=v ...]")
        if not args[1].isdigit():
            raise ProtocolError(f"SUBMIT nprocs must be a number, "
                                f"got {args[1]!r}")
    else:
        want = _ARITY[verb]
        if len(args) != want:
            raise ProtocolError(f"{verb} takes {want} argument(s), "
                                f"got {len(args)}")
    return verb, args


def parse_submit_options(args: List[str]) -> Dict[str, str]:
    """``key=value`` trailing options of SUBMIT."""
    opts: Dict[str, str] = {}
    for item in args:
        if "=" not in item:
            raise ProtocolError(f"bad SUBMIT option {item!r} (want k=v)")
        key, value = item.split("=", 1)
        opts[key] = value
    return opts


def format_response(ok: bool, *fields: Any) -> str:
    """One response line: ``OK ...`` or ``ERR ...``."""
    head = "OK" if ok else "ERR"
    if not fields:
        return head
    return head + " " + " ".join(str(f) for f in fields)
