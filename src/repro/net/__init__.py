"""Network substrate (system S3).

Models the two interconnects of the paper's testbed:

* **TCP/IP over switched Ethernet** — per-message cost dominated by
  syscalls and the kernel protocol stack (``calibration.TCP_LAYERS``);
* **BIP over Myrinet** — a user-level network interface that bypasses the
  kernel (``calibration.BIP_LAYERS``).

A :class:`~repro.net.fabric.Fabric` is one interconnect; every node attaches
a :class:`~repro.net.nic.Nic` per fabric.  Frames are delivered in order and
without loss by default; the fabric supports fault injection (loss,
partitions, detaching crashed nodes), and
:class:`~repro.net.conn.Connection` provides a reliable, in-order,
TCP-socket-like byte/message stream with ARQ that survives configured frame
loss (used for client↔daemon and daemon↔application links).
"""

from repro.net.message import Frame
from repro.net.fabric import Fabric, TransportSpec, BIP_MYRINET, TCP_ETHERNET
from repro.net.nic import Nic
from repro.net.conn import Connection, Listener

__all__ = [
    "BIP_MYRINET",
    "Connection",
    "Fabric",
    "Frame",
    "Listener",
    "Nic",
    "TCP_ETHERNET",
    "TransportSpec",
]
