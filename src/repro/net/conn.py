"""Reliable, in-order, connection-oriented messaging (simulated TCP).

Starfish uses plain TCP connections for everything that is *not* on the
fast data path: client↔daemon management/user sessions, the transport
underneath Ensemble, and the local daemon↔application-process link.  This
module provides that abstraction:

* :class:`Listener` — accepts connections on a well-known port;
* :class:`Connection` — an ARQ-protected (sequence numbers, cumulative
  acks, retransmission) in-order message stream that survives the fabric's
  configured frame loss and transient partitions;
* :class:`LocalPipe` — the same interface between two software modules on
  one node (fixed :data:`~repro.calibration.LOCAL_TCP_HOP` latency, no NIC).

All ``send`` operations are process generators (``yield from conn.send(x)``)
and ``recv()`` returns an event (``msg = yield conn.recv()``).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, Optional, Tuple

from repro.calibration import LOCAL_TCP_HOP
from repro.errors import ConnectionClosed, NetworkError, RequestTimeout
from repro.net.message import Frame
from repro.net.nic import Nic
from repro.obs.instruments import Counter as ObsCounter
from repro.obs.registry import get_registry
from repro.sim.channel import Channel

_port_ids = itertools.count(1)
_pipe_ids = itertools.count(1)

#: Modelled wire size of connection control frames (SYN/ACK/FIN).
CTRL_SIZE = 64
#: Per-message framing overhead added to the caller's payload size.
HEADER_SIZE = 32
#: Retransmission timeout, seconds.
RTO = 0.004
#: Give up retransmitting after this many attempts; the connection breaks.
MAX_RETRANSMITS = 30


class Listener:
    """Accepts incoming connections on ``(nic.node_id, port)``."""

    def __init__(self, engine, nic: Nic, port: str):
        self.engine = engine
        self.nic = nic
        self.port = port
        self._accept_q = Channel(engine, name=f"accept:{nic.node_id}:{port}")
        self._rx = nic.open_port(port)
        self._known: Dict[Tuple[str, str], "Connection"] = {}
        self._pump = engine.process(self._run(), name=f"listener:{port}")

    def _run(self):
        while True:
            try:
                frame = yield self._rx.get()
            except Exception as exc:        # listening NIC went down
                if not self._accept_q.closed:
                    self._accept_q.close(
                        exc if isinstance(exc, ConnectionClosed)
                        else ConnectionClosed(str(exc)))
                return
            tag, *args = frame.payload
            if tag != "SYN":
                continue  # stray frame on the listening port
            (client_port,) = args
            key = (frame.src, client_port)
            conn = self._known.get(key)
            if conn is None:
                conn = Connection(self.engine, self.nic,
                                  peer_node=frame.src, peer_port=client_port)
                self._known[key] = conn
                if not self._accept_q.closed:
                    self._accept_q.put(conn)
            # (Re-)answer; duplicate SYNs just get the same SYNACK again.
            yield from conn._send_ctrl("SYNACK", conn.local_port)

    def accept(self):
        """Event that fires with the next accepted :class:`Connection`."""
        return self._accept_q.get()

    def close(self) -> None:
        self.nic.close_port(self.port)


class Connection:
    """One side of a reliable in-order connection over a fabric.

    Create the client side with :meth:`Connection.connect`; server sides are
    produced by :class:`Listener`.
    """

    def __init__(self, engine, nic: Nic, peer_node: str, peer_port: str):
        self.engine = engine
        self.nic = nic
        self.peer_node = peer_node
        self.peer_port = peer_port
        self.local_port = f"conn-{next(_port_ids)}"
        self._rx = nic.open_port(self.local_port)
        self._inbox = Channel(engine, name=f"in:{self.local_port}")
        self._next_tx_seq = 0
        self._next_rx_seq = 0
        self._ooo: Dict[int, Tuple[Any, str]] = {}   # seq -> (payload, kind)
        self._unacked: Dict[int, Frame] = {}
        self._retrans_count: Dict[int, int] = defaultdict(int)
        self._m_retransmits = get_registry(engine).counter(
            "net.conn.retransmits", fabric=nic.fabric.spec.name,
            help="ARQ retransmissions across all connections")
        self._retransmitter = None
        self._closed = False
        self._pump = engine.process(self._run(), name=f"conn:{self.local_port}")

    # -- establishment -------------------------------------------------------

    @classmethod
    def connect(cls, engine, nic: Nic, peer_node: str, peer_port: str,
                timeout: Optional[float] = None):
        """Process generator: open a connection to a :class:`Listener`.

        Returns the connected :class:`Connection`.  Retries the SYN until
        answered, so it tolerates frame loss.  With ``timeout=None`` it
        retries forever (a dead peer hangs the caller); with a timeout it
        tears the half-open connection down and raises
        :class:`~repro.errors.RequestTimeout` at the deadline.
        """
        conn = cls(engine, nic, peer_node=peer_node, peer_port=peer_port)
        deadline = engine.now + timeout if timeout is not None else None
        handshake = Channel(engine, name=f"hs:{conn.local_port}")
        conn._handshake = handshake
        # One persistent getter: a fresh get() per retry would leave stale
        # getters queued on the channel that would swallow the SYNACK.
        answer = handshake.get()
        while True:
            syn = Frame(src=nic.node_id, dst=peer_node, port=peer_port,
                        payload=("SYN", conn.local_port), size=CTRL_SIZE,
                        kind="control")
            yield from nic.send(syn)
            yield answer | engine.timeout(RTO * 4)
            if answer.triggered:
                conn.peer_port = answer.value
                conn._handshake = None
                return conn
            if deadline is not None and engine.now >= deadline:
                conn.abort()
                raise RequestTimeout(
                    f"connect to {peer_node}:{peer_port} timed out "
                    f"after {timeout}s")

    # -- internal receive pump --------------------------------------------------

    def _run(self):
        while True:
            try:
                frame = yield self._rx.get()
            except Exception as exc:        # rx port died (crash/close)
                self._teardown(exc)
                return
            tag = frame.payload[0]
            if tag == "DATA":
                _, seq, payload, kind = frame.payload
                yield from self._on_data(seq, payload, kind)
            elif tag == "ACK":
                self._on_ack(frame.payload[1])
            elif tag == "SYNACK":
                hs = getattr(self, "_handshake", None)
                if hs is not None and not hs.closed:
                    hs.put(frame.payload[1])
            elif tag == "FIN":
                self._teardown(ConnectionClosed(
                    f"{self.peer_node} closed the connection"))
                return

    def _on_data(self, seq: int, payload: Any, kind: str):
        if seq == self._next_rx_seq:
            self._deliver(payload)
            self._next_rx_seq += 1
            while self._next_rx_seq in self._ooo:
                buffered, _k = self._ooo.pop(self._next_rx_seq)
                self._deliver(buffered)
                self._next_rx_seq += 1
        elif seq > self._next_rx_seq:
            self._ooo[seq] = (payload, kind)
        # duplicate (seq < expected): just re-ack
        yield from self._send_ctrl("ACK", self._next_rx_seq)

    def _deliver(self, payload: Any) -> None:
        if not self._inbox.closed:
            self._inbox.put(payload)

    def _on_ack(self, cum_ack: int) -> None:
        for seq in [s for s in self._unacked if s < cum_ack]:
            del self._unacked[seq]
            self._retrans_count.pop(seq, None)

    def _send_ctrl(self, tag: str, arg: Any):
        frame = Frame(src=self.nic.node_id, dst=self.peer_node,
                      port=self.peer_port, payload=(tag, arg),
                      size=CTRL_SIZE, kind="control")
        try:
            yield from self.nic.send(frame)
        except NetworkError:
            pass  # our own NIC died; the pump will find out

    # -- retransmission ---------------------------------------------------------

    def _retransmit_loop(self):
        while self._unacked and not self._closed:
            yield self.engine.timeout(RTO)
            # Snapshot: acks may arrive (and mutate _unacked) while we are
            # suspended inside nic.send below.
            for seq, frame in sorted(list(self._unacked.items())):
                if seq not in self._unacked or self._closed:
                    continue
                self._retrans_count[seq] += 1
                self._m_retransmits.inc()
                if self._retrans_count[seq] > MAX_RETRANSMITS:
                    self._teardown(ConnectionClosed(
                        f"gave up retransmitting to {self.peer_node}"))
                    return
                try:
                    yield from self.nic.send(frame)
                except NetworkError:
                    self._teardown(ConnectionClosed("local NIC down"))
                    return
        self._retransmitter = None

    # -- public API ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, payload: Any, size: int = 128, kind: str = "control"):
        """Process generator: reliably send one message.

        ``size`` is the modelled payload size in bytes; ``kind`` tags the
        frame for the Table 1 message-taxonomy audit.
        """
        if self._closed:
            raise ConnectionClosed(f"send on closed connection to "
                                   f"{self.peer_node}")
        seq = self._next_tx_seq
        self._next_tx_seq += 1
        frame = Frame(src=self.nic.node_id, dst=self.peer_node,
                      port=self.peer_port,
                      payload=("DATA", seq, payload, kind),
                      size=size + HEADER_SIZE, kind=kind)
        self._unacked[seq] = frame
        if self._retransmitter is None or self._retransmitter.triggered:
            self._retransmitter = self.engine.process(
                self._retransmit_loop(), name=f"rto:{self.local_port}")
        yield from self.nic.send(frame)

    def recv(self):
        """Event firing with the next in-order message."""
        return self._inbox.get()

    def recv_nowait(self) -> Tuple[bool, Any]:
        """Non-blocking probe: ``(True, msg)`` or ``(False, None)``;
        raises :class:`ConnectionClosed` once the connection is torn down
        and its inbox drained (same surface as :meth:`recv`)."""
        return self._inbox.get_nowait()

    def close(self):
        """Process generator: send FIN and tear down this side."""
        if not self._closed:
            yield from self._send_ctrl("FIN", None)
            self._teardown(ConnectionClosed("locally closed"))

    def abort(self) -> None:
        """Immediate local teardown (no FIN, not a generator).  Used when
        a request deadline expires and the connection state can no longer
        be trusted — e.g. a reply may arrive for a request the caller has
        already given up on."""
        self._teardown(ConnectionClosed("aborted"))

    def _teardown(self, exc: BaseException) -> None:
        if self._closed:
            return
        self._closed = True
        self._unacked.clear()
        self.nic.close_port(self.local_port)
        if not self._inbox.closed:
            if not isinstance(exc, ConnectionClosed):
                exc = ConnectionClosed(str(exc))
            self._inbox.close(exc)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<Connection {self.nic.node_id}:{self.local_port} -> "
                f"{self.peer_node}:{self.peer_port} {state}>")


class PipeEnd:
    """One end of a :class:`LocalPipe` (same message-style API)."""

    def __init__(self, engine, pipe: "LocalPipe", name: str):
        self.engine = engine
        self._pipe = pipe
        self.name = name
        self._inbox = Channel(engine, name=f"pipe:{name}")
        self._peer: Optional["PipeEnd"] = None
        self.closed = False

    def send(self, payload: Any, size: int = 128, kind: str = "control"):
        """Process generator: deliver to the peer after the local-TCP hop."""
        if self.closed or self._peer is None or self._peer.closed:
            raise ConnectionClosed(f"pipe {self.name} is closed")
        self._pipe._count(kind)
        arrival = self.engine.timeout(LOCAL_TCP_HOP, value=payload)
        peer = self._peer

        def _deliver(ev):
            if not peer._inbox.closed:
                peer._inbox.put(ev.value)
        arrival.callbacks.append(_deliver)
        return
        yield  # pragma: no cover — makes this a generator for API symmetry

    def recv(self):
        return self._inbox.get()

    def recv_nowait(self) -> Tuple[bool, Any]:
        """Non-blocking probe; raises :class:`ConnectionClosed` once the
        pipe is closed and its inbox drained (same surface as
        :meth:`recv`)."""
        return self._inbox.get_nowait()

    def close(self, exc: Optional[BaseException] = None) -> None:
        if self.closed:
            return
        self.closed = True
        self._inbox.close(exc or ConnectionClosed(f"pipe {self.name} closed"))
        if self._peer is not None and not self._peer.closed:
            self._peer.close(exc)


class LocalPipe:
    """Bidirectional local link between two modules on the same node.

    Models the "local TCP connection" between an application process's group
    handler and its daemon's lightweight endpoint module (paper §2.3).
    """

    def __init__(self, engine, name: str = "local"):
        self.engine = engine
        self.name = name
        self._registry = get_registry(engine)
        #: Unique series per pipe instance: a restarted pipe reusing a
        #: name must start its counts from zero (seed semantics).
        self._pipe_label = f"{name}#{next(_pipe_ids)}"
        self._m_by_kind: Dict[str, ObsCounter] = {}
        self.a = PipeEnd(engine, self, f"{name}.a")
        self.b = PipeEnd(engine, self, f"{name}.b")
        self.a._peer = self.b
        self.b._peer = self.a

    def _count(self, kind: str) -> None:
        counter = self._m_by_kind.get(kind)
        if counter is None:
            counter = self._registry.counter(
                "net.pipe.messages", pipe=self._pipe_label, kind=kind,
                help="local daemon<->module messages by Table 1 kind")
            self._m_by_kind[kind] = counter
        counter.inc()

    @property
    def messages(self) -> int:
        return int(sum(c.value for c in self._m_by_kind.values()))

    @property
    def by_kind(self) -> Dict[str, int]:
        return {k: int(c.value) for k, c in self._m_by_kind.items()
                if c.value}

    def close(self, exc: Optional[BaseException] = None) -> None:
        self.a.close(exc)
        self.b.close(exc)
