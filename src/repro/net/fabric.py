"""Interconnect fabrics.

A :class:`Fabric` is one physical network (the Ethernet or the Myrinet of
the paper's testbed).  It owns the wire-time model of its
:class:`TransportSpec` and the set of attached NICs, and supports fault
injection: frame loss (seeded, deterministic), network partitions, and
detaching the NICs of crashed nodes.

The *fixed* per-layer software costs (Figure 6) are charged by the layers
themselves (driver in :mod:`repro.net.nic`, VNI in :mod:`repro.vni`, MPI in
:mod:`repro.mpi`); the fabric charges only the wire term:
``wire_latency + size / bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.calibration import (BIP_BANDWIDTH, BIP_LAYERS, LayerCosts,
                               TCP_BANDWIDTH, TCP_LAYERS)
from repro.errors import Unreachable
from repro.net.message import Frame
from repro.obs.instruments import Counter
from repro.obs.registry import get_registry
from repro.sim.events import Timeout


@dataclass(frozen=True)
class TransportSpec:
    """Timing model of one interconnect technology."""

    name: str
    layers: LayerCosts
    bandwidth: float  # bytes/second

    def wire_time(self, size: int) -> float:
        """Time from NIC tx to NIC rx for a frame of ``size`` bytes."""
        return self.layers.wire + size / self.bandwidth

    def one_way(self, size: int) -> float:
        """Full predicted app-to-app one-way latency (Figure 5 model)."""
        return self.layers.one_way_fixed + size / self.bandwidth


TCP_ETHERNET = TransportSpec("tcp-ethernet", TCP_LAYERS, TCP_BANDWIDTH)
BIP_MYRINET = TransportSpec("bip-myrinet", BIP_LAYERS, BIP_BANDWIDTH)


class Fabric:
    """One interconnect: a set of attached NICs plus a wire-time model.

    Parameters
    ----------
    engine:
        The simulation engine.
    spec:
        The transport's timing model.
    loss_prob:
        Probability a frame is silently dropped (drawn from the seeded
        ``net.loss`` stream).  Reliable connections recover via ARQ.
    """

    def __init__(self, engine, spec: TransportSpec, loss_prob: float = 0.0):
        self.engine = engine
        self.spec = spec
        self.loss_prob = loss_prob
        self._nics: Dict[str, "Nic"] = {}          # node_id -> Nic
        self._partitions: Optional[Dict[str, int]] = None
        # In-flight batch of frames transmitted at the same instant: they
        # all arrive wire-time later, so a burst schedules ONE wakeup
        # instead of N.  Delivery iterates in transmit order, which is the
        # order the per-frame arrival events would have fired in anyway
        # (equal fire time, consecutive transmit => ascending seq).
        self._batch: Optional[list] = None
        self._batch_now: float = -1.0
        # Per-(src, dst) last-arrival floor under delivery jitter
        # (repro.check): jittered frames must still arrive in per-link
        # FIFO order, the one property the C/R protocols rely on.
        self._jitter_floor: Dict[tuple, float] = {}
        # Traffic telemetry: one registry series per Table 1 message kind
        # (net.frames_sent{fabric=...,kind=...}); totals and the legacy
        # attribute API (frames_sent, kind_counts, ...) are read-side
        # aggregations over these instruments.
        self._registry = get_registry(engine)
        self._m_dropped = self._registry.counter(
            "net.frames_dropped", fabric=spec.name,
            help="frames lost to crash/partition/injected loss")
        self._m_frames: Dict[str, Counter] = {}
        self._m_bytes: Dict[str, Counter] = {}
        #: Delivery interception point: ``tap(frame) -> bool`` called just
        #: before a frame reaches the destination NIC; truthy suppresses
        #: the delivery.  Protocol harnesses hook here to drop, reorder,
        #: or observe traffic below every software layer.
        self.delivery_tap = None

    def _kind_instruments(self, kind: str):
        frames = self._m_frames.get(kind)
        if frames is None:
            frames = self._registry.counter(
                "net.frames_sent", fabric=self.spec.name, kind=kind,
                help="frames handed to the wire, by Table 1 message kind")
            self._m_frames[kind] = frames
            self._m_bytes[kind] = self._registry.counter(
                "net.bytes_sent", fabric=self.spec.name, kind=kind,
                help="payload bytes handed to the wire")
        return frames, self._m_bytes[kind]

    # -- traffic counters (read-side views over the registry) ---------------

    @property
    def frames_sent(self) -> int:
        return int(sum(c.value for c in self._m_frames.values()))

    @property
    def bytes_sent(self) -> int:
        return int(sum(c.value for c in self._m_bytes.values()))

    @property
    def frames_dropped(self) -> int:
        return int(self._m_dropped.value)

    @property
    def kind_counts(self) -> Dict[str, int]:
        """Frames per Table 1 message kind ("data", "control", ...)."""
        return {k: int(c.value) for k, c in self._m_frames.items()
                if c.value}

    @property
    def kind_bytes(self) -> Dict[str, int]:
        return {k: int(c.value) for k, c in self._m_bytes.items()
                if c.value}

    # -- attachment --------------------------------------------------------

    def attach(self, nic: "Nic") -> None:
        self._nics[nic.node_id] = nic

    def detach(self, node_id: str) -> None:
        """Remove a node's NIC (node crash or removal)."""
        self._nics.pop(node_id, None)

    def attached(self, node_id: str) -> bool:
        return node_id in self._nics

    # -- fault injection -----------------------------------------------------
    # These are the *mechanisms*; the one scheduling/policy surface is
    # repro.faults (FaultPlan actions call down into them).

    def set_partition(self, *groups: Iterable[str]) -> None:
        """Split the network: frames may only flow within a group.

        Nodes not named in any group form one implicit extra group.
        """
        mapping: Dict[str, int] = {}
        for gi, group in enumerate(groups):
            for node in group:
                mapping[node] = gi
        self._partitions = mapping

    def clear_partition(self) -> None:
        """Remove any partition."""
        self._partitions = None

    def set_loss(self, prob: float) -> float:
        """Set the frame-loss probability; returns the previous value."""
        if not 0.0 <= prob < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {prob}")
        prev, self.loss_prob = self.loss_prob, prob
        return prev

    def _reachable(self, src: str, dst: str) -> bool:
        if dst not in self._nics or src not in self._nics:
            return False
        if self._partitions is None:
            return True
        implicit = len(self._partitions) + 1  # distinct from explicit ids
        return (self._partitions.get(src, implicit)
                == self._partitions.get(dst, implicit))

    # -- transmission --------------------------------------------------------

    def transmit(self, frame: Frame) -> None:
        """Put ``frame`` in flight; delivery is scheduled on the engine.

        Raises :class:`Unreachable` if the *sender* is detached; frames to
        detached or partitioned destinations are silently lost (exactly what
        a real sender observes — it cannot tell loss from slowness, the
        failure detector does that).
        """
        nics = self._nics
        if frame.src not in nics:
            raise Unreachable(
                f"node {frame.src!r} is not attached to {self.spec.name}")
        frames, nbytes = self._kind_instruments(frame.kind)
        frames.inc()
        nbytes.inc(frame.size)
        frame.sent_at = self.engine.now

        if self._partitions is None:
            reachable = frame.dst in nics
        else:
            reachable = self._reachable(frame.src, frame.dst)
        if not reachable:
            self._m_dropped.inc()
            return
        if self.loss_prob > 0.0:
            if self.engine.rng.stream("net.loss").random() < self.loss_prob:
                self._m_dropped.inc()
                return

        # Serialization (size/bandwidth) was charged by the sending NIC;
        # only propagation/switching remains.  Same-instant transmits join
        # the open batch instead of scheduling their own arrival event.
        engine = self.engine
        perturb = engine._perturb
        if perturb is not None:
            self._transmit_perturbed(frame, perturb)
            return
        now = engine._now
        batch = self._batch
        if batch is not None and self._batch_now == now:
            batch.append(frame)
            return
        batch = [frame]
        self._batch = batch
        self._batch_now = now
        arrival = Timeout(
            engine, self.spec.layers.wire, value=batch,
            name=f"wire:{frame.frame_id}+" if engine.tracer is not None
            else None)
        arrival.callbacks.append(self._deliver_batch)

    def _transmit_perturbed(self, frame: Frame, perturb) -> None:
        """Per-frame arrival under a schedule perturbation (repro.check).

        Bypasses the same-instant wire batch — batched frames share one
        event and could never be reordered by the tie shuffle.  Safe for
        per-link FIFO even without jitter: NIC tx is serialized (driver
        cost + link time per frame), so same-instant transmits always come
        from *different* source nodes.  With jitter enabled, each frame's
        wire time is stretched by a seeded draw, and a per-link arrival
        floor keeps FIFO: a frame never lands at or before its predecessor
        on the same (src, dst) link, so even the tie shuffle (which only
        reorders *equal* times) cannot swap them.
        """
        engine = self.engine
        delay = self.spec.layers.wire
        if perturb.delivery_jitter > 0.0:
            delay += perturb.draw_jitter()
        arrival_at = engine._now + delay
        key = (frame.src, frame.dst)
        floor = self._jitter_floor.get(key, -1.0)
        if arrival_at <= floor:
            arrival_at = floor + 1e-12
            delay = arrival_at - engine._now
        self._jitter_floor[key] = arrival_at
        arrival = Timeout(
            engine, delay, value=frame,
            name=f"wire:{frame.frame_id}~" if engine.tracer is not None
            else None)
        arrival.callbacks.append(self._deliver_one)

    def _deliver_one(self, event) -> None:
        frame = event._value
        nics = self._nics
        nic = nics.get(frame.dst)
        if nic is None or (frame.src not in nics
                           if self._partitions is None
                           else not self._reachable(frame.src, frame.dst)):
            self._m_dropped.inc()
            return
        if self.delivery_tap is not None and self.delivery_tap(frame):
            return
        nic._receive(frame)

    def _deliver_batch(self, event) -> None:
        frames = event._value
        if self._batch is frames:    # zero-wire fabrics deliver in-instant
            self._batch = None
        nics = self._nics
        for frame in frames:
            nic = nics.get(frame.dst)
            if nic is None or (frame.src not in nics
                               if self._partitions is None
                               else not self._reachable(frame.src,
                                                        frame.dst)):
                # Destination crashed or was partitioned away mid-flight.
                self._m_dropped.inc()
                continue
            if self.delivery_tap is not None and self.delivery_tap(frame):
                continue
            nic._receive(frame)

    def __repr__(self) -> str:
        return (f"<Fabric {self.spec.name} nics={len(self._nics)} "
                f"sent={self.frames_sent} dropped={self.frames_dropped}>")
