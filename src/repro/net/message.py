"""Network frames.

A :class:`Frame` is the unit the fabric moves between NICs.  Its ``size`` is
explicit (rather than derived from the payload) because the simulation
transports Python objects whose modelled wire size — the size the real
system would marshal them to — is what the timing model needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_frame_ids = itertools.count(1)

#: Minimum modelled wire size: headers of the framing protocol.
MIN_WIRE_SIZE = 16


@dataclass
class Frame:
    """One message on the wire.

    Attributes
    ----------
    src, dst:
        Node ids of the endpoints.
    port:
        Destination demultiplexing key (which rx queue on the NIC).
    payload:
        The carried object (opaque to the network).
    size:
        Modelled wire size in bytes (payload + headers).
    kind:
        Free-form tag used by Table 1's message-taxonomy audit
        (e.g. ``"data"``, ``"control"``, ``"coordination"``).
    """

    src: str
    dst: str
    port: str
    payload: Any
    size: int
    kind: str = "data"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    sent_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size < MIN_WIRE_SIZE:
            self.size = MIN_WIRE_SIZE

    def __repr__(self) -> str:
        return (f"<Frame #{self.frame_id} {self.src}->{self.dst}:{self.port} "
                f"{self.kind} {self.size}B>")
