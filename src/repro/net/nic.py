"""Network interface cards.

A :class:`Nic` attaches one node to one fabric.  It charges the *driver*
layer costs of Figure 6: ``driver_send`` before a frame reaches the wire
(for TCP this is the syscall + kernel stack; for BIP the user-level doorbell
write) and ``driver_recv`` before an arriving frame becomes visible to the
node's software (the VNI / polling thread).

The transmit side is serialized: concurrent senders on the same node queue
on the NIC, which models link serialization without a full switch model.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import NodeDown
from repro.net.fabric import Fabric
from repro.net.message import Frame
from repro.obs.registry import get_registry
from repro.sim.channel import Channel
from repro.sim.events import Timeout
from repro.sim.resources import Resource


class Nic:
    """One node's interface on one fabric."""

    def __init__(self, engine, node_id: str, fabric: Fabric):
        self.engine = engine
        self.node_id = node_id
        self.fabric = fabric
        # Driver-layer telemetry, aggregated per fabric (get-or-create:
        # all NICs of one fabric share the series).
        reg = get_registry(engine)
        name = fabric.spec.name
        self._m_tx = reg.counter("net.nic.tx_frames", fabric=name,
                                 help="frames through driver_send")
        self._m_rx = reg.counter("net.nic.rx_frames", fabric=name,
                                 help="frames through driver_recv")
        self._m_rx_dropped = reg.counter(
            "net.nic.rx_dropped", fabric=name,
            help="frames to closed ports or downed NICs")
        self._tx = Resource(engine, capacity=1, name=f"tx:{node_id}")
        # Per-frame timing constants, cached off the spec's attribute chain.
        self._driver_send = fabric.spec.layers.driver_send
        self._driver_recv = fabric.spec.layers.driver_recv
        self._bandwidth = fabric.spec.bandwidth
        #: Per-port receive queues; ports are opened by the software above.
        self._ports: Dict[str, Channel] = {}
        #: Fallback handler for frames to unopened ports (dropped if None).
        self.default_handler: Optional[Callable[[Frame], None]] = None
        self._up = True
        # Receive-side batch: consecutive arrivals in one fabric delivery
        # burst share one driver_recv wakeup.  The seq guard makes the
        # merge provably order-preserving: a frame may only join the batch
        # if NO engine event was created since the batch's timeout was
        # scheduled — its own timeout would have carried the very next
        # sequence number and the same fire time, i.e. it would have been
        # adjacent in the heap anyway.
        self._rx_batch: Optional[list] = None
        self._rx_batch_now: float = -1.0
        self._rx_batch_seq: int = -1
        fabric.attach(self)

    @property
    def is_up(self) -> bool:
        return self._up

    # -- ports ---------------------------------------------------------------

    def open_port(self, port: str) -> Channel:
        """Create (or return) the receive queue for ``port``."""
        ch = self._ports.get(port)
        if ch is None:
            ch = Channel(self.engine, name=f"rx:{self.node_id}:{port}")
            self._ports[port] = ch
        return ch

    def close_port(self, port: str) -> None:
        self._ports.pop(port, None)

    # -- send path -----------------------------------------------------------

    def send(self, frame: Frame):
        """Process generator: transmit ``frame`` (charges driver_send).

        Yields until the NIC tx path is free and the frame has been handed
        to the wire.  Use as ``yield from nic.send(frame)``.
        """
        if not self._up:
            raise NodeDown(f"NIC of {self.node_id} is down")
        req = self._tx.request()
        yield req
        try:
            # Driver cost + link serialization: the sender (and the NIC) are
            # busy until the last byte is on the wire; only propagation
            # happens "in flight" (charged by the fabric).
            yield Timeout(self.engine, self._driver_send
                          + frame.size / self._bandwidth)
            if not self._up:
                raise NodeDown(f"NIC of {self.node_id} went down mid-send")
            self._m_tx.inc()
            self.fabric.transmit(frame)
        finally:
            self._tx.release(req)

    # -- receive path ----------------------------------------------------------

    def _receive(self, frame: Frame) -> None:
        """Called by the fabric on arrival; charges driver_recv, then queues."""
        if not self._up:
            return
        engine = self.engine
        batch = self._rx_batch
        # Under a schedule perturbation (repro.check) every frame gets its
        # own driver_recv event so the tie shuffle can explore delivery
        # orders; same-batch frames always come from different senders
        # (NIC tx is serialized), so per-link FIFO is unaffected.
        if (batch is not None and self._rx_batch_seq == engine._seq
                and self._rx_batch_now == engine._now
                and engine._perturb is None):
            batch.append(frame)
            return
        batch = [frame]
        self._rx_batch = batch
        self._rx_batch_now = engine._now
        done = Timeout(
            engine, self._driver_recv, value=batch,
            name=f"drv-rx:{frame.frame_id}+" if engine.tracer is not None
            else None)
        done.callbacks.append(self._enqueue_batch)
        self._rx_batch_seq = engine._seq

    def _enqueue_batch(self, event) -> None:
        frames = event._value
        if self._rx_batch is frames:
            self._rx_batch = None
        if not self._up:
            self._m_rx_dropped.inc(len(frames))
            return
        for frame in frames:
            ch = self._ports.get(frame.port)
            if ch is not None and not ch.closed:
                self._m_rx.inc()
                ch.put(frame)
            elif self.default_handler is not None:
                self._m_rx.inc()
                self.default_handler(frame)
            else:
                # No listener — frame dropped, like a closed UDP port.
                self._m_rx_dropped.inc()

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self, exc: Optional[BaseException] = None) -> None:
        """Bring the NIC down (node crash): detach and close all ports."""
        if not self._up:
            return
        self._up = False
        self.fabric.detach(self.node_id)
        err = exc or NodeDown(f"node {self.node_id} is down")
        for ch in self._ports.values():
            if not ch.closed:
                ch.close(err)
        self._ports.clear()

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return (f"<Nic {self.node_id}@{self.fabric.spec.name} {state} "
                f"ports={sorted(self._ports)}>")
