#!/usr/bin/env python
"""Heterogeneous checkpointing (paper §4): migrate a computation between
machines with different data representations.

The cluster mixes three of Table 2's machine types: little-endian 32-bit
Linux/x86, big-endian 32-bit SunOS/SPARC, and little-endian 64-bit
Linux/Alpha.  The application checkpoints at the *virtual machine* level —
state is written in the source machine's native representation with a
descriptor, and converted only on restore.  When the x86 node dies, its
rank restarts on the Sun: byte order and VM word size are converted on
the fly.

Run:  python examples/heterogeneous_migration.py
"""

from repro import AppSpec, StarfishCluster
from repro.cluster import arch_by_name
from repro.core import CheckpointConfig, FaultPolicy
from repro.apps import ComputeSleep


def main():
    linux = arch_by_name("Intel P-II 350 MHz, i686")
    sun = arch_by_name("Sun Ultra Enterprise 3000")
    alpha = arch_by_name("Dual Alpha DS20 500 MHz")
    sf = StarfishCluster.build(nodes=3, archs=[linux, linux, sun])
    for node_id, node in sorted(sf.cluster.nodes.items()):
        print(f"  {node_id}: {node.arch}")

    print("\nSubmitting a 2-rank job with VM-level checkpoints "
          "(1 MB of state per rank)...")
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 60, "step_time": 0.05, "state_bytes": 1_000_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.5),
        placement={0: "n0", 1: "n1"}))

    sf.engine.run(until=sf.engine.now + 1.5)
    version = sf.store.latest_committed(handle.app_id)
    rec = sf.store.peek(handle.app_id, 1, version)
    print(f"t={sf.engine.now:.2f}: rank 1 checkpointed on {rec.arch_name} "
          f"({rec.nbytes / 1024:.0f} KB portable image, version {version})")

    print(f"t={sf.engine.now:.2f}: CRASHING n1 (little-endian x86)")
    sf.crash_node("n1")
    results = sf.run_to_completion(handle, timeout=300)
    record = handle._record()
    new_home = record.placement[1]
    new_arch = sf.cluster.node(new_home).arch
    print(f"t={sf.engine.now:.2f}: rank 1 restarted on {new_home} "
          f"({new_arch.endianness}-endian, {new_arch.word_bits}-bit) "
          "- representation converted on restore")
    print(f"  results: {results}  (both ranks completed all 60 steps)")

    print("\nFor contrast: a NATIVE-level checkpoint cannot cross "
          "representations;")
    print("Starfish's restart placement rule would only consider "
          "same-representation nodes (see "
          "tests/test_starfish_faults.py::"
          "test_native_checkpoint_restart_prefers_same_representation).")


if __name__ == "__main__":
    main()
