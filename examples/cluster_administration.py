#!/usr/bin/env python
"""Managing a Starfish cluster through the ASCII client protocol (§3.1.1).

The paper's management story: connect to *any* daemon over TCP, log in as
an administrator or a user, and drive the cluster with a textual protocol
(the Java GUI speaks the same protocol underneath).  This example runs a
management session and a user session, exercising node administration,
configuration, job submission, and result collection — and shows the
replicated state surviving the death of the daemon originally used.

Run:  python examples/cluster_administration.py
"""

from repro import StarfishCluster


def main():
    sf = StarfishCluster.build(nodes=4)
    transcript = []

    def show(cmd, reply):
        transcript.append((cmd, reply))
        print(f"  > {cmd}\n  < {reply}")

    def admin_session():
        client = sf.client(from_node="n3", to_node="n0")
        c = yield from client.connect()
        for cmd in ("LOGIN admin adminpw MGMT",
                    "NODES",
                    "SET scheduler.policy least-loaded",
                    "GET scheduler.policy",
                    "DISABLE n2"):
            reply = yield from c.command(cmd)
            show(cmd, reply)
        yield sf.engine.timeout(1.0)
        reply = yield from c.command("NODES")
        show("NODES", reply)
        yield from c.close()

    def user_session():
        client = sf.client(from_node="n3", to_node="n1")
        c = yield from client.connect()
        for cmd in ("LOGIN alice alicepw USER",
                    "SUBMIT pi 3 program=montecarlo param.shots=60000",
                    "STATUS pi"):
            reply = yield from c.command(cmd)
            show(cmd, reply)
        while True:
            reply = yield from c.command("STATUS pi")
            if reply.split()[1] in ("done", "failed"):
                show("STATUS pi", reply)
                break
            yield sf.engine.timeout(0.5)
        reply = yield from c.command("RESULT pi")
        show("RESULT pi", reply)
        yield from c.close()

    print("--- management session (to daemon on n0) ---")
    proc = sf.engine.process(admin_session())
    sf.engine.run(proc)

    print("\n--- user session (to daemon on n1) ---")
    proc = sf.engine.process(user_session())
    sf.engine.run(proc)

    print("\n--- high availability: n1 dies, reconnect to n2... ---")
    sf.crash_node("n1")

    def recheck():
        # n2 is disabled for *scheduling* but still serves clients.
        client = sf.client(from_node="n3", to_node="n2")
        c = yield from client.connect()
        for cmd in ("LOGIN alice alicepw USER", "STATUS pi"):
            reply = yield from c.command(cmd)
            show(cmd, reply)
        yield from c.close()

    proc = sf.engine.process(recheck())
    sf.engine.run(proc)
    print("\nThe replicated registry answered from a different daemon.")


if __name__ == "__main__":
    main()
