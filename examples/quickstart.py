#!/usr/bin/env python
"""Quickstart: run an MPI application on a Starfish cluster.

Builds a 4-node simulated cluster of workstations, boots a Starfish daemon
on every node (they form the Starfish process group), submits a 4-process
Monte-Carlo computation, and collects its result.

Run:  python examples/quickstart.py
"""

from repro import AppSpec, StarfishCluster
from repro.apps import MonteCarloPi


def main():
    print("Booting a 4-node Starfish cluster...")
    sf = StarfishCluster.build(nodes=4)
    view = sf.any_daemon().gm.view
    print(f"  Starfish group converged: {len(view)} daemons, "
          f"coordinator {view.coordinator}")

    print("Submitting MonteCarloPi (4 processes, 200k samples)...")
    spec = AppSpec(program=MonteCarloPi, nprocs=4,
                   params={"shots": 200_000, "chunk": 2000})
    handle = sf.submit(spec)
    results = sf.run_to_completion(handle)

    record = handle._record()
    print(f"  placement: {record.placement}")
    print(f"  finished at simulated t={sf.engine.now:.3f}s")
    for rank in sorted(results):
        print(f"  rank {rank}: pi ~ {results[rank]:.5f}")

    eth, myr = sf.cluster.ethernet, sf.cluster.myrinet
    print("\nTraffic split (the paper's architecture in one line):")
    print(f"  Myrinet fast path: {myr.frames_sent} data frames")
    print(f"  Ethernet (daemons/Ensemble): {eth.frames_sent} control frames")


if __name__ == "__main__":
    main()
