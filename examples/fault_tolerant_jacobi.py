#!/usr/bin/env python
"""Fault tolerance by checkpoint/restart (paper §3.2.2, RESTART policy).

A tightly-coupled Jacobi stencil runs with periodic coordinated
checkpointing (the paper's stop-and-sync protocol, VM level).  Mid-run, a
node hosting one of the ranks is crashed.  Starfish:

1. detects the failure through the daemons' group membership,
2. computes the recovery line (the last committed checkpoint version),
3. re-places the dead rank on a surviving node, and
4. rolls every process back to the recovery line and resumes.

Run:  python examples/fault_tolerant_jacobi.py
"""

from repro import AppSpec, StarfishCluster
from repro.core import CheckpointConfig, FaultPolicy
from repro.apps import Jacobi1D


def main():
    sf = StarfishCluster.build(nodes=4)
    print("Submitting Jacobi1D with stop-and-sync checkpoints every 1.5s...")
    handle = sf.submit(AppSpec(
        program=Jacobi1D, nprocs=4,
        params={"n": 512, "iterations": 400, "iters_per_step": 10,
                "compute_ns_per_cell": 100_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=1.5)))

    sf.engine.run(until=sf.engine.now + 4.0)
    committed = sf.store.latest_committed(handle.app_id)
    print(f"t={sf.engine.now:.2f}: recovery line = version {committed} "
          f"({sf.store.stats['writes']} checkpoint files on stable storage)")

    victim = handle._record().placement[1]
    print(f"t={sf.engine.now:.2f}: CRASHING node {victim} (hosts rank 1)")
    sf.crash_node(victim)

    results = sf.run_to_completion(handle, timeout=600)
    record = handle._record()
    iters, residual, checksum = results[0]
    print(f"t={sf.engine.now:.2f}: application finished")
    print(f"  iterations completed : {iters}")
    print(f"  final residual       : {residual:.3e}")
    print(f"  restarts             : {record.restarts}")
    print(f"  rank 1 now runs on   : {record.placement[1]} "
          f"(was {victim})")
    print(f"  checkpoints read back: {sf.store.stats['reads']}")


if __name__ == "__main__":
    main()
