#!/usr/bin/env python
"""Run coordinated and uncoordinated C/R protocols side by side.

The paper presents this as a distinguishing capability of the Starfish
architecture: "we can run the same application with two different C/R
protocols, and compare them".  This example runs the same Jacobi stencil
under stop-and-sync, Chandy-Lamport, and uncoordinated checkpointing —
simultaneously, as three applications sharing one cluster — then compares
what each protocol cost and how each recovers from the same crash.

Run:  python examples/compare_checkpoint_protocols.py
"""

from repro import AppSpec, StarfishCluster
from repro.core import CheckpointConfig, FaultPolicy
from repro.apps import Jacobi1D

PROTOCOLS = ("stop-and-sync", "chandy-lamport", "uncoordinated")
PARAMS = {"n": 256, "iterations": 500, "iters_per_step": 10,
          "compute_ns_per_cell": 100_000}


def main():
    sf = StarfishCluster.build(nodes=6)
    handles = {}
    for proto in PROTOCOLS:
        handles[proto] = sf.submit(AppSpec(
            program=Jacobi1D, nprocs=2, params=PARAMS,
            ft_policy=FaultPolicy.RESTART,
            checkpoint=CheckpointConfig(protocol=proto, level="vm",
                                        interval=1.0)),
            app_id=proto)
    sf.engine.run(until=sf.engine.now + 0.5)   # let submissions replicate
    print(f"Three copies of the same application, one per protocol, "
          f"sharing {len(sf.cluster.nodes)} nodes:")
    for proto, handle in handles.items():
        print(f"  {proto:>15}: ranks on {handle._record().placement}")

    sf.engine.run(until=sf.engine.now + 3.2)
    print(f"\nt={sf.engine.now:.1f}: checkpoints so far:")
    for proto in PROTOCOLS:
        versions = sf.store.versions_of(proto, 0)
        line = sf.store.latest_committed(proto)
        print(f"  {proto:>15}: rank-0 versions {versions} "
              f"(committed recovery line: {line})")

    # One crash affecting all three (they share nodes).
    victim = handles["stop-and-sync"]._record().placement[1]
    print(f"\nt={sf.engine.now:.1f}: crashing {victim}")
    sf.crash_node(victim)

    print("\nRecovery and completion:")
    for proto in PROTOCOLS:
        results = sf.run_to_completion(handles[proto], timeout=1200)
        record = handles[proto]._record()
        iters, residual, _ = results[0]
        print(f"  {proto:>15}: finished {iters} iterations, "
              f"restarts={record.restarts}, "
              f"final placement {record.placement}")
    print(f"\nstable storage: {sf.store.stats['writes']} checkpoint files, "
          f"{sf.store.stats['bytes_written'] / 1e6:.1f} MB written, "
          f"{sf.store.stats['reads']} restored")


if __name__ == "__main__":
    main()
