#!/usr/bin/env python
"""Beyond the 1999 prototype: diskless checkpointing + live migration.

The paper closes (§7) by calling for "newer and faster C/R protocols, in
particular ones that utilize fast networks".  This example runs that
protocol: checkpoint images are double-mirrored into buddy nodes' memory
over BIP/Myrinet (~30 MB/s) instead of the ~6.5 MB/s IDE disk, then uses
the same machinery for administrator-driven process migration, and ends
with a cluster metrics report.

Run:  python examples/diskless_and_migration.py
"""

from repro import AppSpec, ClusterMetrics, StarfishCluster
from repro.core import CheckpointConfig, FaultPolicy
from repro.apps import ComputeSleep


def main():
    sf = StarfishCluster.build(nodes=4)
    print("Submitting a job with DISKLESS checkpoints every 0.5s "
          "(8 MB of state per rank)...")
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=3,
        params={"steps": 100, "step_time": 0.05, "state_bytes": 8_000_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="diskless", level="native",
                                    interval=0.5),
        placement={0: "n0", 1: "n1", 2: "n2"}))
    sf.engine.run(until=sf.engine.now + 1.4)

    version = sf.store.latest_committed(handle.app_id)
    rec = sf.store.peek(handle.app_id, 0, version)
    disk = sum(n.disk.bytes_written for n in sf.cluster.nodes.values())
    print(f"t={sf.engine.now:.2f}: line v{version} committed; rank 0's "
          f"{rec.nbytes / 1e6:.1f} MB image mirrored on {rec.holder_nodes} "
          f"(disk bytes written: {disk})")

    print(f"t={sf.engine.now:.2f}: operator migrates rank 1 to the idle "
          "node n3...")
    sf.migrate(handle, rank=1, target_node="n3")
    sf.engine.run(until=sf.engine.now + 1.0)
    print(f"t={sf.engine.now:.2f}: placement now "
          f"{handle._record().placement}")

    print(f"t={sf.engine.now:.2f}: and n2 dies mid-run...")
    sf.crash_node("n2")
    results = sf.run_to_completion(handle, timeout=600)
    print(f"t={sf.engine.now:.2f}: finished — results {results}, "
          f"restarts={handle.restarts}")

    print("\n" + ClusterMetrics(sf).format_report())


if __name__ == "__main__":
    main()
