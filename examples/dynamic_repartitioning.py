#!/usr/bin/env python
"""Dynamic applications: view-change repartitioning and MPI-2 spawning.

Two of the paper's dynamicity stories in one script:

1. A trivially parallel Monte-Carlo run under the VIEW_NOTIFY policy
   absorbs TWO node crashes with no rollback: the survivors get a
   view-change upcall, agree on the most advanced state, and keep going.
2. A master/worker bag-of-tasks grows itself mid-run with the MPI-2
   dynamic process management downcall (``mpi.spawn``) and re-queues the
   tasks of a worker that dies.

Run:  python examples/dynamic_repartitioning.py
"""

from repro import AppSpec, StarfishCluster
from repro.core import FaultPolicy
from repro.apps import BagOfTasks, MonteCarloPi


def monte_carlo_survives_crashes():
    print("=" * 64)
    print("1. Monte-Carlo under VIEW_NOTIFY: crashes, no rollback")
    print("=" * 64)
    sf = StarfishCluster.build(nodes=5)
    handle = sf.submit(AppSpec(
        program=MonteCarloPi, nprocs=5,
        params={"shots": 400_000, "chunk": 1000,
                "compute_ns_per_shot": 40_000},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    sf.engine.run(until=sf.engine.now + 1.0)
    for rank in (4, 3):
        victim = handle._record().placement[rank]
        print(f"t={sf.engine.now:.2f}: crashing {victim} (rank {rank})")
        sf.crash_node(victim)
        sf.engine.run(until=sf.engine.now + 1.5)
    results = sf.run_to_completion(handle, timeout=600)
    record = handle._record()
    print(f"t={sf.engine.now:.2f}: finished with "
          f"{len(record.placement)} surviving ranks, restarts="
          f"{record.restarts}")
    print(f"  pi ~ {results[min(results)]:.5f}  (survivors only: "
          f"{sorted(results)})")


def bag_of_tasks_grows_and_heals():
    print()
    print("=" * 64)
    print("2. Bag-of-tasks: MPI-2 spawn growth + worker-death re-queueing")
    print("=" * 64)
    sf = StarfishCluster.build(nodes=6)
    handle = sf.submit(AppSpec(
        program=BagOfTasks, nprocs=2,          # master + 1 worker
        params={"tasks": 40, "task_time": 0.15,
                "grow_after": 6, "grow_by": 3},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    sf.engine.run(until=sf.engine.now + 2.0)
    record = handle._record()
    print(f"t={sf.engine.now:.2f}: world grew to "
          f"{len(record.placement)} processes: {record.placement}")
    # Kill one of the spawned workers mid-run.
    worker_rank = max(record.placement)
    victim = record.placement[worker_rank]
    print(f"t={sf.engine.now:.2f}: crashing {victim} "
          f"(worker rank {worker_rank})")
    sf.crash_node(victim)
    results = sf.run_to_completion(handle, timeout=600)
    done = results[0]
    print(f"t={sf.engine.now:.2f}: master collected {len(done)} tasks, "
          f"all exactly once: {done == sorted(set(done))}")
    workers = {r: n for r, n in results.items() if r != 0}
    print(f"  tasks per worker: {workers}")


if __name__ == "__main__":
    monte_carlo_survives_crashes()
    bag_of_tasks_grows_and_heals()
