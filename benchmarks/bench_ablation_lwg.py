"""Ablation — lightweight groups vs one full process group per app.

Paper §2.1: "it would have been possible to allocate a separate full blown
process group for each application.  But ... the lightweight group
approach is more efficient."

This bench measures the network cost of (a) the steady-state overhead and
(b) per-application multicast, under the two designs, on an 8-node cluster
hosting an application spanning only 2 nodes:

* **lightweight** (Starfish): the app's casts are sequenced and relayed
  point-to-point among the 2 member daemons only; there is ONE
  heartbeat-bearing group for the whole cluster;
* **full-group-per-app**: a second full process group is created for the
  app — every multicast costs a full Ensemble round among its members,
  and the group adds its own heartbeat/membership traffic for as long as
  the application lives.
"""

import pytest

from repro.cluster import Cluster
from repro.gcs import GcsConfig, GroupMember
from repro.lwg import LwgManager

from bench_helpers import fast_or, print_table

N_NODES = 8
APP_SPAN = 2
N_CASTS = fast_or(10, 50)
WINDOW = fast_or(5.0, 10.0)      # seconds of steady state measured


def build_main_group(cluster, cfg):
    members = []
    for i in range(N_NODES):
        gm = GroupMember(cluster.engine, cluster.node(f"n{i}"), config=cfg)
        members.append(gm)
    members[0].start()
    for gm in members[1:]:
        gm.start(contact=members[0].endpoint)
    cluster.engine.run(until=cluster.engine.now + 3.0)
    return members


def drain(members, lwgs=None):
    for gm in members:
        gm.events.drain() if hasattr(gm.events, "drain") else None


def run_lightweight():
    cfg = GcsConfig(heartbeat_period=0.25, suspect_timeout=2.0)
    cluster = Cluster.build(nodes=N_NODES)
    members = build_main_group(cluster, cfg)
    lwgs = [LwgManager(cluster.engine, gm) for gm in members]
    for i, gm in enumerate(members):
        def pump(gm=gm, mgr=lwgs[i]):
            while True:
                ev = yield gm.events.get()
                mgr.on_main_event(ev)
        cluster.node(f"n{i}").spawn(pump())
    lwgs[0].create("app", [members[0].endpoint, members[1].endpoint])
    cluster.engine.run(until=cluster.engine.now + 1.0)

    base = cluster.ethernet.frames_sent
    for k in range(N_CASTS):
        lwgs[0].cast("app", ("payload", k))
    cluster.engine.run(until=cluster.engine.now + 2.0)
    cast_frames = cluster.ethernet.frames_sent - base

    base = cluster.ethernet.frames_sent
    cluster.engine.run(until=cluster.engine.now + WINDOW)
    idle_frames = cluster.ethernet.frames_sent - base
    return cast_frames, idle_frames


def run_full_group():
    cfg = GcsConfig(heartbeat_period=0.25, suspect_timeout=2.0)
    cluster = Cluster.build(nodes=N_NODES)
    members = build_main_group(cluster, cfg)
    # A dedicated, full process group for the 2-node application.
    app_members = [GroupMember(cluster.engine, cluster.node(f"n{i}"),
                               name="appgrp", group="app", config=cfg)
                   for i in range(APP_SPAN)]
    app_members[0].start()
    app_members[1].start(contact=app_members[0].endpoint)
    cluster.engine.run(until=cluster.engine.now + 2.0)

    base = cluster.ethernet.frames_sent
    for k in range(N_CASTS):
        app_members[0].cast(("payload", k))
    cluster.engine.run(until=cluster.engine.now + 2.0)
    cast_frames = cluster.ethernet.frames_sent - base

    base = cluster.ethernet.frames_sent
    cluster.engine.run(until=cluster.engine.now + WINDOW)
    idle_frames = cluster.ethernet.frames_sent - base
    return cast_frames, idle_frames


def run_ablation():
    return run_lightweight(), run_full_group()


def test_ablation_lightweight_groups(benchmark):
    (lw_cast, lw_idle), (fg_cast, fg_idle) = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1)
    print_table(
        f"Lightweight vs full group ({N_NODES}-node cluster, "
        f"{APP_SPAN}-node app)",
        ["design", f"frames for {N_CASTS} casts",
         f"idle frames per {WINDOW:.0f}s"],
        [["lightweight group (Starfish)", lw_cast, lw_idle],
         ["full process group per app", fg_cast, fg_idle]])
    extra_per_app = fg_idle - lw_idle
    print(f"\nextra steady-state frames per app per {WINDOW:.0f}s under the "
          f"full-group design: {extra_per_app} "
          f"(x N_apps on a shared cluster)")
    benchmark.extra_info.update(lw_cast=lw_cast, lw_idle=lw_idle,
                                fg_cast=fg_cast, fg_idle=fg_idle)
    # The full-group design pays extra steady-state traffic (a second
    # failure-detection/membership layer) for EVERY application, while
    # lightweight groups add none; the gap scales with the number of
    # applications sharing the cluster.
    assert extra_per_app >= WINDOW / 0.25  # at least its own heartbeats
    # Cast traffic is in the same ballpark (both sequencer-relayed among
    # 2 members) — the lightweight design wins on overheads, not per-cast.
    assert lw_cast <= fg_cast * 1.5
