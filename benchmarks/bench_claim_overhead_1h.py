"""§5 claim — "if a checkpoint is taken once every hour, it would only
slow down the entire execution time by less than 1%".

Runs the same application for one simulated hour of work with hourly
checkpointing and without any checkpointing, and compares completion
times.  Uses the heaviest configuration the paper reports (native level,
135 MB files, 4 nodes) — the worst case for the claim.
"""

import pytest

from repro.calibration import MB, VM_PAYLOAD_FACTOR, NATIVE_EMPTY_IMAGE
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.apps import ComputeSleep
from repro.gcs import GcsConfig

from bench_helpers import print_table

# Fast mode (REPRO_BENCH_FAST=1): unchanged — the simulated hour is cheap
# in wall-clock terms (coarse steps, slow heartbeats), and shrinking it
# would invalidate the hourly-checkpoint <1% claim being measured.

#: One simulated hour of computation: 360 steps x 10 s.
STEPS, STEP_TIME = 360, 10.0
#: Payload whose native dump is the paper's largest file (135 MB).
STATE_BYTES = int((135 * 1e6 - NATIVE_EMPTY_IMAGE) * VM_PAYLOAD_FACTOR)

#: Slow heartbeats: one simulated hour of failure detection is not the
#: subject of this claim.
GCS = GcsConfig(heartbeat_period=30.0, suspect_timeout=240.0,
                announce_period=600.0, gossip=False)


def run_once(ckpt: bool) -> float:
    sf = StarfishCluster.build(nodes=4, gcs_config=GCS)
    checkpoint = (CheckpointConfig(protocol="stop-and-sync", level="native",
                                   interval=3600.0)
                  if ckpt else CheckpointConfig())
    t0 = sf.engine.now
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=4,
        params={"steps": STEPS, "step_time": STEP_TIME,
                "state_bytes": STATE_BYTES},
        ft_policy=FaultPolicy.RESTART if ckpt else FaultPolicy.KILL,
        checkpoint=checkpoint))
    sf.run_to_completion(handle, timeout=3 * 3600.0)
    elapsed = sf.engine.now - t0
    ckpts = len(sf.store.versions_of(handle.app_id, 0)) if ckpt else 0
    return elapsed, ckpts


def run_claim():
    base, _ = run_once(ckpt=False)
    with_ckpt, n_ckpts = run_once(ckpt=True)
    return base, with_ckpt, n_ckpts


def test_claim_hourly_checkpoint_under_1_percent(benchmark):
    base, with_ckpt, n_ckpts = benchmark.pedantic(run_claim, rounds=1,
                                                  iterations=1)
    overhead = (with_ckpt - base) / base
    print_table(
        "Hourly checkpointing overhead (135 MB native files, 4 nodes)",
        ["configuration", "completion s", "checkpoints", "overhead"],
        [["no checkpointing", f"{base:.1f}", 0, "-"],
         ["checkpoint every hour", f"{with_ckpt:.1f}", n_ckpts,
          f"{100 * overhead:.3f}%"]])
    benchmark.extra_info["overhead_pct"] = 100 * overhead
    assert n_ckpts >= 1
    # The paper's claim, measured: < 1% slowdown.
    assert overhead < 0.01
    assert overhead > 0            # it is not free either
