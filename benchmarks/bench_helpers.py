"""Shared helpers for the reproduction benchmarks.

Every benchmark builds the full Starfish stack on a simulated cluster,
runs the paper's workload, and reports *simulated-time* metrics (what the
paper measured) while pytest-benchmark records the wall-clock cost of the
simulation itself.  Each bench prints the regenerated table/series in the
paper's shape; run with ``pytest benchmarks/ --benchmark-only -s`` to see
them, or read ``bench_output.txt``.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.gcs import GcsConfig

#: Fast mode (``REPRO_BENCH_FAST=1``): every bench shrinks its workload to
#: a seconds-scale smoke configuration.  The regenerated numbers are then
#: *not* the paper's (fewer reps, smaller states, smaller sweeps) — fast
#: mode exists so the CI can prove every bench still runs end to end.
FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"


def fast_or(fast_value, full_value):
    """Pick the fast-mode or full-mode value for a workload parameter."""
    return fast_value if FAST else full_value


def quiet_gcs(heartbeat: float = 0.5) -> GcsConfig:
    """GCS timing for long benchmark runs (less failure-detector traffic)."""
    return GcsConfig(heartbeat_period=heartbeat,
                     suspect_timeout=8 * heartbeat,
                     announce_period=16 * heartbeat)


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares fit ``y = a*x + b``; returns (a, b, R^2)."""
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    a = sxy / sxx if sxx else 0.0
    b = my - a * mx
    ss_res = sum((y - (a * x + b)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - my) ** 2 for y in ys)
    r2 = 1.0 - (ss_res / ss_tot if ss_tot else 0.0)
    return a, b, r2


def print_table(title: str, header: Sequence[str],
                rows: Sequence[Sequence]) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


def checkpoint_once(sf: StarfishCluster, app_id: str) -> float:
    """Trigger one checkpoint on a running app; returns its simulated
    duration (request -> commit)."""
    handle = None
    for daemon in sf.live_daemons():
        for (aid, rank), h in daemon.handles.items():
            if aid == app_id and h.protocol is not None:
                if handle is None or rank < handle[0]:
                    handle = (rank, h)
    assert handle is not None, f"no checkpointing process for {app_id}"
    proto = handle[1].protocol
    t0 = sf.engine.now
    ev = proto.request_checkpoint()
    sf.engine.run(until=ev)
    return sf.engine.now - t0


def start_checkpointed_app(sf: StarfishCluster, *, nprocs: int,
                           state_bytes: int, protocol: str, level: str,
                           app_id: Optional[str] = None) -> str:
    """Submit a long ComputeSleep app with the given checkpoint setup and
    run until all ranks are stepping."""
    handle = sf.submit(AppSpec(
        program=__import__("repro.apps", fromlist=["ComputeSleep"])
        .ComputeSleep,
        nprocs=nprocs,
        params={"steps": 10**9, "step_time": 0.005,
                "state_bytes": state_bytes},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol=protocol, level=level)),
        app_id=app_id)
    sf.engine.run(until=sf.engine.now + 1.0)
    return handle.app_id
