"""Figure 5 — application-level round-trip delay vs message size.

Paper: a ping-style application, 100 repetitions per point; 1-byte RTT of
86 us over BIP/Myrinet and 552 us over TCP/IP, both growing linearly with
size.  This bench runs the actual PingPong application through the full
Starfish stack on both transports.
"""

import pytest

from repro.apps import PingPong
from repro.calibration import (BIP_BANDWIDTH, RTT_1BYTE_BIP, RTT_1BYTE_TCP,
                               TCP_BANDWIDTH, US)
from repro.core import AppSpec, StarfishCluster

from bench_helpers import fast_or, fit_line, print_table, quiet_gcs

SIZES = fast_or([1, 1024, 65536],
                [1, 64, 256, 1024, 4096, 16384, 65536, 262144])
REPS = fast_or(10, 100)  # 100 as in the paper


def run_fig5():
    series = {}
    for transport in ("bip-myrinet", "tcp-ethernet"):
        sf = StarfishCluster.build(nodes=2, gcs_config=quiet_gcs())
        results = sf.run(AppSpec(program=PingPong, nprocs=2,
                                 params={"sizes": SIZES, "reps": REPS},
                                 transport=transport), timeout=4000)
        series[transport] = results[0]
    return series


def test_fig5_roundtrip(benchmark):
    series = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    rows = []
    for size in SIZES:
        rows.append([size,
                     f"{series['bip-myrinet'][size] / US:.1f}",
                     f"{series['tcp-ethernet'][size] / US:.1f}"])
    print_table("Figure 5: round-trip delay vs data size (us)",
                ["bytes", "BIP/Myrinet", "TCP/IP"], rows)

    bip1 = series["bip-myrinet"][1]
    tcp1 = series["tcp-ethernet"][1]
    print(f"\n1-byte anchors: BIP {bip1 / US:.1f} us (paper 86), "
          f"TCP {tcp1 / US:.1f} us (paper 552)")
    benchmark.extra_info["bip_1B_us"] = bip1 / US
    benchmark.extra_info["tcp_1B_us"] = tcp1 / US
    assert bip1 == pytest.approx(RTT_1BYTE_BIP, rel=0.01)
    assert tcp1 == pytest.approx(RTT_1BYTE_TCP, rel=0.01)

    # Linear growth; slope = 2/bandwidth per transport.
    for transport, bw in (("bip-myrinet", BIP_BANDWIDTH),
                          ("tcp-ethernet", TCP_BANDWIDTH)):
        xs = list(series[transport])
        ys = [series[transport][s] for s in xs]
        slope, intercept, r2 = fit_line(xs, ys)
        assert r2 > 0.9999, transport
        assert slope == pytest.approx(2.0 / bw, rel=0.01), transport

    # Who wins: BIP beats TCP at every size; the gap narrows relatively as
    # bandwidth dominates but never closes (BIP also has more bandwidth).
    for size in SIZES:
        assert series["bip-myrinet"][size] < series["tcp-ethernet"][size]
    ratio_small = tcp1 / bip1
    ratio_big = (series["tcp-ethernet"][SIZES[-1]]
                 / series["bip-myrinet"][SIZES[-1]])
    assert ratio_small == pytest.approx(552 / 86, rel=0.05)
    assert 1.0 < ratio_big < ratio_small
