"""Figure 6 — time a message spends in each software layer.

Paper: reports the per-layer overhead for sending and receiving a message
and notes the key property that "the time spent in each layer is
independent of the message size, since messages are never copied in our
code".

This bench (a) prints the per-layer budget for both transports, and
(b) *verifies the decomposition against the running system*: for several
message sizes it measures the full one-way latency through the stack and
checks that ``measured - wire_bytes/bandwidth`` — the total software
overhead — is a size-independent constant equal to the sum of the layer
costs.
"""

import pytest

from repro.calibration import (BIP_BANDWIDTH, BIP_LAYERS, DATA_HEADER,
                               TCP_BANDWIDTH, TCP_LAYERS, US)
from repro.cluster import Cluster
from repro.mpi import MpiApi, MpiEndpoint

from bench_helpers import print_table

# Fast mode (REPRO_BENCH_FAST=1): nothing to shrink — eight one-message
# measurements on a bare 2-node cluster, already smoke-sized.
SIZES = [1, 1024, 65536, 1048576]

LAYER_ROWS = [
    ("application (send)", "app_send"),
    ("MPI module (send)", "mpi_send"),
    ("VNI (send)", "vni_send"),
    ("network driver (send)", "driver_send"),
    ("wire / switch", "wire"),
    ("network driver (recv)", "driver_recv"),
    ("VNI / polling thread (recv)", "vni_recv"),
    ("MPI module (recv)", "mpi_recv"),
    ("application (recv)", "app_recv"),
]


def measure_one_way(transport: str, size: int) -> float:
    cluster = Cluster.build(nodes=2)
    book = {}
    eps = [MpiEndpoint(cluster.engine, cluster.node(f"n{r}"),
                       app_id="fig6", world_rank=r, addressbook=book,
                       transport=transport) for r in range(2)]
    apis = [MpiApi(ep, nprocs=2) for ep in eps]
    out = {}

    def sender(mpi):
        yield from mpi.send(b"", dest=1, tag=0, size=size)

    def receiver(mpi):
        t0 = cluster.engine.now
        yield from mpi.recv(source=0, tag=0)
        out["t"] = cluster.engine.now - t0

    cluster.engine.process(sender(apis[0]))
    p = cluster.engine.process(receiver(apis[1]))
    cluster.engine.run(p)
    return out["t"]


def run_fig6():
    measured = {}
    for transport in ("bip-myrinet", "tcp-ethernet"):
        for size in SIZES:
            measured[(transport, size)] = measure_one_way(transport, size)
    return measured


def test_fig6_layer_overheads(benchmark):
    measured = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    rows = []
    for label, attr in LAYER_ROWS:
        rows.append([label,
                     f"{getattr(BIP_LAYERS, attr) / US:.2f}",
                     f"{getattr(TCP_LAYERS, attr) / US:.2f}"])
    rows.append(["TOTAL software overhead (one way)",
                 f"{BIP_LAYERS.one_way_fixed / US:.2f}",
                 f"{TCP_LAYERS.one_way_fixed / US:.2f}"])
    print_table("Figure 6: per-layer overhead (us, size-independent)",
                ["layer", "BIP/Myrinet", "TCP/IP"], rows)

    # Verification: software overhead (measured minus pure byte time) is
    # constant across sizes and equals the layer sum — zero copies.
    for transport, bw, layers in (
            ("bip-myrinet", BIP_BANDWIDTH, BIP_LAYERS),
            ("tcp-ethernet", TCP_BANDWIDTH, TCP_LAYERS)):
        overheads = []
        vrows = []
        for size in SIZES:
            t = measured[(transport, size)]
            overhead = t - (size + DATA_HEADER) / bw
            overheads.append(overhead)
            vrows.append([size, f"{t / US:.2f}", f"{overhead / US:.3f}"])
        print_table(f"size-independence check ({transport})",
                    ["bytes", "one-way us", "software overhead us"], vrows)
        spread = max(overheads) - min(overheads)
        assert spread < 1e-9, f"layer overheads vary with size ({transport})"
        assert overheads[0] == pytest.approx(layers.one_way_fixed,
                                             rel=1e-6), transport
        benchmark.extra_info[f"{transport}_overhead_us"] = \
            overheads[0] / US
    # The driver layer is where TCP loses: kernel entry dwarfs everything.
    assert TCP_LAYERS.driver_send + TCP_LAYERS.driver_recv > \
        10 * (BIP_LAYERS.driver_send + BIP_LAYERS.driver_recv)
