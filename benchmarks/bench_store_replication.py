"""Replicated checkpoint store — fan-out cost vs survivability payoff.

The ``repro.store`` fabric writes every checkpoint to its primary's disk
and ships k-1 replica copies to placement-chosen peers.  This bench
sweeps the replication factor (k = 1, 2, 3) against cluster size
(8 -> 128 nodes) and measures, in *simulated* seconds:

* ``wave_s``     — one full stop-and-sync checkpoint wave, request to
  commit, with the replica fan-out on the critical path;
* ``recovery_s`` — crash of the rank-0 host (a replica holder) to the
  restarted world, under the restart FT policy;
* ``survived``   — whether the pre-crash committed line was still
  restorable while the holder was down: the entire point of k >= 2, and
  demonstrably False for k = 1 (the only copy died with its node).

Results go to ``benchmarks/BENCH_store.json``; fast mode
(``REPRO_BENCH_FAST=1``) shrinks the sweep and lands in
``BENCH_store_fast.json`` so CI smoke runs never clobber the committed
full-sweep baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cluster import ClusterSpec
from repro.core import StarfishCluster

from bench_helpers import (FAST, checkpoint_once, fast_or, print_table,
                           quiet_gcs, start_checkpointed_app)

SEED = 23
HERE = Path(__file__).parent
OUT_PATH = HERE / "BENCH_store.json"

KS = fast_or((1, 2), (1, 2, 3))
NODES = fast_or((8,), (8, 32, 128))
STATE_BYTES = fast_or(64 * 1024, 1024 * 1024)
NPROCS = 4


def run_cell(nodes: int, k: int) -> dict:
    t_wall = time.perf_counter()
    spec = ClusterSpec(nodes=nodes, seed=SEED, replication_factor=k,
                       gcs_config=quiet_gcs(2.0))
    sf = StarfishCluster.build(spec=spec)
    app_id = start_checkpointed_app(sf, nprocs=NPROCS,
                                    state_bytes=STATE_BYTES,
                                    protocol="stop-and-sync", level="vm")
    store = sf.store
    wave_s = checkpoint_once(sf, app_id)
    committed = store.latest_committed(app_id)
    assert committed is not None

    # Crash the rank-0 host: primary holder of rank 0's copies.
    victim = store.peek(app_id, 0, committed).holder_nodes[0]
    record = sf.any_daemon().registry.get(app_id)
    restarts_before = record.restarts
    t_crash = sf.engine.now
    sf.cluster.crash_node(victim)
    survived = (store.latest_restorable(app_id, range(NPROCS)) == committed)

    # Recovery: failure detection -> rollback cast -> respawned world.
    deadline = t_crash + 120.0
    recovery_s = None
    while sf.engine.now < deadline:
        sf.engine.run(until=sf.engine.now + 0.25)
        rec = sf.any_daemon().registry.get(app_id)
        if rec.restarts > restarts_before and \
                len(rec.done_ranks) < rec.nprocs:
            recovery_s = sf.engine.now - t_crash
            break
    assert recovery_s is not None, f"no restart within 120s (k={k})"

    return {"nodes": nodes, "k": k, "wave_s": round(wave_s, 6),
            "recovery_s": round(recovery_s, 6), "survived": survived,
            "deficit_after_crash": store.replica_deficit(),
            "events": sf.engine.events_processed,
            "wall_s": round(time.perf_counter() - t_wall, 3)}


def sweep() -> list:
    return [run_cell(nodes, k) for nodes in NODES for k in KS]


def build_report(cells: list) -> dict:
    return {"bench": "store_replication", "fast": FAST, "seed": SEED,
            "nprocs": NPROCS, "state_bytes": STATE_BYTES, "configs": cells}


def out_path(fast: bool = FAST) -> Path:
    return HERE / "BENCH_store_fast.json" if fast else OUT_PATH


def run_and_write(fast: bool = FAST) -> dict:
    report = build_report(sweep())
    out_path(fast).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def print_report(report: dict) -> None:
    print_table(
        "Replicated checkpoint store: k copies vs wave cost and recovery",
        ["nodes", "k", "wave sim-s", "recovery sim-s", "line survived",
         "deficit", "wall s"],
        [[c["nodes"], c["k"], f"{c['wave_s']:.4f}",
          f"{c['recovery_s']:.3f}", c["survived"],
          c["deficit_after_crash"], f"{c['wall_s']:.2f}"]
         for c in report["configs"]])


def test_store_replication(benchmark):
    report = benchmark.pedantic(run_and_write, rounds=1, iterations=1)
    print_report(report)
    for c in report["configs"]:
        assert c["wave_s"] > 0 and c["recovery_s"] > 0
        # The survivability contract: with k >= 2 a single holder crash
        # never loses the committed line; with k = 1 it always does.
        assert c["survived"] == (c["k"] >= 2), c


if __name__ == "__main__":
    print_report(run_and_write())
    print(f"\nwrote {out_path()}")
