"""Figure 3 — native (homogeneous) checkpointing time vs data size.

Paper: stop-and-sync protocol, checkpoint time grows linearly with the
checkpointed data; an empty program's 632 KB image takes 0.104061 s on one
node, 0.131898 s on two, 0.149219 s on four; the largest reported file is
135 MB; times are "on the order of seconds".

This bench runs the full stack (daemons, lightweight groups, C/R modules,
disk model) for payloads up to ~135 MB on 1/2/4 nodes and compares against
the paper's anchors and its closed-form model.
"""

import pytest

from repro.calibration import KB, MB, VM_PAYLOAD_FACTOR, \
    NATIVE_EMPTY_IMAGE, native_checkpoint_time
from repro.core import StarfishCluster

from bench_helpers import (FAST, checkpoint_once, fast_or, fit_line,
                           print_table, quiet_gcs, start_checkpointed_app)

#: Target checkpoint-file sizes (per process), spanning the paper's axis.
#: Fast mode keeps all node counts (the anchors need them) but trims the
#: size axis.
FILE_SIZES = fast_or([632 * KB, 4 * MB, 16 * MB],
                     [632 * KB, 4 * MB, 16 * MB, 48 * MB, 96 * MB,
                      135 * MB])
NODE_COUNTS = [1, 2, 4]

PAPER_ANCHORS = {1: 0.104061, 2: 0.131898, 4: 0.149219}


def state_bytes_for_file(file_size: int) -> int:
    """Payload (numpy float64 array bytes) whose native dump is ~file_size."""
    heap = max(0, file_size - NATIVE_EMPTY_IMAGE)
    return int(heap * VM_PAYLOAD_FACTOR)  # layout model inflates by 1/F


def run_fig3():
    results = {}
    for nodes in NODE_COUNTS:
        for file_size in FILE_SIZES:
            sf = StarfishCluster.build(nodes=nodes, gcs_config=quiet_gcs())
            app_id = start_checkpointed_app(
                sf, nprocs=nodes, state_bytes=state_bytes_for_file(file_size),
                protocol="stop-and-sync", level="native")
            duration = checkpoint_once(sf, app_id)
            stored = sf.store.peek(app_id, 0,
                                   sf.store.latest_committed(app_id))
            results[(nodes, file_size)] = (duration, stored.nbytes)
    return results


def test_fig3_native_checkpoint(benchmark):
    results = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    rows = []
    for nodes in NODE_COUNTS:
        for file_size in FILE_SIZES:
            duration, actual_file = results[(nodes, file_size)]
            model = native_checkpoint_time(actual_file - NATIVE_EMPTY_IMAGE,
                                           nodes)
            rows.append([nodes, f"{actual_file / MB:.2f}",
                         f"{duration:.4f}", f"{model:.4f}",
                         f"{100 * (duration - model) / model:+.1f}%"])
    print_table("Figure 3: native checkpoint time (stop-and-sync)",
                ["nodes", "file MB", "measured s", "model s", "delta"],
                rows)
    anchor_rows = []
    for nodes, paper in PAPER_ANCHORS.items():
        measured = results[(nodes, FILE_SIZES[0])][0]
        anchor_rows.append([nodes, f"{paper:.6f}", f"{measured:.6f}",
                            f"{100 * (measured - paper) / paper:+.1f}%"])
        benchmark.extra_info[f"anchor_{nodes}n"] = measured
        # Shape check: within 12% of the paper's published point (the
        # simulated protocol rounds add a little over the closed model).
        assert measured == pytest.approx(paper, rel=0.12), nodes
    print_table("Figure 3 anchors (632 KB empty image)",
                ["nodes", "paper s", "measured s", "delta"], anchor_rows)

    # Linearity in data size (the paper's stated shape), per node count.
    for nodes in NODE_COUNTS:
        xs = [results[(nodes, f)][1] for f in FILE_SIZES]
        ys = [results[(nodes, f)][0] for f in FILE_SIZES]
        slope, _b, r2 = fit_line(xs, ys)
        assert r2 > 0.999, f"not linear for {nodes} nodes (R2={r2})"
        assert slope > 0
    # Order seconds for the biggest files (paper: "order of seconds") —
    # only meaningful on the full size axis.
    if not FAST:
        assert 5 < results[(4, FILE_SIZES[-1])][0] < 60
    # More nodes => slower (barrier/commit growth), at every size.
    for f in FILE_SIZES:
        assert (results[(1, f)][0] < results[(2, f)][0]
                < results[(4, f)][0])
