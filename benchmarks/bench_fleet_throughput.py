"""Fleet control plane — admission throughput vs cluster size.

The ``repro.fleet`` scheduler admits multi-tenant jobs against quotas
and places them through the ring placement policy; the controller ticks
every 0.25 simulated seconds.  This bench sweeps cluster size and
measures, in *simulated* seconds:

* ``admit_latency_s`` — mean submit-to-admission latency across the
  batch (every job is submitted at t=0, so this is the queue drain);
* ``makespan_s``      — submit of the first job to completion of the
  last;
* ``jobs_per_sim_s``  — completed jobs per simulated second.

Results go to ``benchmarks/BENCH_fleet.json``; fast mode
(``REPRO_BENCH_FAST=1``) shrinks the sweep and lands in
``BENCH_fleet_fast.json`` so CI smoke runs never clobber the committed
full-sweep baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import ClusterSpec
from repro.core import AppSpec, FaultPolicy, StarfishCluster
from repro.apps import ComputeSleep
from repro.fleet import FleetController, FleetOracle, JobState

from bench_helpers import FAST, fast_or, print_table, quiet_gcs

SEED = 29
HERE = Path(__file__).parent
OUT_PATH = HERE / "BENCH_fleet.json"

NODE_COUNTS = fast_or((4, 8), (4, 8, 16, 32))
JOBS = fast_or(6, 24)


def run_cell(nodes: int) -> dict:
    t_wall = time.perf_counter()
    sf = StarfishCluster.build(spec=ClusterSpec(
        nodes=nodes, seed=SEED, gcs_config=quiet_gcs()))
    controller = FleetController(sf)   # unlimited quotas
    start = sf.engine.now
    jobs = [controller.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 3, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        tenant=f"t{i % 3}")) for i in range(JOBS)]
    deadline = start + 300.0
    while controller.pending_work() and sf.engine.now < deadline:
        sf.engine.run(until=sf.engine.now + 0.5)
    controller.close()
    assert all(j.state == JobState.DONE for j in jobs), \
        [(j.job_id, j.state) for j in jobs if j.state != JobState.DONE]
    FleetOracle().verify(controller.scheduler)

    latencies = [j.admitted_at - j.submit_time for j in jobs]
    makespan = max(j.finished_at for j in jobs) - start
    return {"nodes": nodes, "jobs": len(jobs),
            "admit_latency_s": round(sum(latencies) / len(latencies), 6),
            "makespan_s": round(makespan, 6),
            "jobs_per_sim_s": round(len(jobs) / makespan, 4),
            "events": sf.engine.events_processed,
            "wall_s": round(time.perf_counter() - t_wall, 3)}


def sweep() -> list:
    return [run_cell(nodes) for nodes in NODE_COUNTS]


def build_report(cells: list) -> dict:
    return {"bench": "fleet_throughput", "fast": FAST, "seed": SEED,
            "jobs": JOBS, "configs": cells}


def out_path(fast: bool = FAST) -> Path:
    return HERE / "BENCH_fleet_fast.json" if fast else OUT_PATH


def run_and_write(fast: bool = FAST) -> dict:
    report = build_report(sweep())
    out_path(fast).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def print_report(report: dict) -> None:
    print_table(
        "Fleet control plane: admission latency and job throughput",
        ["nodes", "jobs", "admit sim-s", "makespan sim-s", "jobs/sim-s",
         "wall s"],
        [[c["nodes"], c["jobs"], f"{c['admit_latency_s']:.4f}",
          f"{c['makespan_s']:.3f}", f"{c['jobs_per_sim_s']:.3f}",
          f"{c['wall_s']:.2f}"]
         for c in report["configs"]])


def test_fleet_throughput(benchmark):
    report = benchmark.pedantic(run_and_write, rounds=1, iterations=1)
    print_report(report)
    for c in report["configs"]:
        # Admission happens within a handful of controller ticks.
        assert 0 < c["admit_latency_s"] < 5.0, c
        assert c["makespan_s"] > 0 and c["jobs_per_sim_s"] > 0


if __name__ == "__main__":
    print_report(run_and_write())
    print(f"\nwrote {out_path()}")
