"""Recovery modes — message-logging solo restart vs rollback recovery.

The same communication-heavy Jacobi workload is crashed mid-exchange
(one app-hosting node, right after the victim rank's first committed
checkpoint) under each registered recovery mode and the bench measures,
in *simulated* seconds:

* ``failure_free_s``    — completion time of the undisturbed run (the
  protocol's steady-state overhead: pessimistic sender-logging pays a
  disk write per send, causal batches log IO into checkpoints);
* ``completion_s``      — completion time of the crashed run;
* ``recovery_penalty_s``— the difference: what the crash actually cost;
* ``ranks_restarted``   — cluster-wide ``daemon.ranks_restarted``: the
  headline number.  The logging protocols' :class:`SoloReplayPlanner`
  respawns *only* the crashed rank (1); the rollback planners restart
  the whole world (>= 2 — uncoordinated dominoes, coordinated rolls the
  full line); active replication respawns *nothing* (0 — a surviving
  copy is promoted in place, and the failure-free column is the
  replication tax: every send rides the total-order cast and every rank
  runs twice).

Both runs of every cell must produce identical per-rank results — replay
reconvergence is asserted, not assumed.  Results go to
``benchmarks/BENCH_recovery.json``; fast mode (``REPRO_BENCH_FAST=1``)
shrinks the protocol set and lands in ``BENCH_recovery_fast.json`` so CI
smoke runs never clobber the committed full-sweep baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import StarfishCluster
from repro.core.appspec import AppSpec, CheckpointConfig
from repro.core.policies import FaultPolicy

from bench_helpers import FAST, fast_or, print_table

SEED = 7
NODES = 5
NPROCS = 4
HERE = Path(__file__).parent
OUT_PATH = HERE / "BENCH_recovery.json"

PROTOCOLS = fast_or(("sender-logging", "uncoordinated", "replication"),
                    ("sender-logging", "causal-logging",
                     "uncoordinated", "stop-and-sync", "replication"))
#: Long enough that every protocol is still mid-run when the crash lands
#: (pessimistic logging stretches iterations ~20x in simulated time).
ITERATIONS = 400


def _run(protocol: str, crash: bool):
    from repro.apps import Jacobi1D
    sf = StarfishCluster.build(nodes=NODES, seed=SEED)
    spec = AppSpec(
        program=Jacobi1D, nprocs=NPROCS,
        params={"n": 256, "iterations": ITERATIONS, "iters_per_step": 10,
                "compute_ns_per_cell": 30000},
        ft_policy=FaultPolicy.RESTART,
        # VM-level images: the fast Fig-4 write path.  Native 650 KB
        # images at this interval would keep the disk head ~70% busy and
        # the pessimistic per-send log writes would measure head queueing
        # instead of the protocols' own costs.
        checkpoint=CheckpointConfig(
            protocol=protocol, level="vm", interval=0.15,
            replicas=2 if protocol == "replication" else 1))
    handle = sf.submit(spec)
    if crash:
        if protocol == "replication":
            # Replication takes no checkpoints to wait on; crash rank 1's
            # primary host at a fixed point well into the exchange.
            sf.engine.run(until=sf.engine.now + 1.0)
        else:
            # Crash rank 1's host right after its first committed
            # checkpoint.
            while not sf.store.versions_of(handle.app_id, 1):
                sf.engine.run(until=sf.engine.now + 0.05)
                assert sf.engine.now < 10.0, "no rank-1 checkpoint"
        sf.crash_node(handle._record().placement[1])
    results = sf.run_to_completion(handle, timeout=240.0)
    restarted = sf.engine.metrics.group_by("daemon.ranks_restarted", "app")
    return {"results": results, "sim_s": sf.engine.now,
            "restarts": handle.restarts,
            "ranks_restarted": restarted.get(handle.app_id, 0)}


def run_cell(protocol: str) -> dict:
    t_wall = time.perf_counter()
    golden = _run(protocol, crash=False)
    crashed = _run(protocol, crash=True)
    assert crashed["results"] == golden["results"], \
        f"{protocol}: post-crash results diverged from the golden run"
    return {"protocol": protocol,
            "solo": protocol.endswith("-logging"),
            "failure_free_s": round(golden["sim_s"], 6),
            "completion_s": round(crashed["sim_s"], 6),
            "recovery_penalty_s": round(crashed["sim_s"] - golden["sim_s"],
                                        6),
            "restarts": crashed["restarts"],
            "ranks_restarted": crashed["ranks_restarted"],
            "wall_s": round(time.perf_counter() - t_wall, 3)}


def sweep() -> list:
    return [run_cell(p) for p in PROTOCOLS]


def build_report(cells: list) -> dict:
    return {"bench": "recovery_modes", "fast": FAST, "seed": SEED,
            "nodes": NODES, "nprocs": NPROCS, "iterations": ITERATIONS,
            "configs": cells}


def out_path(fast: bool = FAST) -> Path:
    return HERE / "BENCH_recovery_fast.json" if fast else OUT_PATH


def run_and_write(fast: bool = FAST) -> dict:
    report = build_report(sweep())
    out_path(fast).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def print_report(report: dict) -> None:
    print_table(
        "Recovery modes: solo log-replay vs rollback (one host crash)",
        ["protocol", "failure-free sim-s", "crashed sim-s", "penalty",
         "ranks restarted", "wall s"],
        [[c["protocol"], f"{c['failure_free_s']:.3f}",
          f"{c['completion_s']:.3f}", f"{c['recovery_penalty_s']:.3f}",
          c["ranks_restarted"], f"{c['wall_s']:.2f}"]
         for c in report["configs"]])


def test_recovery_modes(benchmark):
    report = benchmark.pedantic(run_and_write, rounds=1, iterations=1)
    print_report(report)
    for c in report["configs"]:
        assert c["restarts"] >= 1
        # The acceptance gate: replication restarts nothing (failover),
        # message logging restarts exactly the crashed rank, and every
        # rollback planner restarts at least two.
        if c["protocol"] == "replication":
            assert c["ranks_restarted"] == 0, c
        elif c["solo"]:
            assert c["ranks_restarted"] == 1, c
        else:
            assert c["ranks_restarted"] >= 2, c


if __name__ == "__main__":
    print_report(run_and_write())
    print(f"\nwrote {out_path()}")
