"""Ablation — diskless (fast-network) checkpointing vs the IDE disk.

The paper's §7 closes with: "developing newer and faster C/R protocols, in
particular ones that utilize fast networks, is a natural research
direction."  This bench implements that direction (see
:mod:`repro.ckpt.protocols.diskless`) and measures what the 1999 hardware
balance implies: the IDE disk sustains ~6.5 MB/s while BIP/Myrinet moves
~30 MB/s, so mirroring checkpoint images into a buddy's memory beats the
disk even though every image crosses the network twice.
"""

import pytest

from repro.calibration import MB
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.apps import ComputeSleep

from bench_helpers import checkpoint_once, fast_or, print_table, quiet_gcs, \
    start_checkpointed_app

PAYLOADS = fast_or([0, 2 * MB], [0, 2 * MB, 8 * MB, 24 * MB])
NPROCS = 4


def wave(protocol, payload):
    sf = StarfishCluster.build(nodes=NPROCS, gcs_config=quiet_gcs())
    app_id = start_checkpointed_app(sf, nprocs=NPROCS, state_bytes=payload,
                                    protocol=protocol, level="native")
    duration = checkpoint_once(sf, app_id)
    disk_bytes = sum(n.disk.bytes_written
                     for n in sf.cluster.nodes.values())
    net_bytes = sf.cluster.myrinet.bytes_sent
    return duration, disk_bytes, net_bytes


def run_ablation():
    out = {}
    for protocol in ("stop-and-sync", "diskless"):
        for payload in PAYLOADS:
            out[(protocol, payload)] = wave(protocol, payload)
    return out


def test_ablation_diskless_checkpointing(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for payload in PAYLOADS:
        disk_t = out[("stop-and-sync", payload)][0]
        dl_t, dl_disk, dl_net = out[("diskless", payload)]
        rows.append([f"{payload / MB:.0f}", f"{disk_t:.3f}", f"{dl_t:.3f}",
                     f"{disk_t / dl_t:.1f}x"])
    print_table(
        f"Diskless vs disk checkpointing (native level, {NPROCS} ranks)",
        ["payload MB/rank", "disk s", "diskless s", "speedup"], rows)

    for payload in PAYLOADS:
        disk_t = out[("stop-and-sync", payload)][0]
        dl_t, dl_disk, dl_net = out[("diskless", payload)]
        # Diskless never touches the disks and is substantially faster.
        assert dl_disk == 0
        assert dl_t < disk_t / 2, payload
        # The images really crossed the fast network (2 mirrors each).
        if payload:
            assert dl_net > 2 * NPROCS * payload
    big = PAYLOADS[-1]
    benchmark.extra_info["speedup_24MB"] = \
        out[("stop-and-sync", big)][0] / out[("diskless", big)][0]
