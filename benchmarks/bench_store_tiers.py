"""Multi-level checkpoint store — tier-hit recovery speed + delta savings.

Two questions from ISSUE 7, answered in simulated seconds/bytes:

* **Shrink-to-fit recovery**: with the full L1/L2/L3 hierarchy, a
  restart serves its reads from partner MEMORY (ReStore's near-instant
  single-failure recovery); with only the L3 fabric configured the same
  crash pays a remote-disk read plus the wire.  ``restore_read_s`` is
  the crashed rank's post-crash restore read — the part of a
  single-rank restart the surviving tier decides; ``recovery_s`` is the
  end-to-end crash -> world restarted time (failure-detection
  dominated, reported for context, not compared).
* **Delta capture**: the jacobi stencil under stop-and-sync dumps VM
  images every interval; with ``delta_depth=4`` the store writes only
  changed blocks between full bases.  ``ckpt_bytes`` (the store's
  bytes-written counter) must drop vs full dumps.

Results go to ``benchmarks/BENCH_tiers.json``; fast mode
(``REPRO_BENCH_FAST=1``) shrinks the sweep and writes
``BENCH_tiers_fast.json`` so CI never clobbers the committed baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import ClusterSpec
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster

from bench_helpers import (FAST, checkpoint_once, fast_or, print_table,
                           quiet_gcs, start_checkpointed_app)

SEED = 29
HERE = Path(__file__).parent
OUT_PATH = HERE / "BENCH_tiers.json"

NODES = 8
NPROCS = 4
STATE_BYTES = fast_or(64 * 1024, 1024 * 1024)
JACOBI_ITERS = fast_or(60, 150)

#: Tier configurations under test: the full hierarchy (restores hit L1
#: partner memory) vs fabric-only (restores pay a remote disk + wire).
RECOVERY_CONFIGS = (
    ("l1-memory", ("memory", "disk", "fabric")),
    ("l3-fabric", ("fabric",)),
)
DELTA_DEPTHS = (0, 4)


def _read_cost(sf, reader_node, app_id: str, rank: int,
               version: int) -> float:
    """Simulated cost of one restore read issued from ``reader_node``."""
    store = sf.store
    t0 = sf.engine.now

    def _go():
        yield from store.read(reader_node, app_id, rank, version)

    proc = sf.engine.process(_go(), name="bench-tier-read")
    sf.engine.run(until=proc)
    return sf.engine.now - t0


def run_recovery_cell(label: str, tiers) -> dict:
    t_wall = time.perf_counter()
    spec = ClusterSpec(nodes=NODES, seed=SEED, store_tiers=tiers,
                       replication_factor=2, gcs_config=quiet_gcs(2.0))
    sf = StarfishCluster.build(spec=spec)
    app_id = start_checkpointed_app(sf, nprocs=NPROCS,
                                    state_bytes=STATE_BYTES,
                                    protocol="stop-and-sync", level="vm")
    store = sf.store
    wave_s = checkpoint_once(sf, app_id)
    committed = store.latest_committed(app_id)
    assert committed is not None

    # Crash rank 0's host; the line must survive on the other tiers.
    victim = sf.books[app_id][0][0]
    record = sf.any_daemon().registry.get(app_id)
    restarts_before = record.restarts
    t_crash = sf.engine.now
    sf.cluster.crash_node(victim)
    survived = (store.latest_restorable(app_id, range(NPROCS)) == committed)

    # The crashed rank's restore read, issued from a surviving node — the
    # tier-dependent leg of the single-rank restart: an L1 partner-memory
    # hit vs the L3 remote-disk + wire path.
    reader = next(n for n in sf.cluster.nodes.values()
                  if n.node_id != victim and n.is_up)
    restore_read_s = _read_cost(sf, reader, app_id, 0, committed)

    deadline = t_crash + 120.0
    recovery_s = None
    while sf.engine.now < deadline:
        sf.engine.run(until=sf.engine.now + 0.25)
        rec = sf.any_daemon().registry.get(app_id)
        if rec.restarts > restarts_before and \
                len(rec.done_ranks) < rec.nprocs:
            recovery_s = sf.engine.now - t_crash
            break
    assert recovery_s is not None, f"no restart within 120s ({label})"

    return {"config": label, "tiers": "+".join(tiers),
            "wave_s": round(wave_s, 6),
            "restore_read_s": round(restore_read_s, 6),
            "recovery_s": round(recovery_s, 6), "survived": survived,
            "events": sf.engine.events_processed,
            "wall_s": round(time.perf_counter() - t_wall, 3)}


def run_delta_cell(delta_depth: int) -> dict:
    from repro.apps import Jacobi1D
    t_wall = time.perf_counter()
    spec = ClusterSpec(nodes=NODES, seed=SEED,
                       store_tiers=("memory", "disk", "fabric"),
                       replication_factor=2, delta_depth=delta_depth,
                       gcs_config=quiet_gcs(2.0))
    sf = StarfishCluster.build(spec=spec)
    handle = sf.submit(AppSpec(
        program=Jacobi1D, nprocs=3,
        params={"n": 120, "iterations": JACOBI_ITERS, "iters_per_step": 10,
                "compute_ns_per_cell": 500_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.25)))
    sf.run_to_completion(handle)
    stats = sf.store.stats
    return {"config": f"delta-depth-{delta_depth}",
            "delta_depth": delta_depth,
            "ckpt_writes": stats["writes"],
            "ckpt_bytes": stats["bytes_written"],
            "wall_s": round(time.perf_counter() - t_wall, 3)}


def sweep() -> dict:
    return {"recovery": [run_recovery_cell(label, tiers)
                         for label, tiers in RECOVERY_CONFIGS],
            "delta": [run_delta_cell(d) for d in DELTA_DEPTHS]}


def build_report(cells: dict) -> dict:
    return {"bench": "store_tiers", "fast": FAST, "seed": SEED,
            "nodes": NODES, "nprocs": NPROCS, "state_bytes": STATE_BYTES,
            "jacobi_iterations": JACOBI_ITERS, **cells}


def out_path(fast: bool = FAST) -> Path:
    return HERE / "BENCH_tiers_fast.json" if fast else OUT_PATH


def run_and_write(fast: bool = FAST) -> dict:
    report = build_report(sweep())
    out_path(fast).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def print_report(report: dict) -> None:
    print_table(
        "Tiered store: restore path by fastest surviving tier",
        ["config", "tiers", "wave sim-s", "restore-read sim-s",
         "recovery sim-s", "line survived", "wall s"],
        [[c["config"], c["tiers"], f"{c['wave_s']:.4f}",
          f"{c['restore_read_s']:.4f}", f"{c['recovery_s']:.3f}",
          c["survived"], f"{c['wall_s']:.2f}"]
         for c in report["recovery"]])
    print_table(
        "Delta checkpoints: jacobi bytes written, full vs incremental",
        ["config", "writes", "ckpt bytes", "wall s"],
        [[c["config"], c["ckpt_writes"], c["ckpt_bytes"],
          f"{c['wall_s']:.2f}"] for c in report["delta"]])


def test_store_tiers(benchmark):
    report = benchmark.pedantic(run_and_write, rounds=1, iterations=1)
    print_report(report)
    l1, l3 = report["recovery"]
    assert l1["survived"] and l3["survived"]
    # The hierarchy's point: the crashed rank's restore read is served
    # from a surviving L1 partner's memory, beating the L3 remote-disk
    # path.  (End-to-end recovery_s is failure-detection dominated and
    # identical across configs by design, so it is not compared.)
    assert l1["restore_read_s"] < l3["restore_read_s"], (l1, l3)
    full, delta = report["delta"]
    assert delta["ckpt_bytes"] < full["ckpt_bytes"], (full, delta)


if __name__ == "__main__":
    print_report(run_and_write())
    print(f"\nwrote {out_path()}")
