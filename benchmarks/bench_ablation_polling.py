"""Ablation — the polling thread (paper §2.2.1).

The paper: "A nice feature of the polling thread is that it eliminates
much of the runtime overhead of issuing a receive operation at the
application level ... when using the regular TCP/IP stack, receiving a
message from the network involves a system call and user-level/kernel
interaction, which is costly."

This bench measures application-level round-trip latency with the polling
thread enabled (Starfish's design) vs disabled (each receive enters the
kernel itself), on both transports.
"""

import pytest

from repro.apps import PingPong
from repro.calibration import BLOCKING_RECV_SYSCALL, US
from repro.core import AppSpec, StarfishCluster

from bench_helpers import fast_or, print_table, quiet_gcs

SIZES = fast_or([1, 1024], [1, 1024, 16384])
REPS = fast_or(5, 50)


def run_ablation():
    out = {}
    for transport in ("bip-myrinet", "tcp-ethernet"):
        for polling in (True, False):
            sf = StarfishCluster.build(nodes=2, gcs_config=quiet_gcs())
            results = sf.run(AppSpec(program=PingPong, nprocs=2,
                                     params={"sizes": SIZES, "reps": REPS},
                                     transport=transport, polling=polling),
                             timeout=2000)
            out[(transport, polling)] = results[0]
    return out


def test_ablation_polling_thread(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for transport in ("bip-myrinet", "tcp-ethernet"):
        for size in SIZES:
            with_poll = out[(transport, True)][size]
            without = out[(transport, False)][size]
            rows.append([transport, size,
                         f"{with_poll / US:.1f}", f"{without / US:.1f}",
                         f"{(without - with_poll) / US:+.1f}"])
    print_table("Polling thread ablation: RTT (us)",
                ["transport", "bytes", "polling", "blocking recv", "delta"],
                rows)

    # Each round trip contains two receives; disabling the polling thread
    # adds the blocking-receive kernel path to each of them.
    for transport in ("bip-myrinet", "tcp-ethernet"):
        for size in SIZES:
            delta = out[(transport, False)][size] - \
                out[(transport, True)][size]
            assert delta == pytest.approx(2 * BLOCKING_RECV_SYSCALL,
                                          rel=0.01), (transport, size)
    # Relative impact is dramatic on the fast network (the whole point of
    # pairing a user-level NI with a polling thread).
    bip_ratio = out[("bip-myrinet", False)][1] / out[("bip-myrinet", True)][1]
    benchmark.extra_info["bip_slowdown_1B"] = bip_ratio
    assert bip_ratio > 3.0
