"""Fault-campaign matrix — the standard campaign across every C/R
protocol and fault-tolerance policy (ISSUE 2 acceptance gate).

The same declarative :data:`standard` campaign (app-host crash, recovery,
spare-node partition window, Ethernet frame-loss window) is replayed
against all 4 checkpoint/restart protocols x 3 FT policies.  Every cell
must come back green — completed with zero invariant violations (under
the kill policy, green means the failure *surfaced* cleanly) — and one
cell is run twice to prove the same-seed byte-identity guarantee.
"""

from repro.faults import CampaignRunner

from bench_helpers import fast_or, print_table

PROTOCOLS = fast_or(("uncoordinated",),
                    ("stop-and-sync", "chandy-lamport", "uncoordinated",
                     "diskless"))
POLICIES = ("kill", "view-notify", "restart")
SEED = 7


def run_cell(protocol, policy):
    report = CampaignRunner("standard", seed=SEED, protocol=protocol,
                            policy=policy).run(raise_on_error=False)
    d = report.data
    return {"protocol": protocol, "policy": policy, "ok": report.ok,
            "status": d["status"],
            "violations": sum(len(c["violations"]) for c in d["checks"]),
            "actions": len(d["actions"]),
            "restarts": d["app"]["restarts"],
            "app_status": d["app"]["status"],
            "final_t": d["engine"]["final_time"]}


def run_matrix():
    cells = [run_cell(pr, po) for pr in PROTOCOLS for po in POLICIES]
    # Same seed, same cell => byte-identical report.
    j1 = CampaignRunner("standard", seed=SEED, protocol="uncoordinated",
                        policy="restart").run().to_json()
    j2 = CampaignRunner("standard", seed=SEED, protocol="uncoordinated",
                        policy="restart").run().to_json()
    return cells, j1 == j2


def test_campaign_matrix(benchmark):
    cells, identical = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    print_table(
        "Standard fault campaign x C/R protocol x FT policy",
        ["protocol", "policy", "app status", "restarts", "actions",
         "violations", "sim s", "verdict"],
        [[c["protocol"], c["policy"], c["app_status"],
          c["restarts"] if c["restarts"] is not None else "-",
          c["actions"], c["violations"], f"{c['final_t']:.2f}",
          "green" if c["ok"] else "RED"] for c in cells])
    print(f"\nsame-seed byte-identical reports: {identical}")

    red = [(c["protocol"], c["policy"], c["status"], c["violations"])
           for c in cells if not c["ok"]]
    assert not red, f"red campaign cells: {red}"
    assert identical, "same-seed campaign reports differ"
