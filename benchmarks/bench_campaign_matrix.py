"""Fault-campaign matrix — the standard campaign across every C/R
protocol and fault-tolerance policy (ISSUE 2 acceptance gate).

The same declarative :data:`standard` campaign (app-host crash, recovery,
spare-node partition window, Ethernet frame-loss window) is replayed
against every registered C/R protocol (``repro.ckpt.protocols.PROTOCOLS``,
message-logging included) x 3 FT policies, each over
BOTH checkpoint stores — the legacy idealized single-copy store and the
``repro.store`` replicated fabric at k=2.  Every cell must come back
green — completed with zero invariant violations (under the kill policy,
green means the failure *surfaced* cleanly) — and one cell per store is
run twice to prove the same-seed byte-identity guarantee.
"""

from repro.ckpt.protocols import PROTOCOLS as PROTOCOL_REGISTRY
from repro.cluster import ClusterSpec
from repro.faults import CampaignRunner

from bench_helpers import fast_or, print_table

PROTOCOLS = fast_or(("uncoordinated",), tuple(sorted(PROTOCOL_REGISTRY)))
POLICIES = ("kill", "view-notify", "restart")
#: Cluster-spec override per store column (None = the campaign default,
#: i.e. the legacy idealized store).
STORES = (("legacy", None),
          ("replicated-k2", ClusterSpec(replication_factor=2)))
SEED = 7


def run_cell(protocol, policy, store_name, spec):
    report = CampaignRunner("standard", seed=SEED, protocol=protocol,
                            policy=policy,
                            cluster_spec=spec).run(raise_on_error=False)
    d = report.data
    return {"protocol": protocol, "policy": policy, "store": store_name,
            "ok": report.ok,
            "status": d["status"],
            "violations": sum(len(c["violations"]) for c in d["checks"]),
            "actions": len(d["actions"]),
            "restarts": d["app"]["restarts"],
            "app_status": d["app"]["status"],
            "final_t": d["engine"]["final_time"]}


def run_matrix():
    cells = [run_cell(pr, po, sn, spec) for pr in PROTOCOLS
             for po in POLICIES for sn, spec in STORES]
    # Same seed, same cell => byte-identical report — per store column.
    identical = True
    for _name, spec in STORES:
        j1 = CampaignRunner("standard", seed=SEED, protocol="uncoordinated",
                            policy="restart", cluster_spec=spec
                            ).run().to_json()
        j2 = CampaignRunner("standard", seed=SEED, protocol="uncoordinated",
                            policy="restart", cluster_spec=spec
                            ).run().to_json()
        identical = identical and j1 == j2
    return cells, identical


def test_campaign_matrix(benchmark):
    cells, identical = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    print_table(
        "Standard fault campaign x C/R protocol x FT policy x store",
        ["protocol", "policy", "store", "app status", "restarts", "actions",
         "violations", "sim s", "verdict"],
        [[c["protocol"], c["policy"], c["store"], c["app_status"],
          c["restarts"] if c["restarts"] is not None else "-",
          c["actions"], c["violations"], f"{c['final_t']:.2f}",
          "green" if c["ok"] else "RED"] for c in cells])
    print(f"\nsame-seed byte-identical reports: {identical}")

    red = [(c["protocol"], c["policy"], c["store"], c["status"],
            c["violations"]) for c in cells if not c["ok"]]
    assert not red, f"red campaign cells: {red}"
    assert identical, "same-seed campaign reports differ"
