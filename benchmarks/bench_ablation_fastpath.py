"""Ablation — the fast data path vs routing data through the daemons.

Paper §2.2: "we employ a fast data path between the MPI implementation
and the application module, that does not go through the object bus.  This
ensures the required low latency for data messages" — and data messages
never traverse the daemons either, unlike coordination traffic.

This bench measures the latency of delivering one application-level
message (a) on the fast path (MPI over BIP/Myrinet) and (b) through the
daemon relay that coordination messages use (group handler -> daemon ->
lightweight group over Ethernet -> daemon -> group handler).
"""

import pytest

from repro.calibration import US
from repro.core import AppSpec, FaultPolicy, StarfishCluster
from repro.core.program import StarfishProgram

from bench_helpers import print_table, quiet_gcs

# Fast mode (REPRO_BENCH_FAST=1): nothing to shrink — the workload is a
# single message each way on a 2-node cluster, already smoke-sized.


class PathRacer(StarfishProgram):
    """Rank 0 sends one message each way; ranks time the delivery."""

    def setup(self, ctx):
        self.state.update(phase=0, fast_t=None, coord_sent=None,
                          coord_t=None)

    def step(self, ctx):
        mpi = ctx.mpi
        if self.state["phase"] == 0:        # fast path measurement
            if ctx.rank == 0:
                yield from mpi.send(ctx.now, dest=1, tag=1, size=64)
            elif ctx.rank == 1:
                sent = yield from mpi.recv(source=0, tag=1)
                self.state["fast_t"] = ctx.now - sent
            yield from mpi.barrier()
            self.state["phase"] = 1
        elif self.state["phase"] == 1:      # daemon-relay measurement
            if ctx.rank == 0:
                ctx.coordinate(("stamp", ctx.now))
            # wait until the coordination message lands everywhere
            while self.state["coord_t"] is None:
                yield from ctx.sleep(0.0001)
            yield from mpi.barrier()
            self.state["phase"] = 2

    def on_coordination(self, ctx, source, payload):
        if payload[0] == "stamp" and ctx.rank == 1:
            self.state["coord_t"] = ctx.now - payload[1]
        elif ctx.rank != 1:
            self.state["coord_t"] = 0.0

    def is_done(self, ctx):
        return self.state["phase"] >= 2

    def finalize(self, ctx):
        return (self.state["fast_t"], self.state["coord_t"])


def run_race():
    sf = StarfishCluster.build(nodes=2, gcs_config=quiet_gcs())
    results = sf.run(AppSpec(program=PathRacer, nprocs=2,
                             ft_policy=FaultPolicy.KILL), timeout=200)
    fast_t, coord_t = results[1]
    return fast_t, coord_t


def test_ablation_fastpath_vs_daemon_relay(benchmark):
    fast_t, coord_t = benchmark.pedantic(run_race, rounds=1, iterations=1)
    print_table(
        "Fast path vs daemon relay (one 64-byte app-level message)",
        ["path", "latency us"],
        [["fast path (MPI/VNI over BIP-Myrinet)", f"{fast_t / US:.1f}"],
         ["through daemons (group handler + lwg over Ethernet)",
          f"{coord_t / US:.1f}"]])
    benchmark.extra_info["fast_us"] = fast_t / US
    benchmark.extra_info["relay_us"] = coord_t / US
    # The design claim: the daemon path (local TCP hops + Ethernet +
    # sequencing) is several times slower — fine for control traffic,
    # disastrous for data.
    assert coord_t > 6 * fast_t
    assert fast_t < 100 * US
