"""Ablation — the C/R protocols side by side (the paper's unique feature).

"Starfish can run multiple C/R protocols side by side, which enables
comparing various C/R protocols on the same platform."  This bench does
exactly that: the same Jacobi application under stop-and-sync,
Chandy–Lamport, and uncoordinated checkpointing, measuring

* how long a checkpoint wave takes end-to-end,
* how long the application is actually *blocked* (the non-blocking
  argument for Chandy–Lamport),
* total bytes written to stable storage,
* application completion time (net overhead).
"""

import pytest

from repro.apps import Jacobi1D
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster

from bench_helpers import fast_or, print_table, quiet_gcs

PARAMS = {"n": 512, "iterations": fast_or(100, 300), "iters_per_step": 10,
          "compute_ns_per_cell": 200_000}
INTERVAL = 1.0


def run_one(protocol):
    sf = StarfishCluster.build(nodes=4, gcs_config=quiet_gcs())
    checkpoint = (CheckpointConfig(protocol=protocol, level="vm",
                                   interval=INTERVAL)
                  if protocol else CheckpointConfig())
    t0 = sf.engine.now
    handle = sf.submit(AppSpec(program=Jacobi1D, nprocs=4, params=PARAMS,
                               ft_policy=FaultPolicy.RESTART if protocol
                               else FaultPolicy.KILL,
                               checkpoint=checkpoint))

    # Grab the rank-0 process handle (it survives the whole run here) so
    # we can read its accumulated frozen time at the end.
    sf.engine.run(until=sf.engine.now + 0.5)
    rank0 = None
    for daemon in sf.live_daemons():
        rank0 = daemon.handles.get((handle.app_id, 0)) or rank0
    sf.run_to_completion(handle, timeout=3000)
    elapsed = sf.engine.now - t0
    ckpts = len(sf.store.versions_of(handle.app_id, 0))
    blocked = rank0.paused_accum if rank0 is not None else 0.0
    return {"elapsed": elapsed, "ckpts": ckpts,
            "bytes": sf.store.stats["bytes_written"], "blocked": blocked}


def run_all():
    return {name: run_one(name)
            for name in (None, "stop-and-sync", "chandy-lamport",
                         "uncoordinated", "diskless")}


def test_ablation_protocols_side_by_side(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = out[None]["elapsed"]
    rows = []
    for name in (None, "stop-and-sync", "chandy-lamport",
                 "uncoordinated", "diskless"):
        r = out[name]
        rows.append([name or "(no C/R baseline)", f"{r['elapsed']:.2f}",
                     r["ckpts"], f"{r['bytes'] / 1e6:.1f}",
                     f"{r['blocked'] * 1e3:.0f}",
                     f"{100 * (r['elapsed'] - base) / base:+.2f}%"])
    print_table(
        "C/R protocols side by side (Jacobi, 4 ranks, ckpt every "
        f"{INTERVAL:.0f}s)",
        ["protocol", "completion s", "ckpts/rank", "MB written",
         "blocked ms", "overhead"], rows)

    ss, cl, uc = (out["stop-and-sync"], out["chandy-lamport"],
                  out["uncoordinated"])
    # All protocols actually checkpointed.
    assert ss["ckpts"] >= 2 and cl["ckpts"] >= 2 and uc["ckpts"] >= 2
    # Chandy–Lamport blocks the application far less than stop-and-sync.
    assert cl["blocked"] < ss["blocked"]
    # Uncoordinated has no global synchronization at all.
    assert uc["blocked"] <= ss["blocked"]
    # Overheads are small either way (VM-level files are tiny here).
    for r in (ss, cl, uc):
        assert (r["elapsed"] - base) / base < 0.15
    benchmark.extra_info.update(
        {k or "baseline": v["elapsed"] for k, v in out.items()})
