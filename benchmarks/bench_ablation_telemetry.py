"""Ablation — cost of the telemetry substrate on the hottest path.

The registry is designed to be zero-cost-ish: hot paths hold instrument
handles (one attribute bump per event), engine internals surface as
lazily-sampled gauges, and ``telemetry=False`` swaps in shared no-op
instruments.  This bench runs the Figure 5 round-trip workload — the
hottest per-message path in the repository — with telemetry enabled and
disabled and checks the enabled run costs < 5% extra.

Methodology: the simulator is deterministic (fixed seed, no host
concurrency), so the *interpreter work* of a run is exactly reproducible.
The primary metric therefore counts executed bytecode instructions via
``sys.settrace`` opcode tracing — the same run always executes the same
opcodes, making the <5% assertion immune to machine noise (shared-host
wall-clock here swings +/-15% run to run, far above the effect being
measured).  Host CPU time is still measured (GC off, interleaved pairs,
median per-pair ratio) and reported, with only a gross-regression guard
asserted on it.
"""

import gc
import sys
import time

from repro.apps import PingPong
from repro.core import AppSpec, StarfishCluster

from bench_helpers import FAST, fast_or, print_table, quiet_gcs

SIZES = fast_or([1, 1024], [1, 64, 1024, 16384, 65536])
OPCOUNT_REPS = fast_or(10, 100)  # round-trips/size under the opcode tracer
TIMED_REPS = fast_or(30, 300)    # round-trips/size per wall-clock sample
ROUNDS = fast_or(2, 5)           # interleaved on/off wall-clock pairs
MAX_OVERHEAD = 0.05  # deterministic interpreter-work bound
MAX_WALL_OVERHEAD = 0.25  # noise-tolerant wall-clock sanity bound


def _spec(reps: int) -> AppSpec:
    return AppSpec(program=PingPong, nprocs=2,
                   params={"sizes": SIZES, "reps": reps},
                   transport="bip-myrinet")


class _OpCounter:
    """Counts every bytecode instruction executed while installed."""

    __slots__ = ("n",)

    def __init__(self):
        self.n = 0

    def trace(self, frame, event, arg):
        if event == "call":
            frame.f_trace_opcodes = True
        elif event == "opcode":
            self.n += 1
        return self.trace


def count_opcodes(telemetry: bool) -> int:
    """Executed-opcode count of one full PingPong run (deterministic)."""
    sf = StarfishCluster.build(nodes=2, gcs_config=quiet_gcs(),
                               telemetry=telemetry)
    counter = _OpCounter()
    sys.settrace(counter.trace)
    try:
        sf.run(_spec(OPCOUNT_REPS), timeout=4000)
    finally:
        sys.settrace(None)
    return counter.n


def run_workload(telemetry: bool) -> float:
    """One full PingPong run; returns host CPU seconds spent simulating."""
    sf = StarfishCluster.build(nodes=2, gcs_config=quiet_gcs(),
                               telemetry=telemetry)
    gc.collect()
    gc.disable()         # GC pauses dominate sub-second timings
    try:
        t0 = time.process_time()
        sf.run(_spec(TIMED_REPS), timeout=4000)
        return time.process_time() - t0
    finally:
        gc.enable()


def test_telemetry_overhead(benchmark):
    def run_ablation():
        ops_on = count_opcodes(True)
        ops_off = count_opcodes(False)
        run_workload(True)       # warm-up: imports, code objects, caches
        run_workload(False)
        pairs = [(run_workload(True), run_workload(False))
                 for _ in range(ROUNDS)]
        return ops_on, ops_off, pairs

    ops_on, ops_off, pairs = benchmark.pedantic(run_ablation,
                                                rounds=1, iterations=1)
    op_overhead = ops_on / ops_off - 1.0
    ratios = sorted(t_on / t_off for t_on, t_off in pairs)
    wall_overhead = ratios[len(ratios) // 2] - 1.0
    t_on = min(p[0] for p in pairs)
    t_off = min(p[1] for p in pairs)

    print_table(
        "Telemetry ablation: Figure 5 workload, on vs off",
        ["metric", "on", "off", "overhead"],
        [["interpreter ops", f"{ops_on:,}", f"{ops_off:,}",
          f"{op_overhead:+.2%}"],
         ["cpu seconds (best)", f"{t_on:.3f}", f"{t_off:.3f}",
          f"{wall_overhead:+.1%} (median)"]])
    benchmark.extra_info["op_overhead_frac"] = op_overhead
    benchmark.extra_info["wall_overhead_frac"] = wall_overhead

    assert op_overhead < MAX_OVERHEAD, (
        f"telemetry interpreter-work overhead {op_overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%}")
    # Wall clock on a shared host is too noisy for a tight bound; this
    # only catches gross regressions (an accidental O(n) collect per
    # event shows up as 2x, not 25%).  Fast mode runs too few rounds for
    # even that to be stable, so only the deterministic opcode bound is
    # asserted there.
    if not FAST:
        assert wall_overhead < MAX_WALL_OVERHEAD, (
            f"telemetry wall-clock overhead {wall_overhead:.1%} exceeds "
            f"{MAX_WALL_OVERHEAD:.0%}")
