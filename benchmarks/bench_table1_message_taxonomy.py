"""Table 1 — the six message types of Starfish and who exchanges them.

| Message type            | Sent between                                   |
|-------------------------|------------------------------------------------|
| Control                 | Starfish daemons                               |
| Coordination            | Application processes through daemons          |
| Data                    | Application processes through MPI + VNI (fast) |
| Lightweight membership  | Lightweight endpoint module and app processes  |
| Configuration           | Local daemon and application processes         |
| Checkpoint/restart      | C/R modules through daemons                    |

This bench runs a full application lifecycle that exercises every row —
submission, MPI traffic, a coordinated checkpoint, a node crash with
restart — then audits where every message actually travelled: fabric
frames are classified by their ``kind`` tag and local daemon↔process
deliveries by their counter.
"""

import pytest

from repro.apps import Jacobi1D, MonteCarloPi
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster

from bench_helpers import fast_or, print_table, quiet_gcs


class ChattyPi(MonteCarloPi):
    """Monte-Carlo that also announces its progress through the daemons
    (a "general coordination task" per paper §2.2)."""

    def step(self, ctx):
        if self.state["done"] and self.state["done"] % 20_000 == 0:
            ctx.coordinate(("progress", ctx.rank, self.state["done"]))
        yield from MonteCarloPi.step(self, ctx)

    def on_coordination(self, ctx, source, payload):
        self.state.setdefault("heard", 0)
        self.state["heard"] += 1


def run_lifecycle():
    sf = StarfishCluster.build(nodes=4, gcs_config=quiet_gcs(0.2))
    # App 1: tightly coupled, coordinated C/R, killed node -> restart.
    jacobi = sf.submit(AppSpec(
        program=Jacobi1D, nprocs=4,
        params={"n": 256, "iterations": fast_or(100, 200),
                "iters_per_step": 10, "compute_ns_per_cell": 200_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="chandy-lamport", level="vm",
                                    interval=1.0)))
    # App 2: trivially parallel, view-notify, sends coordination messages.
    pi = sf.submit(AppSpec(
        program=ChattyPi, nprocs=3,
        params={"shots": fast_or(90_000, 150_000), "chunk": 1000,
                "compute_ns_per_shot": 120_000},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    sf.engine.run(until=sf.engine.now + 2.5)
    victim = jacobi._record().placement[2]
    sf.crash_node(victim)
    sf.run_to_completion(jacobi, timeout=600)
    sf.run_to_completion(pi, timeout=600)
    return sf


def test_table1_message_taxonomy(benchmark):
    sf = benchmark.pedantic(run_lifecycle, rounds=1, iterations=1)

    eth = sf.cluster.ethernet
    myr = sf.cluster.myrinet
    local = {}
    for daemon in sf.live_daemons():
        for kind, n in daemon.local_msgs.items():
            local[kind] = local.get(kind, 0) + n

    rows = [
        ["Control", "Starfish daemons (Ensemble, Ethernet)",
         eth.kind_counts.get("control", 0)],
        ["Coordination", "app processes through daemons",
         eth.kind_counts.get("coordination", 0)],
        ["Data", "app processes via MPI+VNI fast path (Myrinet)",
         myr.kind_counts.get("data", 0)],
        ["Lightweight membership", "lightweight endpoint <-> app process",
         local.get("lightweight membership", 0)],
        ["Configuration", "local daemon <-> app process",
         local.get("configuration", 0)],
        ["Checkpoint/restart", "C/R modules through daemons",
         eth.kind_counts.get("checkpoint/restart", 0)],
    ]
    print_table("Table 1: message types observed in a full lifecycle",
                ["message type", "sent between", "count"], rows)
    for label, _where, count in rows:
        benchmark.extra_info[label] = count
        assert count > 0, f"no {label!r} messages observed"

    # Architectural invariants behind the table:
    # 1. The fast data path carries *only* data (plus C/R markers, which
    #    are in-band channel markers by design).
    assert set(myr.kind_counts) <= {"data"}
    # 2. No application data ever rides the daemons' Ethernet/Ensemble
    #    path — group communication is off the critical path.
    assert eth.kind_counts.get("data", 0) == 0
    # 3. Control traffic (daemon group) dominates the Ethernet in count —
    #    heartbeats and membership — but never touches the Myrinet.
    assert eth.kind_counts["control"] > 0
